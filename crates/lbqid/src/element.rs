//! LBQID pattern types (Definitions 1 and 2).

use hka_geo::{DayWindow, Rect, StPoint};
use hka_granules::Recurrence;
use std::fmt;

/// One spatio-temporal constraint of an LBQID: an area plus an unanchored
/// time-of-day window (`⟨Area, U-TimeInterval⟩` in Definition 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Optional human label ("AreaCondominium").
    pub label: Option<String>,
    /// The spatial constraint.
    pub area: Rect,
    /// The unanchored temporal constraint.
    pub window: DayWindow,
}

impl Element {
    /// Creates an unlabeled element.
    pub fn new(area: Rect, window: DayWindow) -> Self {
        Element {
            label: None,
            area,
            window,
        }
    }

    /// Creates a labeled element.
    pub fn labeled(label: impl Into<String>, area: Rect, window: DayWindow) -> Self {
        Element {
            label: Some(label.into()),
            area,
            window,
        }
    }

    /// Definition 2: a request at exact location/time `p` "is said to
    /// match an element E_j if Area_j contains ⟨x_i, y_i⟩ and t_i is
    /// contained in one of the intervals denoted by U-TimeInterval_j".
    pub fn matches(&self, p: &StPoint) -> bool {
        self.area.contains(&p.pos) && self.window.contains(p.t)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = &self.label {
            write!(f, "{l} ")?;
        }
        write!(f, "{} [{}]", self.area, self.window)
    }
}

/// Errors constructing an LBQID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LbqidError {
    /// The element sequence was empty.
    NoElements,
}

impl fmt::Display for LbqidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbqidError::NoElements => f.write_str("an LBQID needs at least one element"),
        }
    }
}

impl std::error::Error for LbqidError {}

/// A Location-Based Quasi-Identifier (Definition 1): an element sequence
/// plus a recurrence formula.
#[derive(Debug, Clone, PartialEq)]
pub struct Lbqid {
    name: String,
    elements: Vec<Element>,
    recurrence: Recurrence,
}

impl Lbqid {
    /// Creates an LBQID; the element sequence must be non-empty.
    pub fn new(
        name: impl Into<String>,
        elements: Vec<Element>,
        recurrence: Recurrence,
    ) -> Result<Self, LbqidError> {
        if elements.is_empty() {
            return Err(LbqidError::NoElements);
        }
        Ok(Lbqid {
            name: name.into(),
            elements,
            recurrence,
        })
    }

    /// The pattern's name (used in logs and at-risk notifications).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element sequence, in traversal order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// The recurrence formula.
    pub fn recurrence(&self) -> &Recurrence {
        &self.recurrence
    }

    /// Indices of the elements matched by a request at `p` (a request can
    /// match several elements when areas/windows overlap, e.g. the paper's
    /// office building appears in both the morning and afternoon elements).
    pub fn matching_elements(&self, p: &StPoint) -> impl Iterator<Item = usize> + '_ {
        let p = *p;
        self.elements
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.matches(&p))
            .map(|(i, _)| i)
    }

    /// Whether `p` matches any element at all — the trigger for the
    /// trusted server's generalization step.
    pub fn matches_some_element(&self, p: &StPoint) -> bool {
        self.matching_elements(p).next().is_some()
    }

    /// The paper's Example 2 pattern: condominium → office in the morning,
    /// office → condominium in the evening, `3.Weekdays * 2.Weeks`.
    /// Useful in tests, docs and examples.
    pub fn example_commute(home: Rect, office: Rect) -> Lbqid {
        Lbqid::new(
            "commute",
            vec![
                Element::labeled("AreaCondominium", home, DayWindow::hm((7, 0), (8, 0))),
                Element::labeled("AreaOfficeBldg", office, DayWindow::hm((8, 0), (9, 0))),
                Element::labeled("AreaOfficeBldg", office, DayWindow::hm((16, 0), (18, 0))),
                Element::labeled("AreaCondominium", home, DayWindow::hm((17, 0), (19, 0))),
            ],
            "3.Weekdays * 2.Weeks".parse().expect("static formula"),
        )
        .expect("non-empty")
    }
}

impl fmt::Display for Lbqid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lbqid {} {{ ", self.name)?;
        for e in &self.elements {
            write!(f, "{e}; ")?;
        }
        write!(f, "recur {} }}", self.recurrence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::TimeSec;

    fn home() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn office() -> Rect {
        Rect::from_bounds(900.0, 900.0, 1000.0, 1000.0)
    }

    #[test]
    fn element_matching_needs_both_axes() {
        let e = Element::new(home(), DayWindow::hm((7, 0), (8, 0)));
        let good = StPoint::xyt(50.0, 50.0, TimeSec::at_hm(0, 7, 30));
        let wrong_place = StPoint::xyt(500.0, 50.0, TimeSec::at_hm(0, 7, 30));
        let wrong_time = StPoint::xyt(50.0, 50.0, TimeSec::at_hm(0, 9, 30));
        assert!(e.matches(&good));
        assert!(!e.matches(&wrong_place));
        assert!(!e.matches(&wrong_time));
        // The window is unanchored: any day works.
        let other_day = StPoint::xyt(50.0, 50.0, TimeSec::at_hm(42, 7, 30));
        assert!(e.matches(&other_day));
    }

    #[test]
    fn lbqid_requires_elements() {
        assert_eq!(
            Lbqid::new("x", vec![], Recurrence::once()).unwrap_err(),
            LbqidError::NoElements
        );
    }

    #[test]
    fn commute_example_shape() {
        let q = Lbqid::example_commute(home(), office());
        assert_eq!(q.elements().len(), 4);
        assert_eq!(q.recurrence().to_string(), "3.Weekdays * 2.Weeks");
        assert_eq!(q.name(), "commute");
    }

    #[test]
    fn overlapping_elements_all_match() {
        let q = Lbqid::example_commute(home(), office());
        // 17:30 at home matches only the last element; 17:30 at the office
        // matches the afternoon office element.
        let at_home = StPoint::xyt(10.0, 10.0, TimeSec::at_hm(0, 17, 30));
        let idx: Vec<usize> = q.matching_elements(&at_home).collect();
        assert_eq!(idx, vec![3]);
        let at_office = StPoint::xyt(950.0, 950.0, TimeSec::at_hm(0, 17, 30));
        let idx: Vec<usize> = q.matching_elements(&at_office).collect();
        assert_eq!(idx, vec![2]);
        assert!(q.matches_some_element(&at_home));
        let nowhere = StPoint::xyt(500.0, 500.0, TimeSec::at_hm(0, 12, 0));
        assert!(!q.matches_some_element(&nowhere));
    }

    #[test]
    fn display_is_readable() {
        let q = Lbqid::example_commute(home(), office());
        let s = q.to_string();
        assert!(s.contains("AreaCondominium"));
        assert!(s.contains("3.Weekdays * 2.Weeks"));
    }
}
