//! # hka-lbqid
//!
//! **Location-Based Quasi-Identifiers** (LBQIDs) — the pattern language at
//! the heart of the Bettini–Wang–Jajodia framework (Section 4).
//!
//! An LBQID (Definition 1) is "a spatio-temporal pattern specified by a
//! sequence of spatio-temporal constraints each one defining an area and a
//! time span, and by a recurrence formula". The paper's running example:
//!
//! ```text
//! AreaCondominium [7am,8am], AreaOfficeBldg [8am,9am],
//! AreaOfficeBldg [4pm,6pm], AreaCondominium [5pm,7pm]
//! Recurrence: 3.Weekdays * 2.Weeks
//! ```
//!
//! This crate provides:
//!
//! * [`Element`] / [`Lbqid`] — the pattern types (Definition 1), including
//!   per-element request matching (Definition 2);
//! * a textual DSL ([`parse_lbqid`]) so experiments and examples can state
//!   patterns the way the paper writes them;
//! * [`offline::matches`] — an exhaustive Definition-3 checker ("a set of
//!   requests R is said to match an LBQID Q if …"), used as ground truth;
//! * [`Monitor`] — the online matcher the trusted server runs per
//!   user × LBQID. The paper suggests "a timed state automata may be used
//!   for each LBQID and each user, advancing the state of the automata
//!   when the actual location of the user at the request time is within
//!   the area specified by one of the current states, and the temporal
//!   constraints are satisfied"; [`Monitor`] implements exactly that, with
//!   bounded nondeterminism (several concurrent partial traversals).
//!
//! The online matcher is *sound* with respect to the offline checker: when
//! it reports a full match, the observed request set matches under
//! Definition 3 (property-tested in `tests/props.rs`). Like any greedy
//! automaton with bounded state it may in rare interleavings detect a
//! match later than the exhaustive checker would; the trusted server
//! errs on the cautious side by generalizing every element match.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod element;
mod monitor;
pub mod offline;
mod parser;

pub use element::{Element, Lbqid, LbqidError};
pub use monitor::{MatchEvent, Monitor, PartialId};
pub use parser::{parse_lbqid, ParseLbqidError};
