//! The online LBQID matcher run by the trusted server.

use crate::Lbqid;
use hka_geo::{StPoint, TimeInterval, TimeSec};
use hka_granules::Granularity;

/// Stable identifier of a partial traversal within one [`Monitor`].
///
/// The trusted server keys its per-traversal anonymity-set state on this:
/// Algorithm 1 selects k users when a request matches "the initial element
/// of an LBQID" and reuses them for the requests matching the subsequent
/// elements *of that same traversal*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartialId(pub u64);

/// What a request did to the pattern state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchEvent {
    /// The traversal this request belongs to.
    pub partial: PartialId,
    /// Index of the element the request matched.
    pub element: usize,
    /// `true` when the request started a fresh traversal (matched the
    /// first element) — Algorithm 1's "r matches the initial element"
    /// branch.
    pub started: bool,
    /// When the request completed a traversal: the observation interval
    /// (first to last matched request).
    pub completed_observation: Option<TimeInterval>,
    /// `true` when, after this request, the accumulated observations
    /// satisfy the recurrence formula — the full LBQID has been matched
    /// and, absent protection, released to the provider.
    pub full_match: bool,
}

#[derive(Debug, Clone)]
struct Partial {
    id: PartialId,
    next: usize,
    start: TimeSec,
    last: TimeSec,
    granule: Option<i64>,
}

/// Online matcher for one user × one LBQID — the paper's "timed state
/// automata … for each LBQID and each user".
///
/// The automaton is nondeterministic (a request matching the first element
/// may start a new traversal while older traversals are still open), so
/// the monitor keeps up to [`Monitor::MAX_PARTIALS`] concurrent partial
/// traversals, greedily extending the most-advanced compatible one.
///
/// ```
/// use hka_geo::{Rect, StPoint, TimeSec};
/// use hka_lbqid::{Lbqid, Monitor};
///
/// let home = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
/// let office = Rect::from_bounds(900.0, 900.0, 1000.0, 1000.0);
/// let mut m = Monitor::new(Lbqid::example_commute(home, office));
/// // One full round trip on Monday (day 0):
/// let ev = m.observe(StPoint::xyt(50.0, 50.0, TimeSec::at_hm(0, 7, 30))).unwrap();
/// assert!(ev.started);
/// m.observe(StPoint::xyt(950.0, 950.0, TimeSec::at_hm(0, 8, 30))).unwrap();
/// m.observe(StPoint::xyt(950.0, 950.0, TimeSec::at_hm(0, 17, 0))).unwrap();
/// let done = m.observe(StPoint::xyt(50.0, 50.0, TimeSec::at_hm(0, 18, 0))).unwrap();
/// assert!(done.completed_observation.is_some());
/// assert!(!done.full_match, "the 3.Weekdays * 2.Weeks recurrence needs more");
/// ```
#[derive(Debug, Clone)]
pub struct Monitor {
    lbqid: Lbqid,
    inner: Option<Granularity>,
    partials: Vec<Partial>,
    completed: Vec<TimeInterval>,
    next_id: u64,
    full_match: bool,
}

impl Monitor {
    /// Bound on concurrent partial traversals; the oldest is evicted when
    /// exceeded (keeps the per-request cost constant).
    pub const MAX_PARTIALS: usize = 32;

    /// Creates a monitor for the given pattern.
    pub fn new(lbqid: Lbqid) -> Self {
        let inner = lbqid.recurrence().inner_granularity();
        Monitor {
            lbqid,
            inner,
            partials: Vec::new(),
            completed: Vec::new(),
            next_id: 0,
            full_match: false,
        }
    }

    /// The monitored pattern.
    pub fn lbqid(&self) -> &Lbqid {
        &self.lbqid
    }

    /// Completed observation intervals so far (under the current
    /// pseudonym).
    pub fn completed_observations(&self) -> &[TimeInterval] {
        &self.completed
    }

    /// Whether the recurrence formula has been satisfied — the LBQID has
    /// been fully matched by the user's requests.
    pub fn is_fully_matched(&self) -> bool {
        self.full_match
    }

    /// Number of live partial traversals.
    pub fn live_partials(&self) -> usize {
        self.partials.len()
    }

    /// How many satisfied outer granules are still missing before the
    /// pattern completes (a progress indicator for at-risk warnings).
    pub fn missing_outer(&self) -> u32 {
        self.lbqid.recurrence().missing_outer(&self.completed)
    }

    /// Whether the pattern could still be fully matched by `deadline`
    /// given the observations completed so far (optimistic projection —
    /// see [`hka_granules::Recurrence::completable_by`]). A `false`
    /// answer lets the trusted server clear partial-match state early:
    /// the quasi-identifier can no longer be released in this window.
    pub fn completable_by(&self, now: TimeSec, deadline: TimeSec) -> bool {
        self.lbqid
            .recurrence()
            .completable_by(&self.completed, now, deadline)
    }

    /// Feeds one exact request context through the automaton.
    ///
    /// Returns `Some(event)` when the request matched the next element of
    /// a live traversal or started a new one — exactly the condition under
    /// which the Section-6.1 strategy generalizes the outgoing request.
    /// Returns `None` when the request is irrelevant to this pattern.
    pub fn observe(&mut self, p: StPoint) -> Option<MatchEvent> {
        self.expire(p.t);

        // Prefer extending the most-advanced compatible partial (greedy
        // determinization of the timed automaton).
        let mut best: Option<usize> = None;
        for (i, partial) in self.partials.iter().enumerate() {
            if p.t < partial.last {
                continue;
            }
            if !self.lbqid.elements()[partial.next].matches(&p) {
                continue;
            }
            if let (Some(g), Some(gr)) = (self.inner, partial.granule) {
                if g.granule_of(p.t) != Some(gr) {
                    continue;
                }
            }
            match best {
                Some(b) if self.partials[b].next >= partial.next => {}
                _ => best = Some(i),
            }
        }

        if let Some(i) = best {
            let completes = self.partials[i].next + 1 == self.lbqid.elements().len();
            let element = self.partials[i].next;
            let id = self.partials[i].id;
            if completes {
                let partial = self.partials.remove(i);
                let obs = TimeInterval::new(partial.start, p.t);
                self.completed.push(obs);
                if self.lbqid.recurrence().is_satisfied(&self.completed) {
                    self.full_match = true;
                }
                return Some(MatchEvent {
                    partial: id,
                    element,
                    started: false,
                    completed_observation: Some(obs),
                    full_match: self.full_match,
                });
            }
            self.partials[i].next += 1;
            self.partials[i].last = p.t;
            return Some(MatchEvent {
                partial: id,
                element,
                started: false,
                completed_observation: None,
                full_match: self.full_match,
            });
        }

        // Otherwise: can this request start a new traversal?
        if self.lbqid.elements()[0].matches(&p) {
            let granule = self.inner.and_then(|g| g.granule_of(p.t));
            if self.inner.is_some() && granule.is_none() {
                // Starting inside a granularity gap (e.g. a weekend under
                // Weekdays): the observation could never be counted.
                return None;
            }
            let id = PartialId(self.next_id);
            self.next_id += 1;
            if self.lbqid.elements().len() == 1 {
                let obs = TimeInterval::instant(p.t);
                self.completed.push(obs);
                if self.lbqid.recurrence().is_satisfied(&self.completed) {
                    self.full_match = true;
                }
                return Some(MatchEvent {
                    partial: id,
                    element: 0,
                    started: true,
                    completed_observation: Some(obs),
                    full_match: self.full_match,
                });
            }
            if self.partials.len() >= Self::MAX_PARTIALS {
                // Evict the stalest traversal (earliest last activity).
                if let Some((evict, _)) =
                    self.partials.iter().enumerate().min_by_key(|(_, q)| q.last)
                {
                    self.partials.remove(evict);
                }
            }
            self.partials.push(Partial {
                id,
                next: 1,
                start: p.t,
                last: p.t,
                granule,
            });
            return Some(MatchEvent {
                partial: id,
                element: 0,
                started: true,
                completed_observation: None,
                full_match: self.full_match,
            });
        }

        None
    }

    /// Drops partial traversals that can no longer complete because their
    /// inner granule has passed.
    pub fn expire(&mut self, now: TimeSec) {
        if let Some(g) = self.inner {
            self.partials.retain(|p| match p.granule {
                Some(gr) => g.granule_span(gr).end() >= now,
                None => true,
            });
        }
    }

    /// Clears all pattern state. Called when the user's pseudonym changes:
    /// "all partially matched patterns based on old pseudonym for that
    /// user are reset" (Section 6.1, step 2) — and completed observations
    /// belong to the old pseudonym too, so they are discarded as well.
    pub fn reset(&mut self) {
        self.partials.clear();
        self.completed.clear();
        self.full_match = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::Rect;

    fn home() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn office() -> Rect {
        Rect::from_bounds(900.0, 900.0, 1000.0, 1000.0)
    }

    fn commute_monitor() -> Monitor {
        Monitor::new(Lbqid::example_commute(home(), office()))
    }

    fn round_trip(day: i64) -> [StPoint; 4] {
        [
            StPoint::xyt(50.0, 50.0, TimeSec::at_hm(day, 7, 30)),
            StPoint::xyt(950.0, 950.0, TimeSec::at_hm(day, 8, 30)),
            StPoint::xyt(950.0, 950.0, TimeSec::at_hm(day, 17, 0)),
            StPoint::xyt(50.0, 50.0, TimeSec::at_hm(day, 18, 0)),
        ]
    }

    #[test]
    fn full_papers_example_matches_online() {
        let mut m = commute_monitor();
        let mut full = false;
        for d in [0, 1, 2, 7, 8, 9] {
            for p in round_trip(d) {
                if let Some(ev) = m.observe(p) {
                    full = full || ev.full_match;
                }
            }
        }
        assert!(full);
        assert!(m.is_fully_matched());
        assert_eq!(m.completed_observations().len(), 6);
    }

    #[test]
    fn events_track_traversal_progress() {
        let mut m = commute_monitor();
        let [a, b, c, d] = round_trip(0);
        let ev = m.observe(a).unwrap();
        assert!(ev.started);
        assert_eq!(ev.element, 0);
        let id = ev.partial;
        let ev = m.observe(b).unwrap();
        assert!(!ev.started);
        assert_eq!(ev.element, 1);
        assert_eq!(ev.partial, id);
        let ev = m.observe(c).unwrap();
        assert_eq!(ev.element, 2);
        let ev = m.observe(d).unwrap();
        assert_eq!(ev.element, 3);
        let obs = ev.completed_observation.unwrap();
        assert_eq!(obs.start(), a.t);
        assert_eq!(obs.end(), d.t);
        assert!(!ev.full_match);
        assert_eq!(m.live_partials(), 0);
        assert_eq!(m.missing_outer(), 2);
    }

    #[test]
    fn irrelevant_requests_yield_no_event() {
        let mut m = commute_monitor();
        assert!(m
            .observe(StPoint::xyt(500.0, 500.0, TimeSec::at_hm(0, 12, 0)))
            .is_none());
        // Right area, wrong window.
        assert!(m
            .observe(StPoint::xyt(50.0, 50.0, TimeSec::at_hm(0, 12, 0)))
            .is_none());
    }

    #[test]
    fn weekend_start_is_rejected_under_weekday_recurrence() {
        let mut m = commute_monitor();
        // Day 5 is a Saturday.
        assert!(m
            .observe(StPoint::xyt(50.0, 50.0, TimeSec::at_hm(5, 7, 30)))
            .is_none());
    }

    #[test]
    fn traversals_cannot_span_granules() {
        let mut m = commute_monitor();
        let [a, b, _, _] = round_trip(0);
        m.observe(a).unwrap();
        m.observe(b).unwrap();
        // Evening requests on the *next* day cannot extend day 0's
        // traversal (different Weekdays granule); the home request instead
        // starts nothing (it matches only elements 0/3: 18:00 is outside
        // element 0's 7-8am window).
        let ev = m.observe(StPoint::xyt(950.0, 950.0, TimeSec::at_hm(1, 17, 0)));
        assert!(ev.is_none());
        assert_eq!(m.completed_observations().len(), 0);
    }

    #[test]
    fn expiry_drops_stale_partials() {
        let mut m = commute_monitor();
        m.observe(round_trip(0)[0]).unwrap();
        assert_eq!(m.live_partials(), 1);
        m.expire(TimeSec::at_hm(1, 0, 1));
        assert_eq!(m.live_partials(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = commute_monitor();
        for d in [0, 1, 2] {
            for p in round_trip(d) {
                m.observe(p);
            }
        }
        assert_eq!(m.completed_observations().len(), 3);
        m.reset();
        assert_eq!(m.completed_observations().len(), 0);
        assert_eq!(m.live_partials(), 0);
        assert!(!m.is_fully_matched());
    }

    #[test]
    fn completability_tracks_remaining_runway() {
        let mut m = commute_monitor();
        // Fresh monitor, three weeks of runway: may complete.
        assert!(m.completable_by(TimeSec::at(0, 0), TimeSec::at(21, 0)));
        // Only this week left: a second week cannot be satisfied.
        assert!(!m.completable_by(TimeSec::at(0, 0), TimeSec::at(4, 0)));
        // After one full week of round trips, next Wednesday suffices.
        for d in [0, 1, 2] {
            for p in round_trip(d) {
                m.observe(p);
            }
        }
        assert!(m.completable_by(TimeSec::at(5, 0), TimeSec::at(9, 82_800)));
    }

    #[test]
    fn single_element_pattern_completes_immediately() {
        let q = Lbqid::new(
            "at-clinic",
            vec![crate::Element::new(
                home(),
                hka_geo::DayWindow::hm((9, 0), (17, 0)),
            )],
            "2.Days".parse().unwrap(),
        )
        .unwrap();
        let mut m = Monitor::new(q);
        let ev = m
            .observe(StPoint::xyt(10.0, 10.0, TimeSec::at_hm(0, 10, 0)))
            .unwrap();
        assert!(ev.started);
        assert!(ev.completed_observation.is_some());
        assert!(!ev.full_match);
        let ev = m
            .observe(StPoint::xyt(10.0, 10.0, TimeSec::at_hm(1, 10, 0)))
            .unwrap();
        assert!(ev.full_match);
    }

    #[test]
    fn partial_cap_evicts_stalest() {
        // A pattern whose first element is all-day home, so every request
        // starts a traversal.
        let q = Lbqid::new(
            "greedy",
            vec![
                crate::Element::new(home(), hka_geo::DayWindow::all_day()),
                crate::Element::new(office(), hka_geo::DayWindow::all_day()),
            ],
            hka_granules::Recurrence::once(),
        )
        .unwrap();
        let mut m = Monitor::new(q);
        for i in 0..(Monitor::MAX_PARTIALS + 10) {
            m.observe(StPoint::xyt(10.0, 10.0, TimeSec(i as i64)));
        }
        assert!(m.live_partials() <= Monitor::MAX_PARTIALS);
    }

    #[test]
    fn empty_recurrence_allows_weekend_and_multi_day() {
        let q = Lbqid::new(
            "one-shot",
            Lbqid::example_commute(home(), office()).elements().to_vec(),
            hka_granules::Recurrence::once(),
        )
        .unwrap();
        let mut m = Monitor::new(q);
        // Start Saturday morning, finish Saturday evening.
        let mut last = None;
        for p in round_trip(5) {
            last = m.observe(p);
        }
        assert!(last.unwrap().full_match);
    }
}
