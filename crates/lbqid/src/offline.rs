//! Exhaustive Definition-3 matching — the ground truth the online monitor
//! is validated against.
//!
//! Definition 3 says a set of requests `R` matches an LBQID `Q` when each
//! request matches an element (and each element is matched) and the request
//! times satisfy the recurrence formula. Operationally — and this is how
//! the trusted server must reason about risk — the question is whether an
//! adversary *can extract from the observed requests* a collection of
//! disjoint, complete, time-ordered traversals of `Q`'s element sequence,
//! each fitting within one granule of the formula's inner granularity,
//! whose completion intervals satisfy the recurrence. Requests not
//! participating in any traversal are permitted (the provider always sees
//! a superset of the identifying pattern).
//!
//! The checker below answers that question *exactly*, by backtracking over
//! every assignment of requests to traversals. It is exponential in the
//! worst case and intended for testing and small offline audits; the
//! trusted server uses the linear-time [`crate::Monitor`] instead.

use crate::Lbqid;
use hka_geo::{StPoint, TimeInterval};
use hka_granules::Granularity;

#[derive(Debug, Clone)]
struct Partial {
    next: usize,
    start: hka_geo::TimeSec,
    last: hka_geo::TimeSec,
    granule: Option<i64>,
}

struct Search<'a> {
    q: &'a Lbqid,
    inner: Option<Granularity>,
    requests: Vec<StPoint>,
}

impl Search<'_> {
    fn run(&self) -> bool {
        self.search(0, &mut Vec::new(), &mut Vec::new())
    }

    fn search(
        &self,
        i: usize,
        partials: &mut Vec<Partial>,
        completed: &mut Vec<TimeInterval>,
    ) -> bool {
        if self.q.recurrence().is_satisfied(completed) {
            return true;
        }
        if i == self.requests.len() {
            return false;
        }
        let p = self.requests[i];

        // Option A: extend one of the live partial traversals.
        for pi in 0..partials.len() {
            let (next, granule, last, start) = {
                let pt = &partials[pi];
                (pt.next, pt.granule, pt.last, pt.start)
            };
            if p.t < last {
                continue;
            }
            if !self.q.elements()[next].matches(&p) {
                continue;
            }
            if let (Some(g), Some(gr)) = (self.inner, granule) {
                if g.granule_of(p.t) != Some(gr) {
                    continue;
                }
            }
            if next + 1 == self.q.elements().len() {
                // Completes a traversal.
                let saved = partials.remove(pi);
                completed.push(TimeInterval::new(start, p.t));
                if self.search(i + 1, partials, completed) {
                    return true;
                }
                completed.pop();
                partials.insert(pi, saved);
            } else {
                partials[pi].next += 1;
                partials[pi].last = p.t;
                if self.search(i + 1, partials, completed) {
                    return true;
                }
                partials[pi].next -= 1;
                partials[pi].last = last;
            }
        }

        // Option B: start a new traversal at this request.
        if self.q.elements()[0].matches(&p) {
            let granule = match self.inner {
                Some(g) => g.granule_of(p.t),
                None => None,
            };
            // With a recurrence, an observation starting in a granularity
            // gap can never be counted; don't bother starting one.
            let viable = self.inner.is_none() || granule.is_some();
            if viable {
                if self.q.elements().len() == 1 {
                    completed.push(TimeInterval::instant(p.t));
                    if self.search(i + 1, partials, completed) {
                        return true;
                    }
                    completed.pop();
                } else {
                    partials.push(Partial {
                        next: 1,
                        start: p.t,
                        last: p.t,
                        granule,
                    });
                    if self.search(i + 1, partials, completed) {
                        return true;
                    }
                    partials.pop();
                }
            }
        }

        // Option C: leave this request out of every traversal.
        self.search(i + 1, partials, completed)
    }
}

/// Whether the request set matches the LBQID under Definition 3
/// (see the module docs for the operational reading).
///
/// Exhaustive backtracking: use only on small request sets (tests keep
/// them under ~20 requests).
pub fn matches(q: &Lbqid, requests: &[StPoint]) -> bool {
    let mut sorted = requests.to_vec();
    sorted.sort_by_key(|p| p.t);
    Search {
        q,
        inner: q.recurrence().inner_granularity(),
        requests: sorted,
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Element;
    use hka_geo::{DayWindow, Rect, TimeSec};
    use hka_granules::Recurrence;

    fn home() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn office() -> Rect {
        Rect::from_bounds(900.0, 900.0, 1000.0, 1000.0)
    }

    fn commute() -> Lbqid {
        Lbqid::example_commute(home(), office())
    }

    /// A full round trip on `day`.
    fn round_trip(day: i64) -> Vec<StPoint> {
        vec![
            StPoint::xyt(50.0, 50.0, TimeSec::at_hm(day, 7, 30)),
            StPoint::xyt(950.0, 950.0, TimeSec::at_hm(day, 8, 30)),
            StPoint::xyt(950.0, 950.0, TimeSec::at_hm(day, 17, 0)),
            StPoint::xyt(50.0, 50.0, TimeSec::at_hm(day, 18, 0)),
        ]
    }

    #[test]
    fn papers_example_matches() {
        // 3 weekdays in week 0 (days 0,1,2) and 3 in week 1 (7,8,9).
        let mut reqs = Vec::new();
        for d in [0, 1, 2, 7, 8, 9] {
            reqs.extend(round_trip(d));
        }
        assert!(matches(&commute(), &reqs));
    }

    #[test]
    fn one_week_is_not_enough() {
        let mut reqs = Vec::new();
        for d in [0, 1, 2] {
            reqs.extend(round_trip(d));
        }
        assert!(!matches(&commute(), &reqs));
    }

    #[test]
    fn incomplete_traversals_do_not_count() {
        // Morning halves only, for several days.
        let mut reqs = Vec::new();
        for d in 0..6 {
            reqs.push(StPoint::xyt(50.0, 50.0, TimeSec::at_hm(d, 7, 30)));
            reqs.push(StPoint::xyt(950.0, 950.0, TimeSec::at_hm(d, 8, 30)));
        }
        assert!(!matches(&commute(), &reqs));
    }

    #[test]
    fn noise_requests_are_ignored() {
        let mut reqs = Vec::new();
        for d in [0, 1, 2, 7, 8, 9] {
            reqs.extend(round_trip(d));
            // Lunch-time requests downtown: match no element.
            reqs.push(StPoint::xyt(500.0, 500.0, TimeSec::at_hm(d, 12, 0)));
        }
        assert!(matches(&commute(), &reqs));
    }

    #[test]
    fn weekend_round_trips_fall_in_gaps() {
        // Days 5,6 are Sat/Sun; 12,13 the next weekend; plus two more
        // weekend days — six traversals, none in a Weekdays granule.
        let mut reqs = Vec::new();
        for d in [5, 6, 12, 13, 19, 20] {
            reqs.extend(round_trip(d));
        }
        assert!(!matches(&commute(), &reqs));
    }

    #[test]
    fn empty_recurrence_matches_single_traversal() {
        let q = Lbqid::new(
            "one-shot",
            commute().elements().to_vec(),
            Recurrence::once(),
        )
        .unwrap();
        assert!(matches(&q, &round_trip(0)));
        assert!(matches(&q, &round_trip(5))); // weekends fine without recurrence
        assert!(!matches(&q, &round_trip(0)[..3]));
        assert!(!matches(&q, &[]));
    }

    #[test]
    fn single_element_lbqid() {
        let q = Lbqid::new(
            "at-clinic",
            vec![Element::new(home(), DayWindow::hm((9, 0), (17, 0)))],
            "2.Days".parse().unwrap(),
        )
        .unwrap();
        let one = [StPoint::xyt(10.0, 10.0, TimeSec::at_hm(0, 10, 0))];
        let two = [
            StPoint::xyt(10.0, 10.0, TimeSec::at_hm(0, 10, 0)),
            StPoint::xyt(10.0, 10.0, TimeSec::at_hm(1, 10, 0)),
        ];
        assert!(!matches(&q, &one));
        assert!(matches(&q, &two));
    }

    #[test]
    fn traversal_must_be_time_ordered() {
        // Evening first, morning later the same day cannot complete the
        // pattern in order... but since requests are sorted by time and the
        // pattern needs morning-before-evening, reversing wall-clock times
        // means the office-morning element has no early match.
        let day = 0;
        let reqs = vec![
            StPoint::xyt(950.0, 950.0, TimeSec::at_hm(day, 17, 0)),
            StPoint::xyt(50.0, 50.0, TimeSec::at_hm(day, 18, 0)),
        ];
        let q = Lbqid::new(
            "one-shot",
            commute().elements().to_vec(),
            Recurrence::once(),
        )
        .unwrap();
        assert!(!matches(&q, &reqs));
    }

    #[test]
    fn interleaved_traversals_are_separable() {
        // Two one-element-pattern users... here: one pattern, requests of
        // two different days interleaved in submission order — sorting by
        // time plus backtracking must still find both traversals.
        let mut reqs = round_trip(0);
        reqs.extend(round_trip(1));
        reqs.extend(round_trip(2));
        reqs.extend(round_trip(7));
        reqs.extend(round_trip(8));
        reqs.extend(round_trip(9));
        reqs.reverse(); // scrambled input order
        assert!(matches(&commute(), &reqs));
    }
}
