//! A small textual DSL for LBQIDs.
//!
//! The paper's Example 2 written in the DSL:
//!
//! ```text
//! lbqid commute {
//!     element AreaCondominium area(0, 0, 100, 100)       window(07:00, 08:00);
//!     element AreaOfficeBldg  area(900, 900, 1000, 1000) window(08:00, 09:00);
//!     element AreaOfficeBldg  area(900, 900, 1000, 1000) window(16:00, 18:00);
//!     element AreaCondominium area(0, 0, 100, 100)       window(17:00, 19:00);
//!     recur 3.Weekdays * 2.Weeks;
//! }
//! ```
//!
//! Grammar (whitespace-insensitive, `#` starts a line comment):
//!
//! ```text
//! lbqid     := "lbqid" IDENT "{" element+ recur? "}"
//! element   := "element" IDENT? "area" "(" NUM "," NUM "," NUM "," NUM ")"
//!              "window" "(" HH:MM "," HH:MM ")" ";"
//! recur     := "recur" FORMULA ";"        // parsed by hka-granules
//! ```

use crate::{Element, Lbqid};
use hka_geo::{DayWindow, Rect};
use hka_granules::Recurrence;
use std::fmt;

/// Error from [`parse_lbqid`], with a human-readable message that names
/// the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLbqidError(pub String);

impl fmt::Display for ParseLbqidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LBQID parse error: {}", self.0)
    }
}

impl std::error::Error for ParseLbqidError {}

struct Tokens<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Tokens<'a> {
    fn new(src: &'a str) -> Self {
        Tokens { src, pos: 0 }
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = &self.src[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if self.src[self.pos..].starts_with('#') {
                match self.src[self.pos..].find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    /// Consumes an identifier/keyword-like token (letters, digits, `_`).
    fn ident(&mut self) -> Result<&'a str, ParseLbqidError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(ParseLbqidError(format!(
                "expected identifier at …{:?}",
                rest.chars().take(12).collect::<String>()
            )));
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    fn expect(&mut self, token: char) -> Result<(), ParseLbqidError> {
        match self.peek() {
            Some(c) if c == token => {
                self.pos += c.len_utf8();
                Ok(())
            }
            other => Err(ParseLbqidError(format!(
                "expected '{token}', found {other:?}"
            ))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseLbqidError> {
        let got = self.ident()?;
        if got == kw {
            Ok(())
        } else {
            Err(ParseLbqidError(format!("expected '{kw}', found '{got}'")))
        }
    }

    fn number(&mut self) -> Result<f64, ParseLbqidError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit() && *c != '.' && *c != '-' && *c != '+')
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let tok = &rest[..end];
        let n: f64 = tok
            .parse()
            .map_err(|_| ParseLbqidError(format!("expected number, found '{tok}'")))?;
        self.pos += end;
        Ok(n)
    }

    /// `HH:MM` as seconds-after-midnight.
    fn time_of_day(&mut self) -> Result<i64, ParseLbqidError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit() && *c != ':')
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let tok = &rest[..end];
        let (h, m) = tok
            .split_once(':')
            .ok_or_else(|| ParseLbqidError(format!("expected HH:MM, found '{tok}'")))?;
        let h: i64 = h
            .parse()
            .map_err(|_| ParseLbqidError(format!("bad hour in '{tok}'")))?;
        let m: i64 = m
            .parse()
            .map_err(|_| ParseLbqidError(format!("bad minute in '{tok}'")))?;
        if h > 24 || m > 59 {
            return Err(ParseLbqidError(format!("time out of range: '{tok}'")));
        }
        self.pos += end;
        Ok(h * 3600 + m * 60)
    }

    /// Everything up to (excluding) the next `stop` character.
    fn until(&mut self, stop: char) -> Result<&'a str, ParseLbqidError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .find(stop)
            .ok_or_else(|| ParseLbqidError(format!("expected '{stop}' before end of input")))?;
        self.pos += end;
        Ok(rest[..end].trim())
    }

    fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }
}

/// Parses one LBQID definition from DSL text.
///
/// ```
/// let q = hka_lbqid::parse_lbqid(
///     "lbqid clinic { element area(0, 0, 100, 100) window(09:00, 17:00); recur 2.Days; }",
/// ).unwrap();
/// assert_eq!(q.name(), "clinic");
/// assert_eq!(q.elements().len(), 1);
/// assert_eq!(q.recurrence().to_string(), "2.Days");
/// ```
pub fn parse_lbqid(src: &str) -> Result<Lbqid, ParseLbqidError> {
    let mut t = Tokens::new(src);
    t.expect_keyword("lbqid")?;
    let name = t.ident()?.to_owned();
    t.expect('{')?;

    let mut elements = Vec::new();
    let mut recurrence = Recurrence::once();
    loop {
        match t.peek() {
            Some('}') => {
                t.expect('}')?;
                break;
            }
            None => return Err(ParseLbqidError("unterminated lbqid block".into())),
            _ => {}
        }
        let kw = t.ident()?;
        match kw {
            "element" => {
                // Optional label: an identifier other than "area".
                let mut label: Option<String> = None;
                let next = t.ident()?;
                if next != "area" {
                    label = Some(next.to_owned());
                    t.expect_keyword("area")?;
                }
                t.expect('(')?;
                let x1 = t.number()?;
                t.expect(',')?;
                let y1 = t.number()?;
                t.expect(',')?;
                let x2 = t.number()?;
                t.expect(',')?;
                let y2 = t.number()?;
                t.expect(')')?;
                t.expect_keyword("window")?;
                t.expect('(')?;
                let w1 = t.time_of_day()?;
                t.expect(',')?;
                let w2 = t.time_of_day()?;
                t.expect(')')?;
                t.expect(';')?;
                let area = Rect::from_bounds(x1, y1, x2, y2);
                let window = DayWindow::new(w1, w2);
                elements.push(match label {
                    Some(l) => Element::labeled(l, area, window),
                    None => Element::new(area, window),
                });
            }
            "recur" => {
                let formula = t.until(';')?;
                t.expect(';')?;
                recurrence = formula
                    .parse()
                    .map_err(|e| ParseLbqidError(format!("bad recurrence '{formula}': {e}")))?;
            }
            other => {
                return Err(ParseLbqidError(format!(
                    "expected 'element' or 'recur', found '{other}'"
                )))
            }
        }
    }
    if !t.at_end() {
        return Err(ParseLbqidError("trailing input after lbqid block".into()));
    }
    Lbqid::new(name, elements, recurrence).map_err(|e| ParseLbqidError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMMUTE: &str = r#"
        # The paper's Example 2.
        lbqid commute {
            element AreaCondominium area(0, 0, 100, 100)       window(07:00, 08:00);
            element AreaOfficeBldg  area(900, 900, 1000, 1000) window(08:00, 09:00);
            element AreaOfficeBldg  area(900, 900, 1000, 1000) window(16:00, 18:00);
            element AreaCondominium area(0, 0, 100, 100)       window(17:00, 19:00);
            recur 3.Weekdays * 2.Weeks;
        }
    "#;

    #[test]
    fn parses_papers_example() {
        let q = parse_lbqid(COMMUTE).unwrap();
        let reference = Lbqid::example_commute(
            Rect::from_bounds(0.0, 0.0, 100.0, 100.0),
            Rect::from_bounds(900.0, 900.0, 1000.0, 1000.0),
        );
        assert_eq!(q, reference);
    }

    #[test]
    fn labels_are_optional() {
        let q = parse_lbqid("lbqid x { element area(0,0,1,1) window(07:00,08:00); recur 2.Days; }")
            .unwrap();
        assert_eq!(q.elements().len(), 1);
        assert_eq!(q.elements()[0].label, None);
        assert_eq!(q.recurrence().to_string(), "2.Days");
    }

    #[test]
    fn missing_recur_means_once() {
        let q = parse_lbqid("lbqid x { element area(0,0,1,1) window(07:00,08:00); }").unwrap();
        assert_eq!(q.recurrence(), &Recurrence::once());
    }

    #[test]
    fn negative_and_decimal_coordinates() {
        let q = parse_lbqid("lbqid x { element area(-10.5, -3, 22.25, 7) window(00:00, 23:59); }")
            .unwrap();
        assert_eq!(
            q.elements()[0].area,
            Rect::from_bounds(-10.5, -3.0, 22.25, 7.0)
        );
    }

    #[test]
    fn wrapping_window_parses() {
        let q =
            parse_lbqid("lbqid nightowl { element area(0,0,1,1) window(22:00, 02:00); }").unwrap();
        assert!(q.elements()[0].window.wraps());
    }

    #[test]
    fn error_messages_name_the_problem() {
        let cases = [
            ("", "expected identifier"),
            ("lbqid {", "expected identifier"),
            ("lbqid x element", "expected '{'"),
            ("lbqid x { element area(0,0,1,1); }", "expected identifier"),
            (
                "lbqid x { element area(0,0,1,1) win(07:00,08:00); }",
                "expected 'window'",
            ),
            (
                "lbqid x { element area(0,0,1,1) window(25:99, 08:00); }",
                "out of range",
            ),
            ("lbqid x { recur 3.Lightyears; }", "bad recurrence"),
            ("lbqid x { widget; }", "expected 'element' or 'recur'"),
            ("lbqid x { }", "at least one element"),
            (
                "lbqid x { element area(0,0,1,1) window(07:00,08:00);",
                "unterminated",
            ),
            (
                "lbqid x { element area(0,0,1,1) window(07:00,08:00); } garbage",
                "trailing",
            ),
            (
                "lbqid x { element area(a,0,1,1) window(07:00,08:00); }",
                "expected number",
            ),
            (
                "lbqid x { element area(0,0,1,1) window(0700,0800); }",
                "expected HH:MM",
            ),
        ];
        for (src, needle) in cases {
            let err = parse_lbqid(src).unwrap_err().to_string();
            assert!(
                err.contains(needle),
                "for {src:?}: expected {needle:?} in {err:?}"
            );
        }
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let q = parse_lbqid(
            "lbqid   x\n{\n# comment\nelement area( 0 , 0 , 1 , 1 )\nwindow( 07:00 , 08:00 ) ;\n# another\n}",
        )
        .unwrap();
        assert_eq!(q.name(), "x");
    }
}
