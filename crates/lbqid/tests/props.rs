//! Property tests: the online monitor is sound with respect to the
//! exhaustive Definition-3 checker, and matching is monotone.

use hka_geo::{DayWindow, Rect, StPoint, TimeSec, HOUR};
use hka_granules::Recurrence;
use hka_lbqid::{offline, Element, Lbqid, Monitor};
use proptest::prelude::*;

fn home() -> Rect {
    Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
}

fn office() -> Rect {
    Rect::from_bounds(900.0, 900.0, 1000.0, 1000.0)
}

/// A short two-element pattern with a small recurrence so random streams
/// have a realistic chance of matching.
fn small_pattern() -> Lbqid {
    Lbqid::new(
        "morning",
        vec![
            Element::new(home(), DayWindow::hm((7, 0), (9, 0))),
            Element::new(office(), DayWindow::hm((8, 0), (12, 0))),
        ],
        "2.Days".parse().unwrap(),
    )
    .unwrap()
}

/// Random request: at home, at the office, or downtown (matching nothing),
/// at a random hour of a random day in a two-week horizon.
fn arb_request() -> impl Strategy<Value = StPoint> {
    (0usize..3, 0i64..14, 0i64..24, 0i64..60).prop_map(|(place, day, hour, minute)| {
        let pos = match place {
            0 => hka_geo::Point::new(50.0, 50.0),
            1 => hka_geo::Point::new(950.0, 950.0),
            _ => hka_geo::Point::new(500.0, 500.0),
        };
        StPoint::new(pos, TimeSec::at(day, hour * HOUR + minute * 60))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: if the online automaton declares a full match, the
    /// exhaustive checker agrees that the request set matches (Def. 3).
    #[test]
    fn online_match_implies_offline_match(reqs in prop::collection::vec(arb_request(), 0..14)) {
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|p| p.t);
        let mut monitor = Monitor::new(small_pattern());
        let mut online = false;
        for p in &sorted {
            if let Some(ev) = monitor.observe(*p) {
                online = online || ev.full_match;
            }
        }
        prop_assert_eq!(online, monitor.is_fully_matched());
        if online {
            prop_assert!(offline::matches(&small_pattern(), &sorted),
                "online matched but offline (ground truth) did not");
        }
    }

    /// Offline matching is monotone: adding requests never destroys a
    /// match.
    #[test]
    fn offline_matching_is_monotone(
        reqs in prop::collection::vec(arb_request(), 0..10),
        extra in prop::collection::vec(arb_request(), 0..3),
    ) {
        let q = small_pattern();
        if offline::matches(&q, &reqs) {
            let mut more = reqs.clone();
            more.extend(extra);
            prop_assert!(offline::matches(&q, &more));
        }
    }

    /// Every event the monitor emits references a request that matches the
    /// reported element (the TS relies on this to decide generalization).
    #[test]
    fn events_are_truthful(reqs in prop::collection::vec(arb_request(), 0..20)) {
        let mut sorted = reqs;
        sorted.sort_by_key(|p| p.t);
        let q = small_pattern();
        let mut monitor = Monitor::new(q.clone());
        for p in &sorted {
            if let Some(ev) = monitor.observe(*p) {
                prop_assert!(q.elements()[ev.element].matches(p));
                if let Some(obs) = ev.completed_observation {
                    prop_assert!(obs.contains(p.t) || obs.end() == p.t);
                }
            }
        }
    }

    /// Monitor state stays bounded no matter the stream.
    #[test]
    fn monitor_state_is_bounded(reqs in prop::collection::vec(arb_request(), 0..60)) {
        let mut sorted = reqs;
        sorted.sort_by_key(|p| p.t);
        let mut monitor = Monitor::new(small_pattern());
        for p in &sorted {
            monitor.observe(*p);
            prop_assert!(monitor.live_partials() <= Monitor::MAX_PARTIALS);
        }
    }

    /// Reset really forgets: a fresh monitor and a reset monitor agree on
    /// any subsequent stream.
    #[test]
    fn reset_equals_fresh(
        before in prop::collection::vec(arb_request(), 0..10),
        after in prop::collection::vec(arb_request(), 0..10),
    ) {
        let mut a = Monitor::new(small_pattern());
        let mut sorted_before = before;
        sorted_before.sort_by_key(|p| p.t);
        for p in &sorted_before {
            a.observe(*p);
        }
        a.reset();
        let mut b = Monitor::new(small_pattern());
        let mut sorted_after = after;
        sorted_after.sort_by_key(|p| p.t);
        // Feed the same post-reset stream; observable state must agree.
        // (Times may precede `before`'s — both monitors see them fresh.)
        for p in &sorted_after {
            let ea = a.observe(*p);
            let eb = b.observe(*p);
            prop_assert_eq!(ea.is_some(), eb.is_some());
            if let (Some(ea), Some(eb)) = (ea, eb) {
                prop_assert_eq!(ea.element, eb.element);
                prop_assert_eq!(ea.started, eb.started);
                prop_assert_eq!(ea.full_match, eb.full_match);
            }
        }
        prop_assert_eq!(a.is_fully_matched(), b.is_fully_matched());
        prop_assert_eq!(a.completed_observations(), b.completed_observations());
    }

    /// DSL round-trip: a generated pattern printed via Display-ish parts
    /// and re-parsed from equivalent DSL text yields equal matching
    /// behaviour on sample points.
    #[test]
    fn dsl_equivalent_pattern_matches_identically(
        x1 in 0.0f64..500.0, y1 in 0.0f64..500.0,
        w in 1.0f64..400.0, h in 1.0f64..400.0,
        h1 in 0i64..22, reqs in prop::collection::vec(arb_request(), 0..10),
    ) {
        let area = Rect::from_bounds(x1, y1, x1 + w, y1 + h);
        let window = DayWindow::new(h1 * HOUR, (h1 + 2) * HOUR);
        let built = Lbqid::new(
            "p",
            vec![Element::new(area, window)],
            Recurrence::once(),
        ).unwrap();
        let dsl = format!(
            "lbqid p {{ element area({}, {}, {}, {}) window({:02}:00, {:02}:00); }}",
            x1, y1, x1 + w, y1 + h, h1, h1 + 2
        );
        let parsed = hka_lbqid::parse_lbqid(&dsl).unwrap();
        for p in &reqs {
            prop_assert_eq!(
                built.matches_some_element(p),
                parsed.matches_some_element(p)
            );
        }
    }
}
