//! Agents and their daily itineraries.

use crate::City;
use hka_geo::{Point, StPoint, TimeSec, HOUR, MINUTE};
use hka_granules::calendar::{weekday_of_day, Weekday};
use hka_trajectory::UserId;
use rand::rngs::StdRng;
use rand::RngExt;

/// What kind of life an agent leads.
#[derive(Debug, Clone, PartialEq)]
pub enum Role {
    /// Weekday home → office → home round trips (the paper's Example 1
    /// user). Fields index into [`City::homes`] / [`City::offices`].
    Commuter {
        /// Home building index.
        home: usize,
        /// Office building index.
        office: usize,
        /// Seconds after midnight the agent leaves home (pre-jitter).
        depart_home: i64,
        /// Seconds after midnight the agent leaves the office (pre-jitter).
        depart_office: i64,
    },
    /// Random-waypoint background user.
    Roamer {
        /// Longest pause at a waypoint, seconds.
        max_pause: i64,
    },
    /// Home-anchored user with recurring evening visits to one POI.
    PoiRegular {
        /// Home building index.
        home: usize,
        /// Favorite POI index.
        poi: usize,
        /// Which weekdays the visit happens (Monday-first mask).
        days: [bool; 7],
        /// Departure time for the outing, seconds after midnight.
        depart: i64,
        /// Time spent at the POI, seconds.
        dwell: i64,
    },
}

/// A simulated user.
#[derive(Debug, Clone, PartialEq)]
pub struct Agent {
    /// The user this agent plays.
    pub user: UserId,
    /// Behaviour.
    pub role: Role,
    /// Movement speed, m/s (commuters drive, roamers walk).
    pub speed: f64,
}

/// Why an agent is at a particular place at a particular time. Anchors
/// mark the moments when a user plausibly issues a service request tied to
/// a routine — exactly the observations an LBQID captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnchorKind {
    /// At home in the morning, before leaving.
    HomeMorning,
    /// Just arrived at the office.
    OfficeArrive,
    /// At the office, shortly before leaving.
    OfficeLeave,
    /// Back home in the evening.
    HomeEvening,
    /// During a POI visit.
    PoiVisit,
}

/// An anchor occurrence within a day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anchor {
    /// Where/when.
    pub at: StPoint,
    /// Routine context.
    pub kind: AnchorKind,
}

/// One day of simulated movement: position samples plus routine anchors.
#[derive(Debug, Clone, Default)]
pub struct DayTrace {
    /// Position samples every `sample_interval` seconds, 06:00–22:00.
    pub samples: Vec<StPoint>,
    /// Routine anchors (each coincides with a sample).
    pub anchors: Vec<Anchor>,
}

/// A movement plan for a day: the agent is at `legs[i].1` from
/// `legs[i].0` onwards, moving there Manhattan-style from the previous
/// location.
type Itinerary = Vec<(TimeSec, Point)>;

impl Agent {
    /// Simulates one day, sampling positions every `dt` seconds between
    /// 06:00 and 22:00.
    pub fn simulate_day(&self, city: &City, day: i64, dt: i64, rng: &mut StdRng) -> DayTrace {
        assert!(dt > 0, "sample interval must be positive");
        let (itinerary, anchor_plan) = self.plan(city, day, rng);
        let day_start = TimeSec::at_hm(day, 6, 0);
        let day_end = TimeSec::at_hm(day, 22, 0);

        let mut trace = DayTrace::default();
        let mut t = day_start;
        while t <= day_end {
            trace
                .samples
                .push(StPoint::new(position_at(&itinerary, t, self.speed), t));
            t += dt;
        }
        // Anchors snap to the nearest sample at-or-after their time.
        for (at, kind) in anchor_plan {
            let idx = ((at - day_start).max(0) as usize).div_ceil(dt as usize);
            if let Some(p) = trace.samples.get(idx) {
                trace.anchors.push(Anchor { at: *p, kind });
            }
        }
        trace
    }

    /// Builds the day's itinerary and the anchor schedule.
    fn plan(
        &self,
        city: &City,
        day: i64,
        rng: &mut StdRng,
    ) -> (Itinerary, Vec<(TimeSec, AnchorKind)>) {
        let jitter = |rng: &mut StdRng, spread: i64| rng.random_range(-spread..=spread);
        match &self.role {
            Role::Commuter {
                home,
                office,
                depart_home,
                depart_office,
            } => {
                let home_p = City::inside(&city.homes[*home]);
                let office_p = City::inside(&city.offices[*office]);
                let weekday = weekday_of_day(day);
                if !weekday.is_business_day() {
                    // Weekend: home all day (occasionally a short walk).
                    let mut it: Itinerary = vec![(TimeSec::at(day, 0), home_p)];
                    if rng.random_bool(0.5) {
                        let out = city.random_point(rng);
                        let leave = TimeSec::at_hm(day, 11, 0) + jitter(rng, 2 * HOUR);
                        let back = leave + 2 * HOUR;
                        it.push((leave, out));
                        it.push((back, home_p));
                    }
                    return (it, vec![]);
                }
                let leave_home = TimeSec::at(day, *depart_home) + jitter(rng, 8 * MINUTE);
                let leave_office = TimeSec::at(day, *depart_office) + jitter(rng, 12 * MINUTE);
                let it: Itinerary = vec![
                    (TimeSec::at(day, 0), home_p),
                    (leave_home, office_p),
                    (leave_office, home_p),
                ];
                // Anchor times inside the canonical commute windows.
                let travel = (home_p.manhattan_dist(&office_p) / self.speed).ceil() as i64;
                let anchors = vec![
                    (
                        leave_home - rng.random_range(5 * MINUTE..20 * MINUTE),
                        AnchorKind::HomeMorning,
                    ),
                    (
                        (leave_home + travel + rng.random_range(2 * MINUTE..10 * MINUTE))
                            .max(TimeSec::at_hm(day, 8, 1)),
                        AnchorKind::OfficeArrive,
                    ),
                    (
                        leave_office - rng.random_range(5 * MINUTE..20 * MINUTE),
                        AnchorKind::OfficeLeave,
                    ),
                    (
                        (leave_office + travel + rng.random_range(2 * MINUTE..10 * MINUTE))
                            .max(TimeSec::at_hm(day, 17, 1)),
                        AnchorKind::HomeEvening,
                    ),
                ];
                (it, anchors)
            }
            Role::Roamer { max_pause } => {
                // Random waypoints from 06:00 to 22:00.
                let mut it: Itinerary = vec![(TimeSec::at(day, 0), city.random_point(rng))];
                let mut t = TimeSec::at_hm(day, 6, 0);
                let end = TimeSec::at_hm(day, 22, 0);
                let mut cur = it[0].1;
                while t < end {
                    let next = city.random_point(rng);
                    let travel = (cur.manhattan_dist(&next) / self.speed).ceil() as i64;
                    it.push((t, next));
                    cur = next;
                    t = t + travel + rng.random_range(MINUTE..=*max_pause);
                }
                (it, vec![])
            }
            Role::PoiRegular {
                home,
                poi,
                days,
                depart,
                dwell,
            } => {
                let home_p = City::inside(&city.homes[*home]);
                let poi_p = City::inside(&city.pois[*poi]);
                let weekday = weekday_of_day(day);
                let mut it: Itinerary = vec![(TimeSec::at(day, 0), home_p)];
                let mut anchors = vec![];
                if days[weekday as usize] {
                    let leave = TimeSec::at(day, *depart) + jitter(rng, 10 * MINUTE);
                    let travel = (home_p.manhattan_dist(&poi_p) / self.speed).ceil() as i64;
                    let back = leave + travel + *dwell;
                    it.push((leave, poi_p));
                    it.push((back, home_p));
                    anchors.push((
                        leave + travel + rng.random_range(MINUTE..10 * MINUTE),
                        AnchorKind::PoiVisit,
                    ));
                }
                (it, anchors)
            }
        }
    }
}

/// Where an agent following `itinerary` at `speed` is at time `t`:
/// at each leg's start time the agent departs its previous location and
/// moves Manhattan-style (x first, then y) towards the leg target.
fn position_at(itinerary: &Itinerary, t: TimeSec, speed: f64) -> Point {
    debug_assert!(!itinerary.is_empty());
    let mut pos = itinerary[0].1;
    for (depart, target) in itinerary.iter().skip(1) {
        if t < *depart {
            break;
        }
        let elapsed = (t - *depart) as f64;
        let budget = elapsed * speed;
        pos = manhattan_move(pos, *target, budget);
    }
    pos
}

/// Moves from `from` towards `to` along x then y, spending at most
/// `budget` meters.
fn manhattan_move(from: Point, to: Point, budget: f64) -> Point {
    if budget <= 0.0 {
        return from;
    }
    let dx = to.x - from.x;
    if budget <= dx.abs() {
        return Point::new(from.x + dx.signum() * budget, from.y);
    }
    let rem = budget - dx.abs();
    let dy = to.y - from.y;
    if rem <= dy.abs() {
        return Point::new(to.x, from.y + dy.signum() * rem);
    }
    to
}

/// A convenient default weekday mask (all business days).
pub fn business_days() -> [bool; 7] {
    let mut m = [false; 7];
    for d in Weekday::ALL {
        if d.is_business_day() {
            m[d as usize] = true;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CityConfig;
    use rand::SeedableRng;

    fn city() -> City {
        City::generate(&CityConfig::default(), &mut StdRng::seed_from_u64(11))
    }

    fn commuter(city: &City) -> Agent {
        let _ = city;
        Agent {
            user: UserId(1),
            role: Role::Commuter {
                home: 0,
                office: 0,
                depart_home: 7 * HOUR + 45 * MINUTE,
                depart_office: 16 * HOUR + 45 * MINUTE,
            },
            speed: 10.0,
        }
    }

    #[test]
    fn manhattan_move_steps() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 5.0);
        assert_eq!(manhattan_move(a, b, 0.0), a);
        assert_eq!(manhattan_move(a, b, 4.0), Point::new(4.0, 0.0));
        assert_eq!(manhattan_move(a, b, 12.0), Point::new(10.0, 2.0));
        assert_eq!(manhattan_move(a, b, 100.0), b);
    }

    #[test]
    fn commuter_is_home_then_office_then_home() {
        let city = city();
        let a = commuter(&city);
        let mut rng = StdRng::seed_from_u64(5);
        let trace = a.simulate_day(&city, 0, 60, &mut rng); // Monday
        let home = City::inside(&city.homes[0]);
        let office = City::inside(&city.offices[0]);
        let at = |h: u32, m: u32| {
            trace
                .samples
                .iter()
                .find(|p| p.t >= TimeSec::at_hm(0, h, m))
                .unwrap()
                .pos
        };
        assert_eq!(at(7, 0), home);
        assert_eq!(at(10, 0), office);
        assert_eq!(at(21, 0), home);
    }

    #[test]
    fn commuter_anchor_times_fit_commute_windows() {
        let city = city();
        let a = commuter(&city);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let trace = a.simulate_day(&city, 1, 30, &mut rng); // Tuesday
            assert_eq!(trace.anchors.len(), 4);
            let home = City::inside(&city.homes[0]);
            let office = City::inside(&city.offices[0]);
            for anchor in &trace.anchors {
                let sod = anchor.at.t.second_of_day();
                match anchor.kind {
                    AnchorKind::HomeMorning => {
                        assert_eq!(anchor.at.pos, home);
                        assert!((7 * HOUR..8 * HOUR).contains(&sod), "sod={sod}");
                    }
                    AnchorKind::OfficeArrive => {
                        assert_eq!(anchor.at.pos, office);
                        assert!((8 * HOUR..9 * HOUR).contains(&sod), "sod={sod}");
                    }
                    AnchorKind::OfficeLeave => {
                        assert_eq!(anchor.at.pos, office);
                        assert!((16 * HOUR..18 * HOUR).contains(&sod), "sod={sod}");
                    }
                    AnchorKind::HomeEvening => {
                        assert_eq!(anchor.at.pos, home);
                        assert!((17 * HOUR..19 * HOUR).contains(&sod), "sod={sod}");
                    }
                    AnchorKind::PoiVisit => panic!("commuters have no POI anchors"),
                }
            }
        }
    }

    #[test]
    fn commuter_stays_home_area_on_weekends() {
        let city = city();
        let a = commuter(&city);
        let mut rng = StdRng::seed_from_u64(5);
        let trace = a.simulate_day(&city, 5, 300, &mut rng); // Saturday
        assert!(trace.anchors.is_empty());
        let office = City::inside(&city.offices[0]);
        assert!(trace.samples.iter().all(|p| p.pos != office));
    }

    #[test]
    fn roamer_moves_within_bounds() {
        let city = city();
        let a = Agent {
            user: UserId(2),
            role: Role::Roamer {
                max_pause: 10 * MINUTE,
            },
            speed: 1.5,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let trace = a.simulate_day(&city, 0, 120, &mut rng);
        assert!(!trace.samples.is_empty());
        for p in &trace.samples {
            assert!(city.bounds.contains(&p.pos));
        }
        // It actually moves.
        let distinct: std::collections::BTreeSet<String> = trace
            .samples
            .iter()
            .map(|p| format!("{:.0},{:.0}", p.pos.x, p.pos.y))
            .collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn poi_regular_visits_on_scheduled_days_only() {
        let city = city();
        let mut days = [false; 7];
        days[Weekday::Tuesday as usize] = true;
        let a = Agent {
            user: UserId(3),
            role: Role::PoiRegular {
                home: 1,
                poi: 2,
                days,
                depart: 18 * HOUR + 30 * MINUTE,
                dwell: HOUR,
            },
            speed: 8.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let tue = a.simulate_day(&city, 1, 60, &mut rng);
        assert_eq!(tue.anchors.len(), 1);
        assert_eq!(tue.anchors[0].kind, AnchorKind::PoiVisit);
        assert_eq!(tue.anchors[0].at.pos, City::inside(&city.pois[2]));
        let wed = a.simulate_day(&city, 2, 60, &mut rng);
        assert!(wed.anchors.is_empty());
        // Wednesday: home all day.
        let home = City::inside(&city.homes[1]);
        assert!(wed.samples.iter().all(|p| p.pos == home));
    }

    #[test]
    fn samples_are_evenly_spaced_and_daytime() {
        let city = city();
        let a = commuter(&city);
        let mut rng = StdRng::seed_from_u64(0);
        let trace = a.simulate_day(&city, 0, 60, &mut rng);
        assert_eq!(trace.samples.len(), (16 * 60) + 1); // 06:00..=22:00 each minute
        for w in trace.samples.windows(2) {
            assert_eq!(w[1].t - w[0].t, 60);
        }
    }

    #[test]
    fn anchors_coincide_with_samples() {
        let city = city();
        let a = commuter(&city);
        let mut rng = StdRng::seed_from_u64(123);
        let trace = a.simulate_day(&city, 3, 45, &mut rng);
        for anchor in &trace.anchors {
            assert!(trace.samples.contains(&anchor.at));
        }
    }

    #[test]
    fn business_days_mask() {
        let m = business_days();
        assert_eq!(m, [true, true, true, true, true, false, false]);
    }
}
