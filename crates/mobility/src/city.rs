//! The synthetic city: a bounded plane with homes, offices and points of
//! interest.

use hka_geo::{Point, Rect};
use rand::rngs::StdRng;
use rand::RngExt;

/// Sizing of the generated city.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityConfig {
    /// City extent along x, meters.
    pub width: f64,
    /// City extent along y, meters.
    pub height: f64,
    /// Number of residential buildings.
    pub n_homes: usize,
    /// Number of office buildings.
    pub n_offices: usize,
    /// Number of points of interest (shops, clinics, cafés…).
    pub n_pois: usize,
    /// Side of each building footprint, meters.
    pub building_size: f64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            width: 3_000.0,
            height: 3_000.0,
            n_homes: 40,
            n_offices: 12,
            n_pois: 15,
            building_size: 60.0,
        }
    }
}

/// The generated city layout.
///
/// Homes occupy the western residential band, offices the eastern
/// commercial band (so commutes have non-trivial length); POIs are spread
/// everywhere. All placement is deterministic given the RNG.
#[derive(Debug, Clone)]
pub struct City {
    /// The city limits.
    pub bounds: Rect,
    /// Residential building footprints.
    pub homes: Vec<Rect>,
    /// Office building footprints.
    pub offices: Vec<Rect>,
    /// Point-of-interest footprints.
    pub pois: Vec<Rect>,
}

impl City {
    /// Lays out a city from the config.
    pub fn generate(cfg: &CityConfig, rng: &mut StdRng) -> City {
        assert!(cfg.width > 0.0 && cfg.height > 0.0, "city must have area");
        assert!(
            cfg.building_size * 3.0 <= cfg.width.min(cfg.height),
            "buildings must fit the city"
        );
        let bounds = Rect::from_bounds(0.0, 0.0, cfg.width, cfg.height);
        let b = cfg.building_size;
        let place = |rng: &mut StdRng, x_lo: f64, x_hi: f64| {
            let x = rng.random_range(x_lo..(x_hi - b));
            let y = rng.random_range(0.0..(cfg.height - b));
            Rect::from_bounds(x, y, x + b, y + b)
        };
        // Residential west third; commercial east third.
        let homes = (0..cfg.n_homes)
            .map(|_| place(rng, 0.0, cfg.width / 3.0))
            .collect();
        let offices = (0..cfg.n_offices)
            .map(|_| place(rng, 2.0 * cfg.width / 3.0, cfg.width))
            .collect();
        let pois = (0..cfg.n_pois)
            .map(|_| place(rng, 0.0, cfg.width))
            .collect();
        City {
            bounds,
            homes,
            offices,
            pois,
        }
    }

    /// A deterministic interior point of a building (its center).
    pub fn inside(rect: &Rect) -> Point {
        rect.center()
    }

    /// A random point within the city limits.
    pub fn random_point(&self, rng: &mut StdRng) -> Point {
        Point::new(
            rng.random_range(self.bounds.min().x..self.bounds.max().x),
            rng.random_range(self.bounds.min().y..self.bounds.max().y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CityConfig::default();
        let a = City::generate(&cfg, &mut StdRng::seed_from_u64(7));
        let b = City::generate(&cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.homes, b.homes);
        assert_eq!(a.offices, b.offices);
        assert_eq!(a.pois, b.pois);
        let c = City::generate(&cfg, &mut StdRng::seed_from_u64(8));
        assert_ne!(a.homes, c.homes);
    }

    #[test]
    fn buildings_are_inside_bounds_and_sized() {
        let cfg = CityConfig::default();
        let city = City::generate(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(city.homes.len(), cfg.n_homes);
        assert_eq!(city.offices.len(), cfg.n_offices);
        assert_eq!(city.pois.len(), cfg.n_pois);
        for r in city.homes.iter().chain(&city.offices).chain(&city.pois) {
            assert!(city.bounds.contains_rect(r));
            assert!((r.width() - cfg.building_size).abs() < 1e-9);
            assert!((r.height() - cfg.building_size).abs() < 1e-9);
        }
    }

    #[test]
    fn homes_west_offices_east() {
        let cfg = CityConfig::default();
        let city = City::generate(&cfg, &mut StdRng::seed_from_u64(2));
        for h in &city.homes {
            assert!(h.max().x <= cfg.width / 3.0 + 1e-9);
        }
        for o in &city.offices {
            assert!(o.min().x >= 2.0 * cfg.width / 3.0 - 1e-9);
        }
    }

    #[test]
    fn random_points_inside() {
        let city = City::generate(&CityConfig::default(), &mut StdRng::seed_from_u64(3));
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(city.bounds.contains(&city.random_point(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "fit the city")]
    fn oversized_buildings_rejected() {
        let cfg = CityConfig {
            building_size: 2_000.0,
            ..CityConfig::default()
        };
        let _ = City::generate(&cfg, &mut StdRng::seed_from_u64(0));
    }
}
