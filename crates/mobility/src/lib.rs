//! # hka-mobility
//!
//! Synthetic mobility and request workloads.
//!
//! The paper's trusted server operates on "a moving object database
//! storing precise data for all of its users"; the original authors had a
//! wireless operator's view in mind. No such traces ship with this
//! reproduction, so this crate generates the closest synthetic equivalent
//! (per DESIGN.md's substitution table): a seeded city with
//!
//! * **commuters** — the paper's Example 1 users, making home → office
//!   round trips on weekdays with per-user schedule jitter (these are the
//!   users whose movements instantiate the commute LBQID);
//! * **roamers** — random-waypoint background population providing the
//!   crowds that anonymity sets are drawn from;
//! * **POI regulars** — home-anchored users with recurring evening visits
//!   to a favorite point of interest ("personal points of interest" are
//!   one of the paper's three classes of sensitive location data).
//!
//! [`World::generate`] produces a deterministic, time-sorted stream of
//! [`Event`]s — location updates interleaved with service requests — that
//! the trusted server consumes; requests always coincide with a location
//! sample, matching the paper's invariant that "for each request r_i there
//! must be an element in the PHL of User(r_i)".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod city;
mod world;

pub use agent::{business_days, Agent, Anchor, AnchorKind, DayTrace, Role};
pub use city::{City, CityConfig};
pub use world::{Event, EventKind, World, WorldConfig, ANCHOR_SERVICE, BACKGROUND_SERVICE};
