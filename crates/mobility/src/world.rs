//! The full workload: agents simulated over days, flattened into a
//! deterministic, time-sorted event stream.

use crate::agent::{business_days, Anchor};
use crate::{Agent, City, CityConfig, Role};
use hka_geo::{Rect, StPoint, HOUR, MINUTE};
use hka_trajectory::{TrajectoryStore, UserId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Workload sizing and behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Number of simulated days (day 0 is a Monday).
    pub days: i64,
    /// Location-update sampling interval, seconds.
    pub sample_interval: i64,
    /// Number of commuting agents.
    pub n_commuters: usize,
    /// Number of random-waypoint agents.
    pub n_roamers: usize,
    /// Number of POI-regular agents.
    pub n_poi_regulars: usize,
    /// City layout.
    pub city: CityConfig,
    /// Probability that a routine anchor produces a service request.
    pub anchor_request_prob: f64,
    /// Background requests per agent-hour (issued at sample points).
    pub background_request_rate: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            days: 14,
            sample_interval: 60,
            n_commuters: 20,
            n_roamers: 30,
            n_poi_regulars: 10,
            city: CityConfig::default(),
            anchor_request_prob: 1.0,
            background_request_rate: 0.5,
        }
    }
}

/// What an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A positioning update (feeds the PHL only).
    Location,
    /// A service request issued from the current position; the payload is
    /// the service class (0 = background, 1 = routine/anchor requests).
    Request {
        /// Service class.
        service: u32,
    },
}

/// One timestamped event of the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// The acting user.
    pub user: UserId,
    /// Exact position and time.
    pub at: StPoint,
    /// Update or request.
    pub kind: EventKind,
}

/// The generated world: city, agents, and the event stream.
#[derive(Debug, Clone)]
pub struct World {
    /// City layout.
    pub city: City,
    /// All agents (commuters first, then roamers, then POI regulars).
    pub agents: Vec<Agent>,
    /// All events, sorted by time (ties: by user, locations before
    /// requests).
    pub events: Vec<Event>,
}

/// The service class assigned to routine (anchor) requests.
pub const ANCHOR_SERVICE: u32 = 1;
/// The service class assigned to background requests.
pub const BACKGROUND_SERVICE: u32 = 0;

impl World {
    /// Generates the world deterministically from the config.
    pub fn generate(cfg: &WorldConfig) -> World {
        assert!(cfg.days > 0, "need at least one day");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let city = City::generate(&cfg.city, &mut rng);
        let mut agents = Vec::new();
        let mut next_user = 0u64;

        for _ in 0..cfg.n_commuters {
            agents.push(Agent {
                user: UserId(next_user),
                role: Role::Commuter {
                    home: rng.random_range(0..city.homes.len()),
                    office: rng.random_range(0..city.offices.len()),
                    depart_home: 7 * HOUR + rng.random_range(35 * MINUTE..50 * MINUTE),
                    depart_office: 16 * HOUR + rng.random_range(30 * MINUTE..55 * MINUTE),
                },
                speed: rng.random_range(8.0..12.0),
            });
            next_user += 1;
        }
        for _ in 0..cfg.n_roamers {
            agents.push(Agent {
                user: UserId(next_user),
                role: Role::Roamer {
                    max_pause: rng.random_range(5 * MINUTE..30 * MINUTE),
                },
                speed: rng.random_range(1.0..3.0),
            });
            next_user += 1;
        }
        for _ in 0..cfg.n_poi_regulars {
            let mut days = [false; 7];
            // Two or three fixed outing weekdays.
            let outings = rng.random_range(2..=3);
            let all = business_days();
            let mut picked = 0;
            while picked < outings {
                let d: usize = rng.random_range(0..7);
                if all[d] && !days[d] {
                    days[d] = true;
                    picked += 1;
                }
            }
            agents.push(Agent {
                user: UserId(next_user),
                role: Role::PoiRegular {
                    home: rng.random_range(0..city.homes.len()),
                    poi: rng.random_range(0..city.pois.len()),
                    days,
                    depart: 18 * HOUR + rng.random_range(0..40 * MINUTE),
                    dwell: rng.random_range(30 * MINUTE..90 * MINUTE),
                },
                speed: rng.random_range(6.0..10.0),
            });
            next_user += 1;
        }

        // Per-sample background request probability.
        let p_bg =
            (cfg.background_request_rate * cfg.sample_interval as f64 / 3_600.0).clamp(0.0, 1.0);

        let mut events = Vec::new();
        for agent in &agents {
            // A per-agent stream derived from the master seed keeps agents
            // independent of each other's sampling order.
            let mut arng = StdRng::seed_from_u64(
                cfg.seed ^ (agent.user.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            for day in 0..cfg.days {
                let trace = agent.simulate_day(&city, day, cfg.sample_interval, &mut arng);
                for s in &trace.samples {
                    events.push(Event {
                        user: agent.user,
                        at: *s,
                        kind: EventKind::Location,
                    });
                    if p_bg > 0.0 && arng.random_bool(p_bg) {
                        events.push(Event {
                            user: agent.user,
                            at: *s,
                            kind: EventKind::Request {
                                service: BACKGROUND_SERVICE,
                            },
                        });
                    }
                }
                for Anchor { at, kind } in &trace.anchors {
                    let _ = kind;
                    if arng.random_bool(cfg.anchor_request_prob.clamp(0.0, 1.0)) {
                        events.push(Event {
                            user: agent.user,
                            at: *at,
                            kind: EventKind::Request {
                                service: ANCHOR_SERVICE,
                            },
                        });
                    }
                }
            }
        }
        // Deterministic global order: by time, then user, locations first.
        events.sort_by_key(|e| {
            (
                e.at.t,
                e.user,
                match e.kind {
                    EventKind::Location => 0u8,
                    EventKind::Request { .. } => 1,
                },
            )
        });
        World {
            city,
            agents,
            events,
        }
    }

    /// Builds the trajectory store the trusted server would hold after
    /// ingesting every location update.
    pub fn store(&self) -> TrajectoryStore {
        let mut store = TrajectoryStore::new();
        for a in &self.agents {
            store.ensure_user(a.user);
        }
        for e in &self.events {
            if e.kind == EventKind::Location {
                store.record(e.user, e.at);
            }
        }
        store
    }

    /// The home rectangle of an agent, if it has one.
    pub fn home_of(&self, user: UserId) -> Option<Rect> {
        self.agents
            .iter()
            .find(|a| a.user == user)
            .and_then(|a| match &a.role {
                Role::Commuter { home, .. } | Role::PoiRegular { home, .. } => {
                    Some(self.city.homes[*home])
                }
                Role::Roamer { .. } => None,
            })
    }

    /// The office rectangle of a commuter.
    pub fn office_of(&self, user: UserId) -> Option<Rect> {
        self.agents
            .iter()
            .find(|a| a.user == user)
            .and_then(|a| match &a.role {
                Role::Commuter { office, .. } => Some(self.city.offices[*office]),
                _ => None,
            })
    }

    /// All commuter user ids.
    pub fn commuters(&self) -> impl Iterator<Item = UserId> + '_ {
        self.agents.iter().filter_map(|a| match a.role {
            Role::Commuter { .. } => Some(a.user),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorldConfig {
        WorldConfig {
            seed: 7,
            days: 3,
            sample_interval: 120,
            n_commuters: 3,
            n_roamers: 4,
            n_poi_regulars: 2,
            background_request_rate: 0.2,
            ..WorldConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&small());
        let b = World::generate(&small());
        assert_eq!(a.events, b.events);
        assert_eq!(a.agents, b.agents);
    }

    #[test]
    fn events_are_time_sorted() {
        let w = World::generate(&small());
        for pair in w.events.windows(2) {
            assert!(pair[0].at.t <= pair[1].at.t);
        }
        assert!(!w.events.is_empty());
    }

    #[test]
    fn every_request_coincides_with_a_location_update() {
        let w = World::generate(&small());
        let store = w.store();
        for e in &w.events {
            if matches!(e.kind, EventKind::Request { .. }) {
                let phl = store.phl(e.user).unwrap();
                assert!(phl.points().contains(&e.at), "request without PHL point");
            }
        }
    }

    #[test]
    fn store_has_all_users() {
        let w = World::generate(&small());
        let store = w.store();
        assert_eq!(store.user_count(), 9);
        assert!(store.total_points() > 0);
    }

    #[test]
    fn anchor_requests_appear_for_commuters() {
        let w = World::generate(&small());
        let commuters: Vec<UserId> = w.commuters().collect();
        assert_eq!(commuters.len(), 3);
        for u in commuters {
            let anchors = w
                .events
                .iter()
                .filter(|e| {
                    e.user == u
                        && e.kind
                            == EventKind::Request {
                                service: ANCHOR_SERVICE,
                            }
                })
                .count();
            // 3 days: Mon-Wed → up to 12 anchor requests with prob 1.0.
            assert_eq!(anchors, 12, "user {u}");
        }
    }

    #[test]
    fn home_and_office_lookups() {
        let w = World::generate(&small());
        let commuter = w.commuters().next().unwrap();
        assert!(w.home_of(commuter).is_some());
        assert!(w.office_of(commuter).is_some());
        // Roamers have neither.
        let roamer = w
            .agents
            .iter()
            .find(|a| matches!(a.role, Role::Roamer { .. }))
            .unwrap()
            .user;
        assert!(w.home_of(roamer).is_none());
        assert!(w.office_of(roamer).is_none());
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(&small());
        let b = World::generate(&WorldConfig { seed: 8, ..small() });
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn background_rate_zero_means_only_anchor_requests() {
        let cfg = WorldConfig {
            background_request_rate: 0.0,
            ..small()
        };
        let w = World::generate(&cfg);
        assert!(w.events.iter().all(|e| match e.kind {
            EventKind::Request { service } => service == ANCHOR_SERVICE,
            EventKind::Location => true,
        }));
    }
}
