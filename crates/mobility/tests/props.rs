//! Property tests for the synthetic workload generator: physical
//! plausibility and determinism across the configuration space.

use hka_geo::{StPoint, HOUR, MINUTE};
use hka_mobility::{Agent, City, CityConfig, Event, EventKind, Role, World, WorldConfig};
use hka_trajectory::UserId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_world_config() -> impl Strategy<Value = WorldConfig> {
    (
        0u64..1_000,
        1i64..4,
        30i64..240,
        0usize..4,
        1usize..8,
        0usize..3,
        0.0f64..2.0,
    )
        .prop_map(|(seed, days, dt, nc, nr, np, rate)| WorldConfig {
            seed,
            days,
            sample_interval: dt,
            n_commuters: nc,
            n_roamers: nr,
            n_poi_regulars: np,
            city: CityConfig::default(),
            anchor_request_prob: 1.0,
            background_request_rate: rate,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation is a pure function of the config.
    #[test]
    fn world_is_deterministic(cfg in arb_world_config()) {
        let a = World::generate(&cfg);
        let b = World::generate(&cfg);
        prop_assert_eq!(a.events.len(), b.events.len());
        prop_assert_eq!(&a.events, &b.events);
    }

    /// Events are time-sorted, inside the city, and every request point
    /// appears in the issuer's PHL.
    #[test]
    fn events_are_physical(cfg in arb_world_config()) {
        let w = World::generate(&cfg);
        let store = w.store();
        let mut prev: Option<&Event> = None;
        for e in &w.events {
            if let Some(p) = prev {
                prop_assert!(p.at.t <= e.at.t, "events out of order");
            }
            prop_assert!(w.city.bounds.contains(&e.at.pos), "agent left the city");
            if matches!(e.kind, EventKind::Request { .. }) {
                prop_assert!(store.phl(e.user).unwrap().points().contains(&e.at));
            }
            prev = Some(e);
        }
        prop_assert_eq!(store.user_count(), cfg.n_commuters + cfg.n_roamers + cfg.n_poi_regulars);
    }

    /// Agents never move faster than their configured speed allows
    /// (within one sample interval; Manhattan distance bounds the path).
    #[test]
    fn agents_respect_speed_limits(cfg in arb_world_config()) {
        let w = World::generate(&cfg);
        for agent in &w.agents {
            let samples: Vec<StPoint> = w
                .events
                .iter()
                .filter(|e| e.user == agent.user && e.kind == EventKind::Location)
                .map(|e| e.at)
                .collect();
            for pair in samples.windows(2) {
                let dt = (pair[1].t - pair[0].t) as f64;
                if dt <= 0.0 {
                    continue;
                }
                let dist = pair[0].pos.manhattan_dist(&pair[1].pos);
                prop_assert!(
                    dist <= agent.speed * dt + 1e-6,
                    "{} moved {dist:.1} m in {dt:.0} s at speed {}",
                    agent.user,
                    agent.speed
                );
            }
        }
    }

    /// Commuter day simulation keeps anchors on samples and within their
    /// canonical windows, across arbitrary seeds and sampling rates.
    #[test]
    fn commuter_anchors_are_consistent(seed in 0u64..500, dt in 30i64..120, day in 0i64..5) {
        let city = City::generate(&CityConfig::default(), &mut StdRng::seed_from_u64(3));
        let agent = Agent {
            user: UserId(0),
            role: Role::Commuter {
                home: 0,
                office: 0,
                depart_home: 7 * HOUR + 45 * MINUTE,
                depart_office: 16 * HOUR + 45 * MINUTE,
            },
            speed: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = agent.simulate_day(&city, day, dt, &mut rng);
        for a in &trace.anchors {
            prop_assert!(trace.samples.contains(&a.at), "anchor off-sample");
        }
        // Weekdays have the four commute anchors; weekends none.
        if day.rem_euclid(7) < 5 {
            prop_assert_eq!(trace.anchors.len(), 4);
        } else {
            prop_assert!(trace.anchors.is_empty());
        }
    }
}
