//! Multithreaded span-recording micro: 4 worker threads each recording
//! N spans concurrently, with a live base context (the shard barrier
//! shape). Prints ns/op per thread.

use std::time::Instant;

fn main() {
    let iters = 200_000u64;
    hka_obs::trace::enable(1 << 20);
    let root = hka_obs::trace::root_detached("root");
    let ctx = root.context();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            scope.spawn(move || {
                hka_obs::trace::set_thread_track(t + 1);
                let prev = hka_obs::trace::swap_current(ctx);
                for _ in 0..iters {
                    let _s = hka_obs::trace::child("ts.handle_request");
                }
                hka_obs::trace::swap_current(prev);
            });
        }
    });
    let total = t0.elapsed().as_nanos() as f64;
    println!(
        "4 threads x {} recorded spans: {:.1} ns/op (per-thread)",
        iters,
        total / iters as f64
    );
    drop(root);
    hka_obs::trace::disable();
    println!("drained {}", hka_obs::trace::drain().len());
}
