//! Microbenchmark for the span hot paths: what one `hka_obs::span()`
//! call costs with collection off, with collection on but no live
//! context (the inert-child path every location update takes), and
//! fully recorded under a root. Run with:
//!
//! ```text
//! cargo run --release -p hka-obs --example trace_micro
//! ```

use std::time::Instant;

fn measure(label: &str, iters: u64, mut f: impl FnMut()) {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{label:<28} {ns:8.1} ns/op  ({iters} iters)");
}

fn main() {
    let iters = 1_000_000;

    hka_obs::trace::disable();
    hka_obs::trace::drain();
    measure("span, tracing off", iters, || {
        let _s = hka_obs::span("micro.off");
    });

    hka_obs::trace::enable(1 << 20);
    measure("span, enabled, no context", iters, || {
        let _s = hka_obs::span("micro.inert");
    });

    let recorded = 200_000;
    let root = hka_obs::trace::root("micro.root");
    assert!(root.is_recording());
    measure("span, enabled, recorded", recorded, || {
        let _s = hka_obs::span("micro.rec");
    });
    drop(root);

    measure("trace root, enabled", recorded, || {
        let _r = hka_obs::trace::root("micro.root2");
    });

    hka_obs::trace::disable();
    let drained = hka_obs::trace::drain().len();
    measure("trace root, disabled", iters, || {
        let _r = hka_obs::trace::root("micro.root3");
    });
    println!("drained {drained} records");
}
