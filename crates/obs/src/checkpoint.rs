//! Checkpoint snapshots and the journal anchor rule (DESIGN.md §13).
//!
//! A **checkpoint** splits a journal's history in two: a canonical
//! [`Snapshot`] file captures all state derived from the chain prefix,
//! and a `checkpoint` record appended *inside* the hash chain anchors
//! that snapshot to an exact chain position. Three properties make the
//! split crash-safe and tamper-evident:
//!
//! * **Deterministic bytes** — [`Snapshot::encode`] is canonical JSON
//!   (sorted keys, exact float round-trip), so the same state always
//!   produces the same bytes and the same [`Snapshot::content_hash`].
//! * **Anchored hash** — the `checkpoint` record's payload carries the
//!   snapshot's content hash, so the snapshot is covered by the chain:
//!   altering the snapshot breaks the hash comparison, altering the
//!   record breaks the chain.
//! * **Self-describing anchor** — the payload also duplicates the
//!   record's own chain position (`records` = the record's `seq`,
//!   `head` = the record's `prev`). A journal truncated to start at its
//!   checkpoint record therefore tells a verifier exactly where to seed
//!   its [`ChainCursor`](crate::journal::ChainCursor); a payload that
//!   disagrees with the record's actual position is refused
//!   (fail-closed).
//!
//! The prefix/suffix convention: a snapshot at chain position
//! `(records, head)` covers records `0 .. records` — the checkpoint
//! record itself (at `seq == records`) is **not** covered and is always
//! replayed. A genesis replay and a snapshot+suffix replay therefore
//! both ingest the anchor record, and land on byte-identical state.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::journal::{JournalRecord, GENESIS_HASH};
use crate::json::{self, Json};
use crate::sha256::sha256_hex;

/// The `kind` tag of a checkpoint anchor record.
pub const CHECKPOINT_KIND: &str = "checkpoint";

/// Snapshot schema version written into every snapshot file.
pub const SNAPSHOT_VERSION: i64 = 1;

/// A canonical, deterministic snapshot of state derived from a journal
/// prefix. `sections` is an open namespace — the trusted server writes
/// `store` / `users` / `server` / `stats`, the auditor writes `audit` —
/// so one snapshot file serves every consumer of the same chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Records covered: the chain prefix `0 .. records`.
    pub records: u64,
    /// Hash of record `records - 1` ([`GENESIS_HASH`] for `records` 0).
    pub head: String,
    /// Named state sections, canonically serialized.
    pub sections: BTreeMap<String, Json>,
}

impl Snapshot {
    /// An empty snapshot at chain position `(records, head)`.
    pub fn new(records: u64, head: impl Into<String>) -> Self {
        Snapshot {
            records,
            head: head.into(),
            sections: BTreeMap::new(),
        }
    }

    /// A snapshot of the empty chain (genesis, no sections).
    pub fn genesis() -> Self {
        Snapshot::new(0, GENESIS_HASH)
    }

    /// Adds (or replaces) a named section.
    pub fn set_section(&mut self, name: &str, value: Json) {
        self.sections.insert(name.to_string(), value);
    }

    /// A named section, if present.
    pub fn section(&self, name: &str) -> Option<&Json> {
        self.sections.get(name)
    }

    /// The canonical single-line serialization (trailing newline
    /// included) — exactly the bytes [`write_atomic`] puts on disk and
    /// [`Snapshot::content_hash`] hashes.
    pub fn encode(&self) -> String {
        let sections = Json::Obj(
            self.sections
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let mut line = Json::obj([
            ("head", Json::from(self.head.as_str())),
            ("records", Json::from(self.records)),
            ("sections", sections),
            ("v", Json::Int(SNAPSHOT_VERSION)),
        ])
        .to_string();
        line.push('\n');
        line
    }

    /// SHA-256 (hex) of the canonical serialization — the hash the
    /// checkpoint anchor record carries.
    pub fn content_hash(&self) -> String {
        sha256_hex(self.encode().as_bytes())
    }

    /// Parses a snapshot from its serialized form.
    pub fn parse(text: &str) -> io::Result<Snapshot> {
        let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
        let value =
            json::parse(text.trim()).map_err(|e| bad(format!("malformed snapshot: {e}")))?;
        let version = value
            .get("v")
            .and_then(|j| j.as_int())
            .ok_or_else(|| bad("snapshot missing 'v'".into()))?;
        if version != SNAPSHOT_VERSION {
            return Err(bad(format!("unsupported snapshot version {version}")));
        }
        let records = value
            .get("records")
            .and_then(|j| j.as_int())
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| bad("snapshot 'records' not a non-negative integer".into()))?;
        let head = value
            .get("head")
            .and_then(|j| j.as_str())
            .ok_or_else(|| bad("snapshot 'head' not a string".into()))?
            .to_string();
        let sections = match value.get("sections") {
            Some(Json::Obj(map)) => map.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            _ => return Err(bad("snapshot 'sections' not an object".into())),
        };
        Ok(Snapshot {
            records,
            head,
            sections,
        })
    }

    /// Reads a snapshot file, returning the parsed snapshot and the
    /// content hash of the **raw file bytes**. A caller holding an
    /// anchor compares that hash against the anchored one before
    /// trusting anything inside — a torn, tampered, or re-encoded file
    /// hashes differently and is rejected.
    pub fn read(path: &Path) -> io::Result<(Snapshot, String)> {
        let bytes = std::fs::read(path)?;
        let hash = sha256_hex(&bytes);
        let text = std::str::from_utf8(&bytes).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "snapshot is not valid UTF-8")
        })?;
        let snapshot = Snapshot::parse(text)?;
        Ok((snapshot, hash))
    }
}

/// Writes `snapshot` to `path` crash-safely: the canonical bytes go to
/// a sibling temp file, are fsynced, and the temp file is atomically
/// renamed over `path`. A crash at any point leaves either the old file
/// (or nothing) or the complete new file — never a torn snapshot at the
/// final path. Returns the content hash of the written bytes.
pub fn write_atomic(snapshot: &Snapshot, path: &Path) -> io::Result<String> {
    let bytes = snapshot.encode();
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes.as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(sha256_hex(bytes.as_bytes()))
}

/// A parsed, validated checkpoint anchor: the payload of a `checkpoint`
/// record, already checked against the record's own chain position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointAnchor {
    /// Chain records covered by the snapshot (= the record's `seq`).
    pub records: u64,
    /// Chain head the snapshot covers (= the record's `prev`).
    pub head: String,
    /// Snapshot file name (relative to the journal's directory).
    pub file: String,
    /// Content hash the snapshot file must have.
    pub snapshot: String,
}

/// The payload of a checkpoint anchor record. The record appended with
/// this payload must receive sequence `records` and chain from `head` —
/// that duplication is what makes a truncated journal self-describing.
pub fn anchor_payload(file: &str, records: u64, head: &str, snapshot_hash: &str) -> Json {
    Json::obj([
        ("file", Json::from(file)),
        ("head", Json::from(head)),
        ("records", Json::from(records)),
        ("snapshot", Json::from(snapshot_hash)),
    ])
}

impl CheckpointAnchor {
    /// Parses and validates `record` as a checkpoint anchor.
    ///
    /// `Ok(None)` — not a checkpoint record. `Ok(Some(..))` — a
    /// checkpoint record whose payload agrees with its own chain
    /// position. `Err` — a checkpoint record with a missing/ill-typed
    /// payload field or a payload that *disagrees* with the record's
    /// position; such a record must never seed a verifier.
    pub fn of_record(record: &JournalRecord) -> Result<Option<CheckpointAnchor>, String> {
        if record.kind != CHECKPOINT_KIND {
            return Ok(None);
        }
        let field = |name: &str| {
            record
                .payload
                .get(name)
                .ok_or_else(|| format!("checkpoint payload missing '{name}'"))
        };
        let file = field("file")?
            .as_str()
            .ok_or("checkpoint 'file' not a string")?
            .to_string();
        let head = field("head")?
            .as_str()
            .ok_or("checkpoint 'head' not a string")?
            .to_string();
        let records = field("records")?
            .as_int()
            .and_then(|n| u64::try_from(n).ok())
            .ok_or("checkpoint 'records' not a non-negative integer")?;
        let snapshot = field("snapshot")?
            .as_str()
            .ok_or("checkpoint 'snapshot' not a string")?
            .to_string();
        if records != record.seq {
            return Err(format!(
                "checkpoint anchor covers {records} records but sits at seq {}",
                record.seq
            ));
        }
        if head != record.prev {
            return Err("checkpoint anchor head does not match the record's prev hash".into());
        }
        Ok(Some(CheckpointAnchor {
            records,
            head,
            file,
            snapshot,
        }))
    }
}

/// If `line` is a valid, self-consistent checkpoint anchor record *past
/// genesis*, the `(records, head)` pair to seed a
/// [`ChainCursor`](crate::journal::ChainCursor) with. Anything else —
/// a non-checkpoint record, a malformed line, a seq-0 checkpoint (the
/// genesis cursor already fits), an inconsistent anchor — is `None`.
pub fn suffix_anchor(line: &str) -> Option<(u64, String)> {
    leading_anchor(line).unwrap_or_default()
}

/// [`suffix_anchor`] with the failure modes kept apart: `Err` only when
/// the line *is* a checkpoint record but its anchor is malformed or
/// inconsistent. [`crate::recover`] turns that into a refusal instead
/// of truncating a whole suffix journal down to nothing.
pub(crate) fn leading_anchor(line: &str) -> Result<Option<(u64, String)>, String> {
    let Ok(record) = JournalRecord::parse_line(line) else {
        return Ok(None);
    };
    if record.kind != CHECKPOINT_KIND || record.seq == 0 {
        return Ok(None);
    }
    match CheckpointAnchor::of_record(&record)? {
        Some(anchor) => Ok(Some((anchor.records, anchor.head))),
        None => Ok(None),
    }
}

/// Scans a whole journal file for checkpoint anchors, newest first,
/// without verifying the chain (recovery runs *before* verification and
/// must find fallback candidates even in a file with a torn tail).
/// Records that fail to parse or anchors that fail self-consistency are
/// skipped, not errors.
pub fn scan_anchors(path: &Path) -> io::Result<Vec<CheckpointAnchor>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut anchors = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break;
        };
        if let Ok(line) = std::str::from_utf8(&bytes[offset..offset + nl]) {
            if let Ok(record) = JournalRecord::parse_line(line) {
                if let Ok(Some(anchor)) = CheckpointAnchor::of_record(&record) {
                    anchors.push(anchor);
                }
            }
        }
        offset += nl + 1;
    }
    anchors.reverse();
    Ok(anchors)
}

/// Truncates a journal down to the suffix that starts at the checkpoint
/// record with sequence `anchor_records`, crash-safely: the suffix is
/// written to a temp file, fsynced, and atomically renamed over the
/// journal. The dropped prefix is returned so callers can archive it.
/// Fails (journal untouched) if no checkpoint record with that sequence
/// exists in the file.
pub fn truncate_to_anchor(path: &Path, anchor_records: u64) -> io::Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    let mut offset = 0usize;
    let mut cut = None;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break;
        };
        if let Ok(line) = std::str::from_utf8(&bytes[offset..offset + nl]) {
            if let Ok(record) = JournalRecord::parse_line(line) {
                if record.kind == CHECKPOINT_KIND && record.seq == anchor_records {
                    cut = Some(offset);
                    break;
                }
            }
        }
        offset += nl + 1;
    }
    let Some(cut) = cut else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "no checkpoint record at seq {anchor_records} in {}",
                path.display()
            ),
        ));
    };
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes[cut..])?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(bytes[..cut].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{recover, verify_chain, Journal, JournalReader};
    use std::io::BufReader;

    struct TempPath(std::path::PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("hka-checkpoint-{}-{tag}.jsonl", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempPath(path)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn payload(i: i64) -> Json {
        Json::obj([("n", Json::Int(i))])
    }

    #[test]
    fn snapshot_round_trips_and_hashes_deterministically() {
        let mut snap = Snapshot::new(7, "aa".repeat(32));
        snap.set_section("store", Json::obj([("users", Json::Int(3))]));
        snap.set_section("audit", Json::obj([("events", Json::Int(7))]));
        let encoded = snap.encode();
        assert!(encoded.ends_with('\n'));
        let parsed = Snapshot::parse(&encoded).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.content_hash(), snap.content_hash());
        // Section insertion order cannot matter: canonical keys.
        let mut snap2 = Snapshot::new(7, "aa".repeat(32));
        snap2.set_section("audit", Json::obj([("events", Json::Int(7))]));
        snap2.set_section("store", Json::obj([("users", Json::Int(3))]));
        assert_eq!(snap2.encode(), encoded);
    }

    #[test]
    fn write_atomic_matches_content_hash_and_read_verifies() {
        let tmp = TempPath::new("atomic");
        let mut snap = Snapshot::new(3, "bb".repeat(32));
        snap.set_section("x", Json::Int(1));
        let hash = write_atomic(&snap, &tmp.0).unwrap();
        assert_eq!(hash, snap.content_hash());
        let (read_back, file_hash) = Snapshot::read(&tmp.0).unwrap();
        assert_eq!(read_back, snap);
        assert_eq!(file_hash, hash);
        // A flipped byte changes the file hash: the anchor comparison
        // rejects it without needing to parse anything.
        let mut bytes = std::fs::read(&tmp.0).unwrap();
        bytes[10] ^= 1;
        std::fs::write(&tmp.0, &bytes).unwrap();
        let (_, tampered_hash) = Snapshot::read(&tmp.0).unwrap_or_else(|_| {
            // Parsing may fail outright; either way the hash differs.
            (Snapshot::genesis(), crate::sha256::sha256_hex(&bytes))
        });
        assert_ne!(tampered_hash, hash);
    }

    /// A journal with `n` records, then a checkpoint anchor, then `m`
    /// more records; returns (full bytes, anchor seq).
    fn anchored_journal(n: i64, m: i64) -> (Vec<u8>, u64) {
        let mut journal = Journal::new(Vec::new());
        for i in 0..n {
            journal.append("test.event", payload(i)).unwrap();
        }
        let records = journal.next_seq();
        let head = journal.head().to_string();
        let snap = Snapshot::new(records, head.clone());
        let anchor_seq = journal
            .append(
                CHECKPOINT_KIND,
                anchor_payload("snap.json", records, &head, &snap.content_hash()),
            )
            .unwrap();
        for i in 0..m {
            journal.append("test.event", payload(100 + i)).unwrap();
        }
        (journal.into_inner(), anchor_seq)
    }

    fn suffix_of(bytes: &[u8], anchor_seq: u64) -> Vec<u8> {
        let text = std::str::from_utf8(bytes).unwrap();
        let mut out = String::new();
        let mut keep = false;
        for line in text.lines() {
            if !keep {
                let record = JournalRecord::parse_line(line).unwrap();
                keep = record.kind == CHECKPOINT_KIND && record.seq == anchor_seq;
            }
            if keep {
                out.push_str(line);
                out.push('\n');
            }
        }
        out.into_bytes()
    }

    #[test]
    fn verify_chain_accepts_a_checkpoint_suffix() {
        let (full, anchor_seq) = anchored_journal(5, 4);
        let full_report = verify_chain(&full[..]).unwrap();
        assert_eq!(full_report.records.len(), 10);

        let suffix = suffix_of(&full, anchor_seq);
        let report = verify_chain(&suffix[..]).unwrap();
        // Anchor + 4 suffix records verified; head matches the full file.
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.head, full_report.head);
        let mut reader = JournalReader::new(BufReader::new(&suffix[..]));
        for r in reader.by_ref() {
            r.unwrap();
        }
        assert_eq!(reader.records_read(), 10, "chain position is absolute");
    }

    #[test]
    fn inconsistent_anchor_does_not_seed_verification() {
        let (full, anchor_seq) = anchored_journal(5, 2);
        let suffix = suffix_of(&full, anchor_seq);
        let text = String::from_utf8(suffix).unwrap();
        // Lie about the covered records: payload says 4, record sits at 5.
        let forged = text.replacen("\"records\":5", "\"records\":4", 1);
        let err = verify_chain(forged.as_bytes()).unwrap_err();
        // The forged payload breaks the record's own hash first; either
        // way the suffix is refused rather than admitted.
        assert!(matches!(
            err,
            crate::ChainError::BadHash { line: 1 } | crate::ChainError::BadSequence { line: 1, .. }
        ));
    }

    #[test]
    fn recover_resumes_a_suffix_journal_from_its_anchor() {
        let tmp = TempPath::new("suffix-recover");
        let (full, anchor_seq) = anchored_journal(6, 3);
        let mut suffix = suffix_of(&full, anchor_seq);
        // Crash mid-append: torn final record.
        let torn = br#"{"hash":"torn"#;
        suffix.extend_from_slice(torn);
        std::fs::write(&tmp.0, &suffix).unwrap();

        let (mut journal, report) = recover(&tmp.0).unwrap();
        assert_eq!(report.valid_records, 10, "6 prefix + anchor + 3 suffix");
        assert_eq!(report.truncated_bytes, torn.len() as u64);
        journal.append("after", payload(0)).unwrap();
        journal.flush().unwrap();
        drop(journal);

        let report = verify_chain(&std::fs::read(&tmp.0).unwrap()[..]).unwrap();
        let kinds: Vec<&str> = report.records.iter().map(|r| r.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec![
                CHECKPOINT_KIND,
                "test.event",
                "test.event",
                "test.event",
                "journal.recovered",
                "after",
            ]
        );
    }

    #[test]
    fn recover_refuses_an_inconsistent_leading_anchor() {
        let tmp = TempPath::new("bad-anchor");
        let (full, anchor_seq) = anchored_journal(4, 2);
        let suffix = suffix_of(&full, anchor_seq);
        let text = String::from_utf8(suffix).unwrap();
        let forged = text.replacen("\"records\":4", "\"records\":3", 1);
        std::fs::write(&tmp.0, forged.as_bytes()).unwrap();
        let before = std::fs::read(&tmp.0).unwrap();

        let err = recover(&tmp.0).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Fail-closed means the file is untouched, not truncated away.
        assert_eq!(std::fs::read(&tmp.0).unwrap(), before);
    }

    #[test]
    fn scan_anchors_finds_newest_first_even_with_torn_tail() {
        let tmp = TempPath::new("scan");
        let mut journal = Journal::new(Vec::new());
        let mut expected = Vec::new();
        for round in 0..3u64 {
            for i in 0..4 {
                journal.append("test.event", payload(i)).unwrap();
            }
            let records = journal.next_seq();
            let head = journal.head().to_string();
            journal
                .append(
                    CHECKPOINT_KIND,
                    anchor_payload(
                        &format!("snap-{round}.json"),
                        records,
                        &head,
                        &"00".repeat(32),
                    ),
                )
                .unwrap();
            expected.push(records);
        }
        let mut bytes = journal.into_inner();
        bytes.extend_from_slice(b"{\"torn");
        std::fs::write(&tmp.0, &bytes).unwrap();

        let anchors = scan_anchors(&tmp.0).unwrap();
        let seqs: Vec<u64> = anchors.iter().map(|a| a.records).collect();
        expected.reverse();
        assert_eq!(seqs, expected);
        assert_eq!(anchors[0].file, "snap-2.json");
    }

    #[test]
    fn truncate_to_anchor_keeps_a_verifiable_suffix() {
        let tmp = TempPath::new("truncate");
        let (full, anchor_seq) = anchored_journal(8, 5);
        std::fs::write(&tmp.0, &full).unwrap();
        let full_report = verify_chain(&full[..]).unwrap();

        let prefix = truncate_to_anchor(&tmp.0, anchor_seq).unwrap();
        assert_eq!(
            prefix.len() + std::fs::read(&tmp.0).unwrap().len(),
            full.len()
        );
        let report = verify_chain(&std::fs::read(&tmp.0).unwrap()[..]).unwrap();
        assert_eq!(report.head, full_report.head);
        assert_eq!(report.records[0].kind, CHECKPOINT_KIND);

        // Asking for an anchor that is not there leaves the file alone.
        let before = std::fs::read(&tmp.0).unwrap();
        assert!(truncate_to_anchor(&tmp.0, 999).is_err());
        assert_eq!(std::fs::read(&tmp.0).unwrap(), before);
    }
}
