//! A versioned, append-only, hash-chained JSONL event journal.
//!
//! Each line is one JSON object:
//!
//! ```json
//! {"hash":"…","kind":"forwarded","payload":{…},"prev":"…","seq":0,"v":1}
//! ```
//!
//! * `v` — schema version (currently 1);
//! * `seq` — monotonic sequence number starting at 0;
//! * `kind` — event type tag;
//! * `payload` — event body, canonically serialized (sorted keys);
//! * `prev` — hash of the previous event, or 64 zeros for the first;
//! * `hash` — `sha256("v1:{seq}:{kind}:{payload}:{prev}")` in hex.
//!
//! Chaining `prev` through every record makes truncation, reordering,
//! and in-place edits detectable by [`verify_chain`], which re-derives
//! every hash from the parsed payload's canonical serialization.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::json::{self, Json};
use crate::sha256::sha256_hex;

/// Journal schema version written into every record.
pub const JOURNAL_VERSION: i64 = 1;

/// `prev` of the first record: 64 hex zeros.
pub const GENESIS_HASH: &str = "0000000000000000000000000000000000000000000000000000000000000000";

/// The hash of one record: covers version, sequence number, kind,
/// canonical payload, and the previous record's hash.
pub fn event_hash(seq: u64, kind: &str, payload_canonical: &str, prev: &str) -> String {
    let preimage = format!("v{JOURNAL_VERSION}:{seq}:{kind}:{payload_canonical}:{prev}");
    sha256_hex(preimage.as_bytes())
}

/// One parsed journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Schema version.
    pub version: i64,
    /// Sequence number.
    pub seq: u64,
    /// Event type tag.
    pub kind: String,
    /// Event body.
    pub payload: Json,
    /// Hash of the previous record (genesis hash for `seq` 0).
    pub prev: String,
    /// This record's hash.
    pub hash: String,
}

impl JournalRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("v", Json::Int(self.version)),
            ("seq", Json::from(self.seq)),
            ("kind", Json::from(self.kind.as_str())),
            ("payload", self.payload.clone()),
            ("prev", Json::from(self.prev.as_str())),
            ("hash", Json::from(self.hash.as_str())),
        ])
    }

    /// Parses one JSONL line into a record (no chain checks).
    pub fn parse_line(line: &str) -> Result<JournalRecord, ChainError> {
        let bad = |what: &str| ChainError::Malformed {
            line: 0,
            message: what.to_string(),
        };
        let value = json::parse(line.trim()).map_err(|e| bad(&e.to_string()))?;
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| bad(&format!("missing '{name}'")))
        };
        let version = field("v")?
            .as_int()
            .ok_or_else(|| bad("'v' not an integer"))?;
        let seq = field("seq")?
            .as_int()
            .and_then(|s| u64::try_from(s).ok())
            .ok_or_else(|| bad("'seq' not a non-negative integer"))?;
        let kind = field("kind")?
            .as_str()
            .ok_or_else(|| bad("'kind' not a string"))?
            .to_string();
        let payload = field("payload")?.clone();
        let prev = field("prev")?
            .as_str()
            .ok_or_else(|| bad("'prev' not a string"))?
            .to_string();
        let hash = field("hash")?
            .as_str()
            .ok_or_else(|| bad("'hash' not a string"))?
            .to_string();
        Ok(JournalRecord {
            version,
            seq,
            kind,
            payload,
            prev,
            hash,
        })
    }
}

/// An append-only journal writer over any byte sink.
#[derive(Debug)]
pub struct Journal<W: Write> {
    sink: W,
    next_seq: u64,
    prev_hash: String,
}

/// A journal over a boxed sink, for APIs that don't want to be generic
/// over the writer type.
pub type BoxedJournal = Journal<Box<dyn Write + Send + Sync>>;

impl<W: Write> Journal<W> {
    /// A journal writing records to `sink`, starting at sequence 0.
    pub fn new(sink: W) -> Self {
        Journal {
            sink,
            next_seq: 0,
            prev_hash: GENESIS_HASH.to_string(),
        }
    }

    /// A journal resuming an existing chain: the next append receives
    /// `next_seq` and chains from `prev_hash`. Used by [`recover`] after
    /// a crash; callers are responsible for `prev_hash` actually being
    /// the hash of record `next_seq - 1` in whatever `sink` appends to.
    pub fn resume(sink: W, next_seq: u64, prev_hash: String) -> Self {
        Journal {
            sink,
            next_seq,
            prev_hash,
        }
    }

    /// Appends one event, returning its assigned sequence number.
    pub fn append(&mut self, kind: &str, payload: Json) -> io::Result<u64> {
        let seq = self.next_seq;
        let canonical = payload.to_string();
        let hash = event_hash(seq, kind, &canonical, &self.prev_hash);
        let record = JournalRecord {
            version: JOURNAL_VERSION,
            seq,
            kind: kind.to_string(),
            payload,
            // Clone rather than take: on a failed write the journal's
            // state must be untouched, so a retried append reproduces
            // byte-identical output and the chain stays verifiable.
            prev: self.prev_hash.clone(),
            hash: hash.clone(),
        };
        // One buffered write per record (not one per JSON fragment): a
        // record either lands as a unit or tears once, and an appender
        // over a raw file does one syscall per event instead of hundreds.
        let mut line = record.to_json().to_string();
        line.push('\n');
        self.sink.write_all(line.as_bytes())?;
        self.next_seq = seq + 1;
        self.prev_hash = hash;
        Ok(seq)
    }

    /// Appends a batch of events with one write.
    ///
    /// Every record is built in memory first, hashes chained exactly as
    /// if each event had been [`append`](Journal::append)ed on its own —
    /// the emitted bytes are identical for any batching of the same
    /// event sequence — then the whole batch goes to the sink in a
    /// single `write_all`. State advances only after the write
    /// succeeds, so a failed batch leaves `next_seq`/`prev_hash`
    /// untouched and a retry (even re-split into different batch sizes)
    /// re-chains byte-identically.
    ///
    /// Returns the assigned sequence-number range (empty for an empty
    /// batch).
    pub fn append_batch(&mut self, events: &[(String, Json)]) -> io::Result<std::ops::Range<u64>> {
        let first = self.next_seq;
        if events.is_empty() {
            return Ok(first..first);
        }
        let mut buf = String::new();
        let mut seq = first;
        let mut prev = self.prev_hash.clone();
        for (kind, payload) in events {
            let canonical = payload.to_string();
            let hash = event_hash(seq, kind, &canonical, &prev);
            let record = JournalRecord {
                version: JOURNAL_VERSION,
                seq,
                kind: kind.clone(),
                payload: payload.clone(),
                prev,
                hash: hash.clone(),
            };
            buf.push_str(&record.to_json().to_string());
            buf.push('\n');
            prev = hash;
            seq += 1;
        }
        self.sink.write_all(buf.as_bytes())?;
        self.next_seq = seq;
        self.prev_hash = prev;
        Ok(first..seq)
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Hash the next append will chain from — the hash of the last
    /// record written ([`GENESIS_HASH`] for a fresh journal). Together
    /// with [`next_seq`](Journal::next_seq) this is everything needed to
    /// hand the chain to another writer via [`Journal::resume`].
    pub fn head(&self) -> &str {
        &self.prev_hash
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }

    /// Consumes the journal and returns the sink (for in-memory sinks
    /// the caller wants to read back).
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// A byte sink that can additionally force written bytes to stable
/// storage — the durability half of group commit. `sync` defaults to a
/// no-op, which is correct for in-memory sinks.
pub trait DurableSink: Write + Send + Sync {
    /// Forces previously written bytes to stable storage.
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl DurableSink for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl DurableSink for Vec<u8> {}

impl DurableSink for io::Sink {}

impl<W: DurableSink> DurableSink for io::BufWriter<W> {
    fn sync(&mut self) -> io::Result<()> {
        self.flush()?;
        self.get_mut().sync()
    }
}

impl DurableSink for Box<dyn DurableSink> {
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

/// Wraps any writer as a [`DurableSink`] whose `sync` is a no-op — for
/// sinks with no durability story of their own (test fakes,
/// fault-injecting writers).
#[derive(Debug)]
pub struct Unsynced<W: Write>(pub W);

impl<W: Write> Write for Unsynced<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl<W: Write + Send + Sync> DurableSink for Unsynced<W> {}

/// A journal over a boxed durable sink — what a group-commit writer
/// holds when it must both batch appends and fsync per batch without
/// being generic over the sink type.
pub type DurableJournal = Journal<Box<dyn DurableSink>>;

impl<W: DurableSink> Journal<W> {
    /// The group-commit durability point: flushes the sink and forces
    /// its bytes to stable storage.
    pub fn commit(&mut self) -> io::Result<()> {
        self.sink.flush()?;
        self.sink.sync()
    }
}

/// Why a journal failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A line is not a well-formed record.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A record's schema version is not [`JOURNAL_VERSION`].
    BadVersion {
        /// 1-based line number.
        line: usize,
        /// Version found.
        found: i64,
    },
    /// Sequence numbers are not `0, 1, 2, …`.
    BadSequence {
        /// 1-based line number.
        line: usize,
        /// Sequence number expected at this line.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
    /// A record's `prev` does not match the previous record's hash —
    /// the chain was cut, reordered, or truncated at the front.
    BrokenLink {
        /// 1-based line number.
        line: usize,
    },
    /// A record's `hash` does not match its recomputed hash — the
    /// record was altered after being written.
    BadHash {
        /// 1-based line number.
        line: usize,
    },
    /// Reading the input failed.
    Io(String),
    /// A journal file shrank below a byte offset whose prefix had
    /// already been verified — the verified prefix itself was rewritten
    /// or replaced under a live reader. (Crash recovery never does
    /// this: [`recover`] truncates only *invalid* suffix bytes, which a
    /// tailer never consumes.)
    TruncatedBehind {
        /// Byte offset one past the last verified record.
        offset: u64,
        /// Observed file length, smaller than `offset`.
        len: u64,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Malformed { line, message } => {
                write!(f, "line {line}: malformed record: {message}")
            }
            ChainError::BadVersion { line, found } => {
                write!(f, "line {line}: unsupported schema version {found}")
            }
            ChainError::BadSequence {
                line,
                expected,
                found,
            } => {
                write!(f, "line {line}: expected seq {expected}, found {found}")
            }
            ChainError::BrokenLink { line } => {
                write!(f, "line {line}: prev-hash does not match preceding record")
            }
            ChainError::BadHash { line } => {
                write!(f, "line {line}: stored hash does not match recomputed hash")
            }
            ChainError::Io(e) => write!(f, "read error: {e}"),
            ChainError::TruncatedBehind { offset, len } => write!(
                f,
                "journal shrank to {len} bytes, below the verified offset {offset}"
            ),
        }
    }
}

impl std::error::Error for ChainError {}

/// The result of a successful chain verification.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainReport {
    /// Records verified.
    pub records: Vec<JournalRecord>,
    /// Hash of the final record (genesis hash if the journal is empty).
    pub head: String,
}

/// Incremental chain-verification state: the `(expected seq, head hash)`
/// pair every verifier in this module walks forward one record at a
/// time. [`JournalReader`], [`recover`], and the tailer
/// ([`crate::tail::JournalTailer`]) all admit records through the same
/// cursor, so "fully hash-chained" means exactly one thing everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainCursor {
    records: u64,
    head: String,
}

impl Default for ChainCursor {
    fn default() -> Self {
        ChainCursor::new()
    }
}

impl ChainCursor {
    /// A cursor positioned before the first record (genesis).
    pub fn new() -> Self {
        ChainCursor {
            records: 0,
            head: GENESIS_HASH.to_string(),
        }
    }

    /// A cursor positioned mid-chain: the next admitted record must
    /// carry sequence number `records` and chain from `head`. This is
    /// how a verifier starts from a checkpoint anchor instead of
    /// genesis — a truncated journal's leading `checkpoint` record
    /// carries exactly this pair in its payload
    /// ([`crate::checkpoint::CheckpointAnchor`]).
    pub fn resume(records: u64, head: String) -> Self {
        ChainCursor { records, head }
    }

    /// Records admitted so far (also the next expected sequence number).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Hash of the last admitted record (genesis hash before the first).
    pub fn head(&self) -> &str {
        &self.head
    }

    /// Parses one line and checks it against the chain so far: schema
    /// version, sequence monotonicity, `prev` link, recomputed hash. On
    /// success the cursor advances; on failure it is untouched, so the
    /// same line (or a repaired one) can be offered again. `line_no` is
    /// the 1-based line number used in errors.
    pub fn admit(&mut self, line_no: usize, line: &str) -> Result<JournalRecord, ChainError> {
        let record = JournalRecord::parse_line(line).map_err(|e| match e {
            ChainError::Malformed { message, .. } => ChainError::Malformed {
                line: line_no,
                message,
            },
            other => other,
        })?;
        if record.version != JOURNAL_VERSION {
            return Err(ChainError::BadVersion {
                line: line_no,
                found: record.version,
            });
        }
        if record.seq != self.records {
            return Err(ChainError::BadSequence {
                line: line_no,
                expected: self.records,
                found: record.seq,
            });
        }
        if record.prev != self.head {
            return Err(ChainError::BrokenLink { line: line_no });
        }
        let recomputed = event_hash(
            record.seq,
            &record.kind,
            &record.payload.to_string(),
            &record.prev,
        );
        if recomputed != record.hash {
            return Err(ChainError::BadHash { line: line_no });
        }
        self.head = record.hash.clone();
        self.records += 1;
        Ok(record)
    }
}

/// A streaming reader over a journal: yields each record after checking
/// it against the chain so far (schema version, sequence monotonicity,
/// `prev` link, recomputed hash). The first failure is yielded as an
/// `Err` and iteration stops; [`records_read`](JournalReader::records_read)
/// and [`head`](JournalReader::head) then describe the verified prefix.
///
/// [`verify_chain`] is this reader run to completion. Replay consumers
/// (`hka-audit`) drive the reader directly so an arbitrarily large
/// journal is verified and analyzed in one pass without buffering every
/// record in memory.
#[derive(Debug)]
pub struct JournalReader<R: BufRead> {
    input: R,
    line_no: usize,
    cursor: ChainCursor,
    done: bool,
    at_start: bool,
}

impl<R: BufRead> JournalReader<R> {
    /// A reader over `input`, expecting a chain that starts at genesis
    /// — or at a self-describing `checkpoint` anchor: when the first
    /// record is a checkpoint record whose payload agrees with its own
    /// chain position (see [`crate::checkpoint`]), the reader seeds its
    /// cursor from that anchor so a truncated/archived journal suffix
    /// verifies exactly like the full file it was cut from.
    pub fn new(input: R) -> Self {
        JournalReader {
            input,
            line_no: 0,
            cursor: ChainCursor::new(),
            done: false,
            at_start: true,
        }
    }

    /// A reader resuming mid-chain: the first record must carry
    /// sequence `records` and chain from `head`. No anchor
    /// auto-detection — the caller already knows the position.
    pub fn resume(input: R, records: u64, head: String) -> Self {
        JournalReader {
            input,
            line_no: 0,
            cursor: ChainCursor::resume(records, head),
            done: false,
            at_start: false,
        }
    }

    /// Records verified so far.
    pub fn records_read(&self) -> u64 {
        self.cursor.records()
    }

    /// Hash of the last verified record (genesis hash before the first).
    pub fn head(&self) -> &str {
        self.cursor.head()
    }
}

impl<R: BufRead> Iterator for JournalReader<R> {
    type Item = Result<JournalRecord, ChainError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut line = String::new();
        loop {
            line.clear();
            self.line_no += 1;
            match self.input.read_line(&mut line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(ChainError::Io(e.to_string())));
                }
            }
            if line.trim().is_empty() {
                continue;
            }
            if self.at_start {
                self.at_start = false;
                if let Some((records, head)) = crate::checkpoint::suffix_anchor(&line) {
                    self.cursor = ChainCursor::resume(records, head);
                }
            }
            let result = self.cursor.admit(self.line_no, &line);
            if result.is_err() {
                self.done = true;
            }
            return Some(result);
        }
    }
}

/// Verifies a whole journal: parses every line, checks versions,
/// sequence monotonicity, prev-hash links, and recomputes every hash.
pub fn verify_chain(reader: impl BufRead) -> Result<ChainReport, ChainError> {
    let mut reader = JournalReader::new(reader);
    let mut records = Vec::new();
    for record in reader.by_ref() {
        records.push(record?);
    }
    Ok(ChainReport {
        records,
        head: reader.head().to_string(),
    })
}

/// What [`recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Chain length after the surviving valid prefix: for a genesis
    /// journal, the records in the file; for a checkpoint-anchored
    /// suffix, the anchor's `records` plus the surviving suffix records.
    pub valid_records: u64,
    /// Bytes truncated off the end of the file (0 for a clean journal).
    pub truncated_bytes: u64,
    /// Hash of the last surviving record (genesis hash if none).
    pub head: String,
}

/// The first complete (newline-terminated), non-blank, UTF-8 line of
/// `bytes`, if any. A torn or non-UTF-8 first line yields `None`.
fn first_complete_line(bytes: &[u8]) -> Option<&str> {
    let mut offset = 0usize;
    while offset < bytes.len() {
        let nl = bytes[offset..].iter().position(|&b| b == b'\n')?;
        let line = std::str::from_utf8(&bytes[offset..offset + nl]).ok()?;
        if !line.trim().is_empty() {
            return Some(line);
        }
        offset += nl + 1;
    }
    None
}

/// Recovers a journal file after a crash mid-write.
///
/// Scans the file line by line, verifying the chain incrementally
/// (version, sequence, `prev` link, recomputed hash) exactly as
/// [`verify_chain`] does. The first invalid line — a torn partial
/// record, garbage bytes, or a record whose chain does not verify —
/// ends the valid prefix; everything after it is unrecoverable (later
/// records chain through the bad one) and is truncated off. A final
/// line without a trailing newline is treated as torn even if it
/// parses: a complete append always ends in `\n`.
///
/// Returns a [`Journal`] positioned to append record `valid_records`
/// chained from the surviving head, plus a [`RecoveryReport`]. An
/// empty or missing file recovers to a fresh genesis journal.
///
/// A journal whose first record is a self-describing `checkpoint`
/// anchor (a suffix left by prefix truncation — see
/// [`crate::checkpoint`]) recovers from that anchor: the cursor is
/// seeded with the anchor's `(records, head)` and `valid_records`
/// counts the *chain* length, prefix included. A first record that
/// claims to be a checkpoint anchor but whose payload disagrees with
/// its own chain position is refused with
/// [`io::ErrorKind::InvalidData`] — the file is left untouched rather
/// than truncated to nothing, because every byte of a suffix journal
/// hangs off its anchor and "recovering" past a bad one would silently
/// discard the whole suffix (fail-open). Higher layers fall back to an
/// earlier checkpoint or a genesis replay instead.
///
/// When bytes were actually truncated the recovery itself is made
/// visible downstream: the returned journal has already appended a
/// `journal.recovered` record (payload `{truncated_bytes,
/// valid_records}`) extending the surviving chain, and the global
/// `ts.journal_recovered_bytes` counter is bumped by the bytes dropped.
/// The [`RecoveryReport`] describes the state *before* that append
/// (`head` is the last surviving record's hash), so callers can still
/// distinguish what the crash left from what recovery wrote.
pub fn recover(path: &std::path::Path) -> io::Result<(Journal<std::fs::File>, RecoveryReport)> {
    use std::io::{Read, Seek};

    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;

    let mut cursor = ChainCursor::new();
    // A truncated journal begins at its checkpoint anchor, not genesis:
    // seed the cursor from a consistent leading anchor, refuse an
    // inconsistent one (fail-closed — see the function docs).
    if let Some(first) = first_complete_line(&bytes) {
        match crate::checkpoint::leading_anchor(first) {
            Ok(Some((records, head))) => cursor = ChainCursor::resume(records, head),
            Ok(None) => {}
            Err(reason) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("refusing to recover {}: {reason}", path.display()),
                ));
            }
        }
    }
    let mut valid_end = 0usize; // byte offset one past the last valid record
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn final line: no terminating newline
        };
        let line_end = offset + nl;
        let Ok(line) = std::str::from_utf8(&bytes[offset..line_end]) else {
            break; // garbage bytes
        };
        if line.trim().is_empty() {
            offset = line_end + 1;
            valid_end = offset;
            continue;
        }
        if cursor.admit(0, line).is_err() {
            break;
        }
        offset = line_end + 1;
        valid_end = offset;
    }
    let valid_records = cursor.records();
    let prev_hash = cursor.head().to_string();

    let truncated_bytes = (bytes.len() - valid_end) as u64;
    if truncated_bytes > 0 {
        file.set_len(valid_end as u64)?;
    }
    file.seek(std::io::SeekFrom::Start(valid_end as u64))?;
    let report = RecoveryReport {
        valid_records,
        truncated_bytes,
        head: prev_hash.clone(),
    };
    let mut journal = Journal::resume(file, valid_records, prev_hash);
    if truncated_bytes > 0 {
        crate::metrics::global()
            .counter("ts.journal_recovered_bytes")
            .add(truncated_bytes);
        journal.append(
            "journal.recovered",
            Json::obj([
                ("truncated_bytes", Json::from(truncated_bytes)),
                ("valid_records", Json::from(valid_records)),
            ]),
        )?;
    }
    Ok((journal, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload(i: i64) -> Json {
        Json::obj([("user", Json::Int(i)), ("ok", Json::Bool(i % 2 == 0))])
    }

    fn build_journal(n: i64) -> Vec<u8> {
        let mut journal = Journal::new(Vec::new());
        for i in 0..n {
            journal.append("test.event", sample_payload(i)).unwrap();
        }
        journal.sink
    }

    #[test]
    fn append_assigns_monotonic_seq() {
        let mut journal = Journal::new(Vec::new());
        assert_eq!(journal.append("a", Json::Null).unwrap(), 0);
        assert_eq!(journal.append("b", Json::Null).unwrap(), 1);
        assert_eq!(journal.next_seq(), 2);
    }

    /// A sink that rejects writes while `fail` is set, writing nothing.
    struct Faucet {
        bytes: Vec<u8>,
        fail: bool,
    }

    impl Write for Faucet {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.fail {
                return Err(io::Error::other("injected"));
            }
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failed_append_leaves_state_untouched_so_retry_rechains() {
        let mut journal = Journal::new(Faucet {
            bytes: Vec::new(),
            fail: false,
        });
        journal.append("a", Json::Int(1)).unwrap();
        journal.sink.fail = true;
        assert!(journal.append("b", Json::Int(2)).is_err());
        assert_eq!(journal.next_seq(), 1, "failed append must not advance seq");
        // The retry after the transient error continues the chain.
        journal.sink.fail = false;
        assert_eq!(journal.append("b", Json::Int(2)).unwrap(), 1);
        journal.append("c", Json::Int(3)).unwrap();
        let report = verify_chain(&journal.sink.bytes[..]).unwrap();
        assert_eq!(report.records.len(), 3);
    }

    #[test]
    fn valid_chain_verifies() {
        let bytes = build_journal(20);
        let report = verify_chain(&bytes[..]).unwrap();
        assert_eq!(report.records.len(), 20);
        assert_eq!(report.records[0].prev, GENESIS_HASH);
        assert_eq!(report.head, report.records[19].hash);
    }

    #[test]
    fn empty_journal_verifies_to_genesis() {
        let report = verify_chain(&b""[..]).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.head, GENESIS_HASH);
    }

    #[test]
    fn tampered_payload_is_detected() {
        let bytes = build_journal(5);
        let text = String::from_utf8(bytes).unwrap();
        let tampered = text.replacen("\"user\":1", "\"user\":99", 1);
        assert!(matches!(
            verify_chain(tampered.as_bytes()),
            Err(ChainError::BadHash { line: 2 })
        ));
    }

    #[test]
    fn deleted_line_is_detected() {
        let bytes = build_journal(5);
        let text = String::from_utf8(bytes).unwrap();
        let without_third: String = text
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        assert!(matches!(
            verify_chain(without_third.as_bytes()),
            Err(ChainError::BadSequence {
                line: 3,
                expected: 2,
                found: 3
            })
        ));
    }

    #[test]
    fn reordered_lines_are_detected() {
        let bytes = build_journal(4);
        let mut lines: Vec<String> = String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        lines.swap(1, 2);
        let reordered = lines.join("\n");
        assert!(verify_chain(reordered.as_bytes()).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let bytes = build_journal(2);
        let text = String::from_utf8(bytes)
            .unwrap()
            .replace("\"v\":1", "\"v\":2");
        assert!(matches!(
            verify_chain(text.as_bytes()),
            Err(ChainError::BadVersion { line: 1, found: 2 })
        ));
    }

    #[test]
    fn records_round_trip_through_parse() {
        let bytes = build_journal(3);
        let text = String::from_utf8(bytes).unwrap();
        for line in text.lines() {
            let record = JournalRecord::parse_line(line).unwrap();
            assert_eq!(record.to_json().to_string(), line);
        }
    }

    /// A scratch file that cleans up after itself.
    struct TempPath(std::path::PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("hka-journal-{}-{tag}.jsonl", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempPath(path)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    /// Recovers `path`, appends `extra` records, and asserts the file
    /// then verifies end to end. A recovery that truncated bytes also
    /// appends one `journal.recovered` marker record, which the counts
    /// below account for. Returns the recovery report.
    fn recover_append_verify(path: &std::path::Path, extra: i64) -> RecoveryReport {
        let (mut journal, report) = recover(path).unwrap();
        let marker = u64::from(report.truncated_bytes > 0);
        assert_eq!(journal.next_seq(), report.valid_records + marker);
        for i in 0..extra {
            journal.append("post.recovery", sample_payload(i)).unwrap();
        }
        journal.flush().unwrap();
        drop(journal);
        let bytes = std::fs::read(path).unwrap();
        let chain = verify_chain(&bytes[..]).unwrap();
        assert_eq!(
            chain.records.len() as u64,
            report.valid_records + marker + extra as u64
        );
        if marker == 1 {
            assert_eq!(
                chain.records[report.valid_records as usize].kind,
                "journal.recovered"
            );
        }
        report
    }

    #[test]
    fn recover_truncated_final_line_resumes_chain() {
        let tmp = TempPath::new("truncated");
        let full = build_journal(6);
        // Drop the trailing newline and half of the final record: a
        // crash mid-append.
        let text = String::from_utf8(full).unwrap();
        let last_len = text.lines().last().unwrap().len();
        let cut = text.len() - 1 - last_len / 2;
        std::fs::write(&tmp.0, &text.as_bytes()[..cut]).unwrap();

        let report = recover_append_verify(&tmp.0, 3);
        assert_eq!(report.valid_records, 5);
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn recover_torn_garbage_tail_truncates_it() {
        let tmp = TempPath::new("torn");
        let mut bytes = build_journal(4);
        bytes.extend_from_slice(&[0xFF, 0xFE, b'{', b'"', 0x00]);
        std::fs::write(&tmp.0, &bytes).unwrap();

        let report = recover_append_verify(&tmp.0, 2);
        assert_eq!(report.valid_records, 4);
        assert_eq!(report.truncated_bytes, 5);
    }

    #[test]
    fn recover_complete_line_with_broken_chain_is_dropped() {
        let tmp = TempPath::new("badchain");
        let bytes = build_journal(5);
        let text = String::from_utf8(bytes).unwrap();
        // Tamper with the *fourth* record's payload (newline intact):
        // records 0..=2 survive, 3 fails its hash, 4 is unreachable.
        let tampered = text.replacen("\"user\":3", "\"user\":30", 1);
        std::fs::write(&tmp.0, tampered).unwrap();

        let report = recover_append_verify(&tmp.0, 1);
        assert_eq!(report.valid_records, 3);
    }

    #[test]
    fn recover_empty_and_missing_file_start_at_genesis() {
        let tmp = TempPath::new("empty");
        // Missing file.
        let report = recover_append_verify(&tmp.0, 2);
        assert_eq!(report.valid_records, 0);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.head, GENESIS_HASH);

        // Explicitly empty file.
        std::fs::write(&tmp.0, b"").unwrap();
        let report = recover_append_verify(&tmp.0, 1);
        assert_eq!(report.valid_records, 0);
    }

    #[test]
    fn streaming_reader_matches_verify_chain() {
        let bytes = build_journal(10);
        let mut reader = JournalReader::new(&bytes[..]);
        let streamed: Vec<JournalRecord> = reader.by_ref().collect::<Result<_, _>>().unwrap();
        let report = verify_chain(&bytes[..]).unwrap();
        assert_eq!(streamed, report.records);
        assert_eq!(reader.head(), report.head);
        assert_eq!(reader.records_read(), 10);
    }

    #[test]
    fn streaming_reader_stops_at_first_error_keeping_valid_prefix() {
        let bytes = build_journal(6);
        let text = String::from_utf8(bytes).unwrap();
        let tampered = text.replacen("\"user\":3", "\"user\":33", 1);
        let mut reader = JournalReader::new(tampered.as_bytes());
        let mut ok = 0u64;
        let mut err = None;
        for r in reader.by_ref() {
            match r {
                Ok(_) => ok += 1,
                Err(e) => err = Some(e),
            }
        }
        assert_eq!(ok, 3, "records before the tampered one verify");
        assert!(matches!(err, Some(ChainError::BadHash { line: 4 })));
        assert_eq!(reader.records_read(), 3);
        // Iteration is over: the reader does not resynchronize.
        assert!(reader.next().is_none());
    }

    #[test]
    fn recover_truncation_emits_marker_event_and_metric() {
        let tmp = TempPath::new("marker");
        let text = String::from_utf8(build_journal(3)).unwrap();
        std::fs::write(&tmp.0, &text.as_bytes()[..text.len() - 7]).unwrap();

        let before = crate::metrics::global()
            .snapshot()
            .counter("ts.journal_recovered_bytes");
        let (mut journal, report) = recover(&tmp.0).unwrap();
        journal.flush().unwrap();
        drop(journal);
        assert!(report.truncated_bytes > 0);
        let after = crate::metrics::global()
            .snapshot()
            .counter("ts.journal_recovered_bytes");
        assert!(after >= before + report.truncated_bytes);

        let chain = verify_chain(&std::fs::read(&tmp.0).unwrap()[..]).unwrap();
        let last = chain.records.last().unwrap();
        assert_eq!(last.kind, "journal.recovered");
        assert_eq!(
            last.payload.get("truncated_bytes").unwrap().as_int(),
            Some(report.truncated_bytes as i64)
        );
        assert_eq!(
            last.payload.get("valid_records").unwrap().as_int(),
            Some(report.valid_records as i64)
        );
    }

    #[test]
    fn batched_appends_are_byte_identical_to_per_event_appends() {
        // Exhaustive property over batch sizings: for 8 events there
        // are 2^7 ways to split the sequence into consecutive batches
        // (one bit per potential split point). Every one of them must
        // produce the same bytes as eight individual appends.
        let events: Vec<(String, Json)> = (0..8)
            .map(|i| (format!("kind.{}", i % 3), sample_payload(i)))
            .collect();
        let mut reference = Journal::new(Vec::new());
        for (kind, payload) in &events {
            reference.append(kind, payload.clone()).unwrap();
        }
        let reference = reference.into_inner();

        for split_mask in 0u32..(1 << (events.len() - 1)) {
            let mut journal = Journal::new(Vec::new());
            let mut batch: Vec<(String, Json)> = Vec::new();
            for (i, e) in events.iter().enumerate() {
                batch.push(e.clone());
                let boundary = i + 1 == events.len() || split_mask & (1 << i) != 0;
                if boundary {
                    let first = journal.next_seq();
                    let range = journal.append_batch(&batch).unwrap();
                    assert_eq!(range, first..first + batch.len() as u64);
                    batch.clear();
                }
            }
            assert_eq!(
                journal.into_inner(),
                reference,
                "batching mask {split_mask:#b} changed the bytes"
            );
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut journal = Journal::new(Vec::new());
        journal.append("a", Json::Int(1)).unwrap();
        let range = journal.append_batch(&[]).unwrap();
        assert_eq!(range, 1..1);
        assert_eq!(journal.next_seq(), 1);
    }

    #[test]
    fn failed_batch_leaves_state_untouched_so_retry_rechains() {
        let batch: Vec<(String, Json)> = (0..4)
            .map(|i| ("b".to_string(), sample_payload(i)))
            .collect();
        let mut journal = Journal::new(Faucet {
            bytes: Vec::new(),
            fail: false,
        });
        journal.append("a", Json::Int(1)).unwrap();
        journal.sink.fail = true;
        assert!(journal.append_batch(&batch).is_err());
        assert_eq!(journal.next_seq(), 1, "failed batch must not advance seq");
        journal.sink.fail = false;
        // Retry with a *different* batching: two halves. Still chains.
        assert_eq!(journal.append_batch(&batch[..2]).unwrap(), 1..3);
        assert_eq!(journal.append_batch(&batch[2..]).unwrap(), 3..5);
        let report = verify_chain(&journal.sink.bytes[..]).unwrap();
        assert_eq!(report.records.len(), 5);
    }

    #[test]
    fn recover_truncates_torn_batch_to_last_valid_record() {
        let tmp = TempPath::new("torn-batch");
        let batch: Vec<(String, Json)> = (0..5)
            .map(|i| ("b".to_string(), sample_payload(i)))
            .collect();
        let mut journal = Journal::new(Vec::new());
        journal.append_batch(&batch).unwrap();
        let bytes = journal.into_inner();
        // Tear the batch mid-way through its fourth record, as if the
        // machine died while the batched write was landing.
        let text = String::from_utf8(bytes).unwrap();
        let offsets: Vec<usize> = text
            .char_indices()
            .filter(|(_, c)| *c == '\n')
            .map(|(i, _)| i)
            .collect();
        let cut = offsets[2] + 1 + (offsets[3] - offsets[2]) / 2;
        std::fs::write(&tmp.0, &text.as_bytes()[..cut]).unwrap();

        let (mut recovered, report) = recover(&tmp.0).unwrap();
        assert_eq!(report.valid_records, 3);
        assert!(report.truncated_bytes > 0);
        // The recovered journal appends batches that chain from the
        // surviving head (recovery itself wrote one marker record).
        recovered.append_batch(&batch[3..]).unwrap();
        recovered.flush().unwrap();
        drop(recovered);
        let chain = verify_chain(&std::fs::read(&tmp.0).unwrap()[..]).unwrap();
        assert_eq!(chain.records.len(), 3 + 1 + 2);
        assert_eq!(chain.records[3].kind, "journal.recovered");
    }

    #[test]
    fn commit_flushes_and_syncs_durable_sinks() {
        // BufWriter<Vec<u8>> exercises the flush-then-sync path; the
        // boxed alias exercises dynamic dispatch.
        let mut journal = Journal::new(io::BufWriter::new(Vec::new()));
        journal.append("a", Json::Int(1)).unwrap();
        journal.commit().unwrap();
        let inner = journal.into_inner().into_inner().unwrap();
        assert!(verify_chain(&inner[..]).is_ok());

        let mut boxed: DurableJournal =
            Journal::new(Box::new(Unsynced(io::sink())) as Box<dyn DurableSink>);
        boxed.append("a", Json::Int(1)).unwrap();
        boxed.commit().unwrap();
    }

    #[test]
    fn recover_clean_journal_is_lossless() {
        let tmp = TempPath::new("clean");
        std::fs::write(&tmp.0, build_journal(7)).unwrap();
        let report = recover_append_verify(&tmp.0, 2);
        assert_eq!(report.valid_records, 7);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn recover_exact_record_boundary_appends_no_marker() {
        // A file ending exactly on a record boundary (trailing newline
        // present, nothing after it) is clean: no truncation, no
        // `journal.recovered` marker, resume exactly at the next seq.
        let tmp = TempPath::new("boundary");
        let bytes = build_journal(4);
        assert_eq!(*bytes.last().unwrap(), b'\n');
        std::fs::write(&tmp.0, &bytes).unwrap();
        let report = recover_append_verify(&tmp.0, 0);
        assert_eq!(report.valid_records, 4);
        assert_eq!(report.truncated_bytes, 0);
        let chain = verify_chain(&std::fs::read(&tmp.0).unwrap()[..]).unwrap();
        assert!(chain.records.iter().all(|r| r.kind != "journal.recovered"));
    }

    #[test]
    fn recover_torn_first_line_only_journals_one_marker() {
        // A file whose only content is a torn first line: nothing
        // survives, the torn bytes are truncated, and exactly one
        // `journal.recovered` marker (valid_records 0) starts a fresh
        // genesis chain.
        let tmp = TempPath::new("torn-first");
        let full = build_journal(1);
        std::fs::write(&tmp.0, &full[..full.len() / 2]).unwrap();

        let report = recover_append_verify(&tmp.0, 1);
        assert_eq!(report.valid_records, 0);
        assert_eq!(report.truncated_bytes, (full.len() / 2) as u64);
        assert_eq!(report.head, GENESIS_HASH);
        let chain = verify_chain(&std::fs::read(&tmp.0).unwrap()[..]).unwrap();
        assert_eq!(chain.records[0].kind, "journal.recovered");
        assert_eq!(
            chain.records[0]
                .payload
                .get("valid_records")
                .unwrap()
                .as_int(),
            Some(0)
        );
    }

    #[test]
    fn recover_is_idempotent_and_marker_rule_is_consistent() {
        // The marker rule, pinned: exactly one `journal.recovered` per
        // recovery that truncated bytes, none otherwise. Re-recovering
        // an already-recovered file is a clean no-op — no second marker.
        for (tag, torn_cut) in [("idem-zero", None), ("idem-torn", Some(9))] {
            let tmp = TempPath::new(tag);
            let bytes = build_journal(3);
            let keep = torn_cut.map_or(bytes.len(), |c| bytes.len() - c);
            std::fs::write(&tmp.0, &bytes[..keep]).unwrap();

            let (journal, first) = recover(&tmp.0).unwrap();
            drop(journal);
            assert_eq!(first.truncated_bytes > 0, torn_cut.is_some());

            let (journal, second) = recover(&tmp.0).unwrap();
            drop(journal);
            assert_eq!(
                second.truncated_bytes, 0,
                "{tag}: second pass truncates nothing"
            );

            let chain = verify_chain(&std::fs::read(&tmp.0).unwrap()[..]).unwrap();
            let markers = chain
                .records
                .iter()
                .filter(|r| r.kind == "journal.recovered")
                .count();
            assert_eq!(
                markers,
                usize::from(torn_cut.is_some()),
                "{tag}: marker count"
            );
        }
    }
}
