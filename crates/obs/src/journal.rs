//! A versioned, append-only, hash-chained JSONL event journal.
//!
//! Each line is one JSON object:
//!
//! ```json
//! {"hash":"…","kind":"forwarded","payload":{…},"prev":"…","seq":0,"v":1}
//! ```
//!
//! * `v` — schema version (currently 1);
//! * `seq` — monotonic sequence number starting at 0;
//! * `kind` — event type tag;
//! * `payload` — event body, canonically serialized (sorted keys);
//! * `prev` — hash of the previous event, or 64 zeros for the first;
//! * `hash` — `sha256("v1:{seq}:{kind}:{payload}:{prev}")` in hex.
//!
//! Chaining `prev` through every record makes truncation, reordering,
//! and in-place edits detectable by [`verify_chain`], which re-derives
//! every hash from the parsed payload's canonical serialization.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::json::{self, Json};
use crate::sha256::sha256_hex;

/// Journal schema version written into every record.
pub const JOURNAL_VERSION: i64 = 1;

/// `prev` of the first record: 64 hex zeros.
pub const GENESIS_HASH: &str =
    "0000000000000000000000000000000000000000000000000000000000000000";

/// The hash of one record: covers version, sequence number, kind,
/// canonical payload, and the previous record's hash.
pub fn event_hash(seq: u64, kind: &str, payload_canonical: &str, prev: &str) -> String {
    let preimage = format!("v{JOURNAL_VERSION}:{seq}:{kind}:{payload_canonical}:{prev}");
    sha256_hex(preimage.as_bytes())
}

/// One parsed journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Schema version.
    pub version: i64,
    /// Sequence number.
    pub seq: u64,
    /// Event type tag.
    pub kind: String,
    /// Event body.
    pub payload: Json,
    /// Hash of the previous record (genesis hash for `seq` 0).
    pub prev: String,
    /// This record's hash.
    pub hash: String,
}

impl JournalRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("v", Json::Int(self.version)),
            ("seq", Json::from(self.seq)),
            ("kind", Json::from(self.kind.as_str())),
            ("payload", self.payload.clone()),
            ("prev", Json::from(self.prev.as_str())),
            ("hash", Json::from(self.hash.as_str())),
        ])
    }

    /// Parses one JSONL line into a record (no chain checks).
    pub fn parse_line(line: &str) -> Result<JournalRecord, ChainError> {
        let bad = |what: &str| ChainError::Malformed {
            line: 0,
            message: what.to_string(),
        };
        let value = json::parse(line.trim()).map_err(|e| bad(&e.to_string()))?;
        let field = |name: &str| value.get(name).ok_or_else(|| bad(&format!("missing '{name}'")));
        let version = field("v")?.as_int().ok_or_else(|| bad("'v' not an integer"))?;
        let seq = field("seq")?
            .as_int()
            .and_then(|s| u64::try_from(s).ok())
            .ok_or_else(|| bad("'seq' not a non-negative integer"))?;
        let kind = field("kind")?
            .as_str()
            .ok_or_else(|| bad("'kind' not a string"))?
            .to_string();
        let payload = field("payload")?.clone();
        let prev = field("prev")?
            .as_str()
            .ok_or_else(|| bad("'prev' not a string"))?
            .to_string();
        let hash = field("hash")?
            .as_str()
            .ok_or_else(|| bad("'hash' not a string"))?
            .to_string();
        Ok(JournalRecord {
            version,
            seq,
            kind,
            payload,
            prev,
            hash,
        })
    }
}

/// An append-only journal writer over any byte sink.
#[derive(Debug)]
pub struct Journal<W: Write> {
    sink: W,
    next_seq: u64,
    prev_hash: String,
}

/// A journal over a boxed sink, for APIs that don't want to be generic
/// over the writer type.
pub type BoxedJournal = Journal<Box<dyn Write + Send + Sync>>;

impl<W: Write> Journal<W> {
    /// A journal writing records to `sink`, starting at sequence 0.
    pub fn new(sink: W) -> Self {
        Journal {
            sink,
            next_seq: 0,
            prev_hash: GENESIS_HASH.to_string(),
        }
    }

    /// Appends one event, returning its assigned sequence number.
    pub fn append(&mut self, kind: &str, payload: Json) -> io::Result<u64> {
        let seq = self.next_seq;
        let canonical = payload.to_string();
        let hash = event_hash(seq, kind, &canonical, &self.prev_hash);
        let record = JournalRecord {
            version: JOURNAL_VERSION,
            seq,
            kind: kind.to_string(),
            payload,
            prev: std::mem::take(&mut self.prev_hash),
            hash: hash.clone(),
        };
        writeln!(self.sink, "{}", record.to_json())?;
        self.next_seq = seq + 1;
        self.prev_hash = hash;
        Ok(seq)
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }

    /// Consumes the journal and returns the sink (for in-memory sinks
    /// the caller wants to read back).
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// Why a journal failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A line is not a well-formed record.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A record's schema version is not [`JOURNAL_VERSION`].
    BadVersion {
        /// 1-based line number.
        line: usize,
        /// Version found.
        found: i64,
    },
    /// Sequence numbers are not `0, 1, 2, …`.
    BadSequence {
        /// 1-based line number.
        line: usize,
        /// Sequence number expected at this line.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
    /// A record's `prev` does not match the previous record's hash —
    /// the chain was cut, reordered, or truncated at the front.
    BrokenLink {
        /// 1-based line number.
        line: usize,
    },
    /// A record's `hash` does not match its recomputed hash — the
    /// record was altered after being written.
    BadHash {
        /// 1-based line number.
        line: usize,
    },
    /// Reading the input failed.
    Io(String),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Malformed { line, message } => {
                write!(f, "line {line}: malformed record: {message}")
            }
            ChainError::BadVersion { line, found } => {
                write!(f, "line {line}: unsupported schema version {found}")
            }
            ChainError::BadSequence { line, expected, found } => {
                write!(f, "line {line}: expected seq {expected}, found {found}")
            }
            ChainError::BrokenLink { line } => {
                write!(f, "line {line}: prev-hash does not match preceding record")
            }
            ChainError::BadHash { line } => {
                write!(f, "line {line}: stored hash does not match recomputed hash")
            }
            ChainError::Io(e) => write!(f, "read error: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// The result of a successful chain verification.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainReport {
    /// Records verified.
    pub records: Vec<JournalRecord>,
    /// Hash of the final record (genesis hash if the journal is empty).
    pub head: String,
}

/// Verifies a whole journal: parses every line, checks versions,
/// sequence monotonicity, prev-hash links, and recomputes every hash.
pub fn verify_chain(reader: impl BufRead) -> Result<ChainReport, ChainError> {
    let mut records = Vec::new();
    let mut prev_hash = GENESIS_HASH.to_string();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line.map_err(|e| ChainError::Io(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let record = JournalRecord::parse_line(&line).map_err(|e| match e {
            ChainError::Malformed { message, .. } => ChainError::Malformed {
                line: line_no,
                message,
            },
            other => other,
        })?;
        if record.version != JOURNAL_VERSION {
            return Err(ChainError::BadVersion {
                line: line_no,
                found: record.version,
            });
        }
        let expected_seq = records.len() as u64;
        if record.seq != expected_seq {
            return Err(ChainError::BadSequence {
                line: line_no,
                expected: expected_seq,
                found: record.seq,
            });
        }
        if record.prev != prev_hash {
            return Err(ChainError::BrokenLink { line: line_no });
        }
        let recomputed = event_hash(
            record.seq,
            &record.kind,
            &record.payload.to_string(),
            &record.prev,
        );
        if recomputed != record.hash {
            return Err(ChainError::BadHash { line: line_no });
        }
        prev_hash = record.hash.clone();
        records.push(record);
    }
    Ok(ChainReport {
        records,
        head: prev_hash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload(i: i64) -> Json {
        Json::obj([("user", Json::Int(i)), ("ok", Json::Bool(i % 2 == 0))])
    }

    fn build_journal(n: i64) -> Vec<u8> {
        let mut journal = Journal::new(Vec::new());
        for i in 0..n {
            journal.append("test.event", sample_payload(i)).unwrap();
        }
        journal.sink
    }

    #[test]
    fn append_assigns_monotonic_seq() {
        let mut journal = Journal::new(Vec::new());
        assert_eq!(journal.append("a", Json::Null).unwrap(), 0);
        assert_eq!(journal.append("b", Json::Null).unwrap(), 1);
        assert_eq!(journal.next_seq(), 2);
    }

    #[test]
    fn valid_chain_verifies() {
        let bytes = build_journal(20);
        let report = verify_chain(&bytes[..]).unwrap();
        assert_eq!(report.records.len(), 20);
        assert_eq!(report.records[0].prev, GENESIS_HASH);
        assert_eq!(report.head, report.records[19].hash);
    }

    #[test]
    fn empty_journal_verifies_to_genesis() {
        let report = verify_chain(&b""[..]).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.head, GENESIS_HASH);
    }

    #[test]
    fn tampered_payload_is_detected() {
        let bytes = build_journal(5);
        let text = String::from_utf8(bytes).unwrap();
        let tampered = text.replacen("\"user\":1", "\"user\":99", 1);
        assert!(matches!(
            verify_chain(tampered.as_bytes()),
            Err(ChainError::BadHash { line: 2 })
        ));
    }

    #[test]
    fn deleted_line_is_detected() {
        let bytes = build_journal(5);
        let text = String::from_utf8(bytes).unwrap();
        let without_third: String = text
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        assert!(matches!(
            verify_chain(without_third.as_bytes()),
            Err(ChainError::BadSequence { line: 3, expected: 2, found: 3 })
        ));
    }

    #[test]
    fn reordered_lines_are_detected() {
        let bytes = build_journal(4);
        let mut lines: Vec<String> = String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        lines.swap(1, 2);
        let reordered = lines.join("\n");
        assert!(verify_chain(reordered.as_bytes()).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let bytes = build_journal(2);
        let text = String::from_utf8(bytes).unwrap().replace("\"v\":1", "\"v\":2");
        assert!(matches!(
            verify_chain(text.as_bytes()),
            Err(ChainError::BadVersion { line: 1, found: 2 })
        ));
    }

    #[test]
    fn records_round_trip_through_parse() {
        let bytes = build_journal(3);
        let text = String::from_utf8(bytes).unwrap();
        for line in text.lines() {
            let record = JournalRecord::parse_line(line).unwrap();
            assert_eq!(record.to_json().to_string(), line);
        }
    }
}
