//! A minimal JSON value type with a canonical writer and a
//! recursive-descent parser.
//!
//! The journal needs two properties ordinary ad-hoc formatting cannot
//! give us: **canonical serialization** (the hash chain covers the
//! serialized payload, so the same payload must always produce the same
//! bytes) and **round-trip parsing** (verification re-reads the JSONL
//! file). Objects are backed by `BTreeMap`, so key order — and therefore
//! the hash — is deterministic by construction.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A non-integer number. Must be finite: JSON has no NaN/Infinity.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps keys sorted, making output canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value (integer or float), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// A member of this object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        // Journal counters stay far below i64::MAX; saturate defensively.
        Json::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}

impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i64::from(i))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                debug_assert!(n.is_finite(), "JSON has no NaN/Infinity");
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    // Keep integral floats distinguishable from Int but
                    // stable: always one decimal place.
                    write!(f, "{n:.1}")
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-UTF-8 in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad hex in \\u escape"))?;
                            // The journal writer never emits surrogate
                            // pairs (it escapes only control chars), so
                            // lone-surrogate handling is a parse error.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or
                    // escape and validate just that slice — validating
                    // from `pos` to the end of input per character
                    // would make parsing quadratic in document size
                    // (ruinous for multi-megabyte checkpoint
                    // snapshots). Quote and backslash can't appear
                    // inside a multi-byte scalar (UTF-8 continuation
                    // bytes are ≥ 0x80), so the byte scan is safe.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("bad float literal"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("bad integer literal"))
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_object_ordering() {
        let v = Json::obj([("zeta", Json::Int(1)), ("alpha", Json::Int(2))]);
        assert_eq!(v.to_string(), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn round_trip_nested() {
        let v = Json::obj([
            ("user", Json::from("u-17")),
            ("ok", Json::Bool(true)),
            ("area", Json::Num(2.5)),
            ("cells", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("none", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        // Serialization is a fixed point: parse → print is identity.
        assert_eq!(parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("line\nbreak \"quoted\" \\ tab\t\u{0001}".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Json::Num(3.0);
        assert_eq!(v.to_string(), "3.0");
        assert_eq!(parse("3.0").unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01x").is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
    }

    #[test]
    fn parses_whitespace_and_exponents() {
        let v = parse(" { \"a\" : [ 1 , -2.5e2 , true ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Int(1), Json::Num(-250.0), Json::Bool(true),])
        );
    }
}
