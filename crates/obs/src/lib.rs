//! Observability for the hka pipeline: metrics, span timers, and a
//! hash-chained JSONL event journal. Dependency-free by design — every
//! crate in the workspace can use it, including the lowest layers.
//!
//! Three facilities:
//!
//! * **Metrics** ([`metrics`]) — named atomic counters, gauges, and
//!   log₂-bucket latency histograms in a [`MetricsRegistry`];
//!   [`global()`] is the process-wide instance the pipeline records
//!   into, and [`MetricsRegistry::snapshot`] produces a point-in-time
//!   [`MetricsSnapshot`] with p50/p95/p99 summaries.
//! * **Spans** ([`span()`] / [`span!`]) — scope-guard timers; elapsed
//!   nanoseconds land in the histogram named after the span on drop.
//! * **Journal** ([`journal`]) — a versioned append-only JSONL log
//!   where each record carries a monotonic sequence number and a
//!   SHA-256 hash chained over the previous record, so truncation,
//!   reordering, and edits are detectable by [`verify_chain`].
//! * **Tracing** ([`trace`]) — per-request trace/span contexts handed
//!   across threads, collected into bounded per-track rings, exported
//!   as Perfetto-loadable Chrome trace-event JSON; span guards open
//!   trace children automatically when collection is enabled.
//! * **SLOs** ([`slo`]) — a rolling-window watchdog (latency p99,
//!   suppression rate, flush lag, mode residency) with latched
//!   breach/recovery transitions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod sha256;
pub mod slo;
pub mod span;
pub mod stage;
pub mod tail;
pub mod trace;

pub use checkpoint::{CheckpointAnchor, Snapshot, CHECKPOINT_KIND, SNAPSHOT_VERSION};
pub use journal::{
    event_hash, recover, verify_chain, BoxedJournal, ChainCursor, ChainError, ChainReport,
    DurableJournal, DurableSink, Journal, JournalReader, JournalRecord, RecoveryReport, Unsynced,
    GENESIS_HASH, JOURNAL_VERSION,
};
pub use json::Json;
pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use ring::RingBuffer;
pub use slo::{SloConfig, SloEvent, SloMonitor};
pub use span::{span, SpanGuard};
pub use tail::{JournalTailer, TailBatch, TailedRecord};
pub use trace::{
    chrome_trace, validate_chrome_trace, ActiveSpan, SpanContext, SpanId, SpanRecord, TraceCheck,
    TraceClock, TraceId,
};
