//! Metrics: named atomic counters, gauges, and log₂-bucket latency
//! histograms, collected into point-in-time snapshots.
//!
//! Registration is lock-protected but recording is lock-free: looking up
//! a metric hands back an `Arc` to its atomics, so hot paths pay one
//! `BTreeMap` lookup on first touch and plain atomic ops thereafter
//! (or zero lookups if they cache the handle).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` covers values whose
/// bit-length is `i`, i.e. `[2^(i-1), 2^i)`, with bucket 0 holding zero.
pub const BUCKETS: usize = 64;

/// A fixed-bucket latency histogram over `u64` values (nanoseconds by
/// convention). Buckets are powers of two — `leading_zeros` gives the
/// bucket index in a handful of cycles and no configuration is needed
/// for values spanning 100 ns to minutes.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Upper bound (exclusive) of bucket `index`, used as its
    /// representative value in percentile estimates and in exported
    /// bucket tables; pessimistic by at most 2×.
    pub fn bucket_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << index.min(63)
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = Self::bucket_index(value).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting (individual loads are
    /// relaxed; exactness across concurrent writers is not required).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        let count: u64 = buckets.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::bucket_bound(i);
                }
            }
            Self::bucket_bound(BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            max: self.max.load(Ordering::Relaxed),
            p50: percentile(0.50),
            p95: percentile(0.95),
            p99: percentile(0.99),
            buckets,
        }
    }
}

/// A point-in-time view of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Mean observation.
    pub mean: f64,
    /// Largest observation.
    pub max: u64,
    /// Median, as the upper bound of its log₂ bucket.
    pub p50: u64,
    /// 95th percentile, as the upper bound of its log₂ bucket.
    pub p95: u64,
    /// 99th percentile, as the upper bound of its log₂ bucket.
    pub p99: u64,
    /// Raw per-bucket observation counts (`buckets[i]` covers values of
    /// bit-length `i`); the full latency distribution, not just its
    /// summary — audit and bench consumers export these as breakdowns.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Non-empty buckets as `(upper_bound, count)` pairs, low to high —
    /// the sparse form used in JSON exports.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Histogram::bucket_bound(i), c))
    }

    /// The summary plus sparse buckets as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum_ns", Json::from(self.sum)),
            ("mean_ns", Json::Num(self.mean)),
            ("max_ns", Json::from(self.max)),
            ("p50_ns", Json::from(self.p50)),
            ("p95_ns", Json::from(self.p95)),
            ("p99_ns", Json::from(self.p99)),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .map(|(bound, count)| Json::Arr(vec![Json::from(bound), Json::from(count)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Holds every registered metric. One global instance (see [`global`])
/// serves the whole pipeline; separate instances are useful in tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// `std` locks poison on panic; metrics must survive a panicking test
/// thread, so recover the guard (parking_lot semantics).
macro_rules! lock {
    ($guard:expr) => {
        $guard.unwrap_or_else(|e| e.into_inner())
    };
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = lock!(self.counters.read()).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            lock!(self.counters.write())
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = lock!(self.gauges.read()).get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            lock!(self.gauges.write())
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = lock!(self.histograms.read()).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            lock!(self.histograms.write())
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock!(self.counters.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock!(self.gauges.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock!(self.histograms.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every metric (keeps registrations). Intended for tests and
    /// between-run resets in long-lived processes.
    pub fn reset(&self) {
        for c in lock!(self.counters.read()).values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in lock!(self.gauges.read()).values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in lock!(self.histograms.read()).values() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 if never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary, if that histogram exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The snapshot as a JSON value (for machine consumers).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    /// A plain-text rendering for terminals.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<32} {value:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<32} {value:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "histograms (ns):                        count         mean          p50          p95          p99\n",
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} {:>10} {:>12.0} {:>12} {:>12} {:>12}",
                    h.count, h.mean, h.p50, h.p95, h.p99
                );
            }
        }
        out
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry. Lower pipeline layers record here so
/// callers don't have to thread a registry through every API.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = MetricsRegistry::new();
        r.counter("req").add(3);
        r.counter("req").incr();
        r.gauge("depth").set(7);
        r.gauge("depth").add(-2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("req"), 4);
        assert_eq!(snap.gauges["depth"], 5);
        assert_eq!(snap.counter("never"), 0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_percentiles_bound_the_data() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // Upper bucket bounds: p50 of 1..=1000 is 500 → bucket [256,512).
        assert_eq!(s.p50, 512);
        assert_eq!(s.p95, 1024);
        assert!(s.p99 >= s.p95 && s.p95 >= s.p50);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.mean, s.p50, s.p99), (0, 0, 0.0, 0, 0));
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let r = MetricsRegistry::new();
        r.counter("a").add(9);
        r.histogram("h").record(100);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 0);
        assert_eq!(snap.histogram("h").unwrap().count, 0);
    }

    #[test]
    fn snapshot_exposes_raw_buckets_consistent_with_count() {
        let h = Histogram::default();
        for v in [0u64, 1, 3, 3, 700, 700, 700] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[10], 3, "700 has bit-length 10");
        let sparse: Vec<(u64, u64)> = s.nonzero_buckets().collect();
        assert_eq!(sparse, vec![(0, 1), (2, 1), (4, 2), (1024, 3)]);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let r = MetricsRegistry::new();
        r.counter("x").incr();
        r.histogram("lat").record(2048);
        let json = r.snapshot().to_json();
        assert_eq!(
            json.get("counters").unwrap().get("x").unwrap().as_int(),
            Some(1)
        );
        let lat = json.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(lat.get("count").unwrap().as_int(), Some(1));
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("obs.test.global").incr();
        assert!(global().snapshot().counter("obs.test.global") >= 1);
    }
}
