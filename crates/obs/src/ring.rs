//! A bounded FIFO ring buffer that counts evictions.
//!
//! Replaces the unbounded `Vec<TsEvent>` inside the trusted server's
//! event log: a server handling millions of requests must not grow its
//! in-memory log without bound. Evicted events are returned to the
//! caller so they can be folded into running statistics (and have
//! already been journaled if a journal sink is attached).

use std::collections::VecDeque;

/// A fixed-capacity FIFO buffer. Pushing onto a full buffer evicts and
/// returns the oldest element.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// A buffer holding at most `capacity` elements (minimum 1).
    ///
    /// `capacity` is an eviction bound, not an upfront allocation: the
    /// backing storage grows on demand. Trace collection creates one
    /// ring per track at 64Ki slots by default; eagerly reserving those
    /// would bill megabytes of page faults to the first span recorded
    /// on each thread.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends `value`; if full, evicts and returns the oldest element.
    pub fn push(&mut self, value: T) -> Option<T> {
        let evicted = if self.buf.len() == self.capacity {
            self.dropped += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(value);
        evicted
    }

    /// Elements currently held, oldest first.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &T> + Clone {
        self.buf.iter()
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Removes and returns every element, oldest first.
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }

    /// How many elements have been evicted over the buffer's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<'a, T> IntoIterator for &'a RingBuffer<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_fifo() {
        let mut ring = RingBuffer::new(3);
        assert_eq!(ring.push(1), None);
        assert_eq!(ring.push(2), None);
        assert_eq!(ring.push(3), None);
        assert_eq!(ring.push(4), Some(1));
        assert_eq!(ring.push(5), Some(2));
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = RingBuffer::new(0);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.push('a'), None);
        assert_eq!(ring.push('b'), Some('a'));
    }

    #[test]
    fn iteration_is_oldest_first() {
        let mut ring = RingBuffer::new(2);
        for i in 0..5 {
            ring.push(i);
        }
        let seen: Vec<i32> = (&ring).into_iter().copied().collect();
        assert_eq!(seen, vec![3, 4]);
        assert_eq!(ring.dropped(), 3);
    }
}
