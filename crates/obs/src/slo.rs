//! A continuous SLO watchdog over the request stream.
//!
//! [`SloMonitor`] keeps a rolling window of per-request samples and
//! evaluates four service-level objectives after every observation:
//!
//! * `latency_p99` — exact 99th-percentile request latency in the
//!   window vs a nanosecond threshold;
//! * `suppression_rate` — fraction of windowed requests suppressed;
//! * `mode_residency` — fraction of windowed requests handled while the
//!   server sat outside `Normal` mode;
//! * `flush_lag` — pending journal events awaiting the next group
//!   commit (observed separately at commit barriers).
//!
//! Each objective carries a latch: crossing the threshold emits one
//! breach event, and only dropping back under it emits the matching
//! recovery — no per-request event spam while a breach persists. Breach
//! events carry the worst-latency trace id in the window so an operator
//! can jump from a live banner straight to the trace.

use std::collections::{BTreeMap, VecDeque};

use crate::trace::TraceId;

/// SLO thresholds and window sizing.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Rolling window length, in requests.
    pub window: usize,
    /// Minimum samples before latency/rate objectives are judged.
    pub min_samples: usize,
    /// p99 request latency ceiling, nanoseconds.
    pub latency_p99_ns: u64,
    /// p999 request latency ceiling, nanoseconds. Defaults to
    /// `u64::MAX` (never judged breached) so monitors configured
    /// before this objective existed emit identical events.
    pub latency_p999_ns: u64,
    /// Suppressed-request fraction ceiling in the window.
    pub max_suppression_rate: f64,
    /// Pending group-commit events ceiling.
    pub max_flush_lag: usize,
    /// Fraction of windowed requests handled outside Normal mode.
    pub max_degraded_residency: f64,
    /// Inflight-queue depth ceiling (judged by the gateway at drain
    /// barriers via [`SloMonitor::observe_queue_depth`]). Defaults to
    /// `usize::MAX` (never breached).
    pub max_queue_depth: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window: 256,
            min_samples: 32,
            latency_p99_ns: 50_000_000,
            latency_p999_ns: u64::MAX,
            max_suppression_rate: 0.5,
            max_flush_lag: 4096,
            max_degraded_residency: 0.5,
            max_queue_depth: usize::MAX,
        }
    }
}

/// One SLO state transition: a breach or a recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEvent {
    /// Objective name (`latency_p99`, `suppression_rate`,
    /// `mode_residency`, `flush_lag`).
    pub slo: &'static str,
    /// `true` for a breach, `false` for a recovery.
    pub breached: bool,
    /// The observed value that crossed the threshold.
    pub value: f64,
    /// The configured threshold.
    pub threshold: f64,
    /// Trace id of the worst-latency request in the window.
    pub worst_trace: u64,
    /// That request's latency, microseconds.
    pub worst_us: u64,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    latency_ns: u64,
    suppressed: bool,
    degraded: bool,
    trace: TraceId,
}

/// Rolling-window SLO evaluation with per-objective breach latches.
#[derive(Debug)]
pub struct SloMonitor {
    config: SloConfig,
    window: VecDeque<Sample>,
    latched: BTreeMap<&'static str, bool>,
}

impl SloMonitor {
    /// A monitor with the given thresholds.
    pub fn new(config: SloConfig) -> Self {
        SloMonitor {
            config,
            window: VecDeque::with_capacity(config.window.max(1)),
            latched: BTreeMap::new(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// The worst-latency request in the current window:
    /// `(trace id, latency microseconds)`.
    pub fn worst(&self) -> Option<(TraceId, u64)> {
        self.window
            .iter()
            .max_by_key(|s| s.latency_ns)
            .map(|s| (s.trace, s.latency_ns / 1_000))
    }

    fn transition(&mut self, slo: &'static str, breached: bool) -> bool {
        let latch = self.latched.entry(slo).or_insert(false);
        if *latch == breached {
            return false;
        }
        *latch = breached;
        true
    }

    fn judge(&mut self, slo: &'static str, value: f64, threshold: f64, out: &mut Vec<SloEvent>) {
        let breached = value > threshold;
        if self.transition(slo, breached) {
            let (worst_trace, worst_us) = self.worst().map(|(t, us)| (t.0, us)).unwrap_or((0, 0));
            out.push(SloEvent {
                slo,
                breached,
                value,
                threshold,
                worst_trace,
                worst_us,
            });
        }
    }

    /// Folds one finished request into the window and returns any SLO
    /// transitions it caused.
    pub fn observe_request(
        &mut self,
        latency_ns: u64,
        suppressed: bool,
        degraded: bool,
        trace: TraceId,
    ) -> Vec<SloEvent> {
        if self.window.len() == self.config.window.max(1) {
            self.window.pop_front();
        }
        self.window.push_back(Sample {
            latency_ns,
            suppressed,
            degraded,
            trace,
        });
        let n = self.window.len();
        let mut out = Vec::new();
        if n < self.config.min_samples.max(1) {
            return out;
        }
        let mut lats: Vec<u64> = self.window.iter().map(|s| s.latency_ns).collect();
        lats.sort_unstable();
        let p99 = lats[(n * 99).div_ceil(100).saturating_sub(1).min(n - 1)];
        self.judge(
            "latency_p99",
            p99 as f64,
            self.config.latency_p99_ns as f64,
            &mut out,
        );
        if self.config.latency_p999_ns != u64::MAX {
            let p999 = lats[(n * 999).div_ceil(1000).saturating_sub(1).min(n - 1)];
            self.judge(
                "latency_p999",
                p999 as f64,
                self.config.latency_p999_ns as f64,
                &mut out,
            );
        }
        let suppressed_n = self.window.iter().filter(|s| s.suppressed).count();
        self.judge(
            "suppression_rate",
            suppressed_n as f64 / n as f64,
            self.config.max_suppression_rate,
            &mut out,
        );
        let degraded_n = self.window.iter().filter(|s| s.degraded).count();
        self.judge(
            "mode_residency",
            degraded_n as f64 / n as f64,
            self.config.max_degraded_residency,
            &mut out,
        );
        out
    }

    /// Observes the journal backlog at a commit barrier and returns any
    /// `flush_lag` transition.
    pub fn observe_flush_lag(&mut self, pending: usize) -> Vec<SloEvent> {
        let mut out = Vec::new();
        self.judge(
            "flush_lag",
            pending as f64,
            self.config.max_flush_lag as f64,
            &mut out,
        );
        out
    }

    /// Observes the inflight-queue depth at a gateway drain barrier and
    /// returns any `queue_depth` transition. Inert (no judgement, no
    /// latch state) while [`SloConfig::max_queue_depth`] is unset.
    pub fn observe_queue_depth(&mut self, depth: usize) -> Vec<SloEvent> {
        let mut out = Vec::new();
        if self.config.max_queue_depth != usize::MAX {
            self.judge(
                "queue_depth",
                depth as f64,
                self.config.max_queue_depth as f64,
                &mut out,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SloConfig {
        SloConfig {
            window: 8,
            min_samples: 4,
            latency_p99_ns: 1_000_000, // 1ms
            latency_p999_ns: u64::MAX,
            max_suppression_rate: 0.5,
            max_flush_lag: 10,
            max_degraded_residency: 0.5,
            max_queue_depth: usize::MAX,
        }
    }

    #[test]
    fn breach_latches_and_recovers_once() {
        let mut m = SloMonitor::new(tiny());
        // Fast requests: below min_samples, then clean.
        for i in 0..4 {
            assert!(m
                .observe_request(1_000, false, false, TraceId(i))
                .is_empty());
        }
        // A slow burst breaches p99 exactly once.
        let ev = m.observe_request(5_000_000, false, false, TraceId(9));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].slo, "latency_p99");
        assert!(ev[0].breached);
        assert_eq!(ev[0].worst_trace, 9);
        assert!(ev[0].worst_us >= 5_000);
        // Still breached: no re-emission while latched.
        assert!(m
            .observe_request(5_000_000, false, false, TraceId(10))
            .is_empty());
        // Fast requests push the slow ones out of the window: recovery.
        let mut recovered = Vec::new();
        for i in 0..10 {
            recovered.extend(m.observe_request(1_000, false, false, TraceId(20 + i)));
        }
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].slo, "latency_p99");
        assert!(!recovered[0].breached);
    }

    #[test]
    fn suppression_and_residency_rates_judge_the_window() {
        let mut m = SloMonitor::new(tiny());
        let mut events = Vec::new();
        for i in 0..8 {
            events.extend(m.observe_request(1_000, true, true, TraceId(i)));
        }
        let slos: Vec<&str> = events.iter().map(|e| e.slo).collect();
        assert!(slos.contains(&"suppression_rate"));
        assert!(slos.contains(&"mode_residency"));
        assert!(events.iter().all(|e| e.breached));
    }

    #[test]
    fn flush_lag_is_judged_at_barriers() {
        let mut m = SloMonitor::new(tiny());
        assert!(m.observe_flush_lag(5).is_empty());
        let breach = m.observe_flush_lag(50);
        assert_eq!(breach.len(), 1);
        assert_eq!(breach[0].slo, "flush_lag");
        assert!(m.observe_flush_lag(50).is_empty(), "latched");
        let rec = m.observe_flush_lag(0);
        assert_eq!(rec.len(), 1);
        assert!(!rec[0].breached);
    }

    #[test]
    fn p999_and_queue_depth_are_opt_in() {
        // Unset thresholds never judge — byte-compatibility with
        // pre-gateway monitors.
        let mut off = SloMonitor::new(tiny());
        assert!(off.observe_queue_depth(1_000_000).is_empty());

        let mut m = SloMonitor::new(SloConfig {
            latency_p999_ns: 2_000_000,
            max_queue_depth: 16,
            ..tiny()
        });
        let mut events = Vec::new();
        for i in 0..8 {
            events.extend(m.observe_request(3_000_000, false, false, TraceId(i)));
        }
        assert!(
            events.iter().any(|e| e.slo == "latency_p999" && e.breached),
            "{events:?}"
        );
        let breach = m.observe_queue_depth(40);
        assert_eq!(breach.len(), 1);
        assert_eq!(breach[0].slo, "queue_depth");
        assert!(m.observe_queue_depth(41).is_empty(), "latched");
        let rec = m.observe_queue_depth(2);
        assert_eq!(rec.len(), 1);
        assert!(!rec[0].breached);
    }
}
