//! Spans: scope-guard timers that record their elapsed time into a named
//! latency histogram when dropped.
//!
//! ```
//! {
//!     let _span = hka_obs::span("algo1.generalize");
//!     // ... the timed work ...
//! } // histogram "algo1.generalize" records the elapsed nanoseconds here
//! ```
//!
//! When trace collection is enabled ([`trace::enable`](crate::trace))
//! and a trace context is live on the thread, every guard additionally
//! opens a trace child span under that context — existing
//! instrumentation sites become trace-visible without changes. Guards
//! restore the context they captured explicitly (via the trace frame
//! stack), so nested or out-of-order drops cannot misattribute
//! durations or parentage.

use std::sync::Arc;
use std::time::Instant;

use crate::json::Json;
use crate::metrics::{global, Histogram, MetricsRegistry};
use crate::trace::{self, ActiveSpan};

/// A running span. Records elapsed nanoseconds into its histogram when
/// dropped (end of scope, early return, or unwinding alike), and closes
/// its trace child, when one is recording.
#[must_use = "a span records on Drop; binding it to `_` ends it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    histogram: Arc<Histogram>,
    start: Instant,
    /// The trace child opened under the thread's current context. The
    /// guard owns it so drop order ties the trace interval to the
    /// histogram interval; inert when tracing is off.
    trace: ActiveSpan,
}

impl SpanGuard {
    /// Starts a span recording into `registry`'s histogram `name`.
    pub fn start_in(registry: &MetricsRegistry, name: &'static str) -> SpanGuard {
        SpanGuard {
            histogram: registry.histogram(name),
            start: Instant::now(),
            trace: trace::child(name),
        }
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Attaches a key attribute to the trace child (no-op when tracing
    /// is off or no context was live at creation).
    pub fn attr(&mut self, key: &'static str, value: Json) {
        self.trace.attr(key, value);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        self.histogram.record(ns);
        // `self.trace` drops after this, closing the trace child.
    }
}

/// Starts a span recording into the [`global`] registry.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::start_in(global(), name)
}

/// Starts a span in the global registry; `span!("name")` mirrors the
/// `tracing::span!` shape while staying dependency-free.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = MetricsRegistry::new();
        {
            let _span = SpanGuard::start_in(&registry, "work");
            std::hint::black_box((0..1000u64).sum::<u64>());
        }
        let snap = registry.snapshot();
        let h = snap.histogram("work").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max > 0, "a monotonic clock never measures 0ns here");
    }

    #[test]
    fn span_records_on_early_return_via_unwind() {
        let registry = MetricsRegistry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = SpanGuard::start_in(&registry, "panicky");
            panic!("unwind through the span");
        }));
        assert!(result.is_err());
        assert_eq!(registry.snapshot().histogram("panicky").unwrap().count, 1);
    }

    #[test]
    fn interleaved_guards_keep_their_own_parents_and_durations() {
        let _g = crate::trace::tests::lock();
        trace::enable(64);
        let root = trace::root("req");
        let registry = MetricsRegistry::new();
        let a = SpanGuard::start_in(&registry, "outer");
        let b = SpanGuard::start_in(&registry, "inner");
        // Out-of-order: the outer guard drops first. The inner guard
        // must keep the live context and close under `outer`.
        drop(a);
        assert_eq!(
            trace::current().map(|c| c.span),
            rec_ctx(&b),
            "inner guard still owns the current context"
        );
        drop(b);
        assert_eq!(trace::current(), root.context());
        drop(root);
        trace::disable();
        let records = trace::drain();
        let find = |n: &str| records.iter().find(|r| r.name == n).unwrap();
        let (ro, ri, rr) = (find("outer"), find("inner"), find("req"));
        assert_eq!(ro.parent, Some(rr.id));
        assert_eq!(ri.parent, Some(ro.id));
        assert!(ro.end_tick < ri.end_tick, "outer closed first");
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("outer").unwrap().count, 1);
        assert_eq!(snap.histogram("inner").unwrap().count, 1);
    }

    fn rec_ctx(g: &SpanGuard) -> Option<crate::trace::SpanId> {
        g.trace.context().map(|c| c.span)
    }

    #[test]
    fn span_macro_uses_global() {
        {
            let _span = crate::span!("obs.test.span_macro");
        }
        let snap = global().snapshot();
        assert!(snap.histogram("obs.test.span_macro").unwrap().count >= 1);
    }
}
