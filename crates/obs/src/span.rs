//! Spans: scope-guard timers that record their elapsed time into a named
//! latency histogram when dropped.
//!
//! ```
//! {
//!     let _span = hka_obs::span("algo1.generalize");
//!     // ... the timed work ...
//! } // histogram "algo1.generalize" records the elapsed nanoseconds here
//! ```

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::{global, Histogram, MetricsRegistry};

/// A running span. Records elapsed nanoseconds into its histogram when
/// dropped (end of scope, early return, or unwinding alike).
#[must_use = "a span records on Drop; binding it to `_` ends it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl SpanGuard {
    /// Starts a span recording into `registry`'s histogram `name`.
    pub fn start_in(registry: &MetricsRegistry, name: &str) -> SpanGuard {
        SpanGuard {
            histogram: registry.histogram(name),
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        self.histogram.record(ns);
    }
}

/// Starts a span recording into the [`global`] registry.
pub fn span(name: &str) -> SpanGuard {
    SpanGuard::start_in(global(), name)
}

/// Starts a span in the global registry; `span!("name")` mirrors the
/// `tracing::span!` shape while staying dependency-free.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = MetricsRegistry::new();
        {
            let _span = SpanGuard::start_in(&registry, "work");
            std::hint::black_box((0..1000u64).sum::<u64>());
        }
        let snap = registry.snapshot();
        let h = snap.histogram("work").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max > 0, "a monotonic clock never measures 0ns here");
    }

    #[test]
    fn span_records_on_early_return_via_unwind() {
        let registry = MetricsRegistry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = SpanGuard::start_in(&registry, "panicky");
            panic!("unwind through the span");
        }));
        assert!(result.is_err());
        assert_eq!(registry.snapshot().histogram("panicky").unwrap().count, 1);
    }

    #[test]
    fn span_macro_uses_global() {
        {
            let _span = crate::span!("obs.test.span_macro");
        }
        let snap = global().snapshot();
        assert!(snap.histogram("obs.test.span_macro").unwrap().count >= 1);
    }
}
