//! Canonical pipeline-stage span names.
//!
//! The trusted server times each stage of request handling with a
//! [`span`](crate::span) named by one of these constants, so the
//! per-stage latency histograms produced by the pipeline, consumed by
//! the bench harness, and exported into `BENCH_pipeline.json` all agree
//! on naming. Keep these in sync with the stage list documented in
//! DESIGN.md §9.

/// Ingesting a location sample into the PHL and trajectory stores.
pub const INGEST: &str = "ts.stage.ingest";

/// Matching the request position against registered LBQID monitors.
pub const LBQID_MATCH: &str = "ts.stage.lbqid_match";

/// Algorithm 1: computing the generalized request (first or subsequent).
pub const ALGO1: &str = "ts.stage.algo1";

/// Checking mix-zone availability and attempting an unlink.
pub const LINK_CHECK: &str = "ts.stage.link_check";

/// Forwarding the (possibly generalized) request to the service.
pub const FORWARD: &str = "ts.stage.forward";

/// Every stage, in pipeline order.
pub const ALL: [&str; 5] = [INGEST, LBQID_MATCH, ALGO1, LINK_CHECK, FORWARD];
