//! Follow mode for the hash-chained journal: tail a live, growing file
//! while a serving process appends to it.
//!
//! [`JournalTailer`] is the read side of the flush contract (DESIGN.md
//! §12): it consumes **only fully hash-chained records** — complete,
//! newline-terminated lines that pass the same four checks as
//! [`JournalReader`](crate::JournalReader) (schema version, sequence
//! monotonicity, `prev` link, recomputed hash) — and **tolerates torn
//! tails**. The writer's topology guarantees make this sound:
//!
//! * every append is a single `write_all` of `record + '\n'`, so an
//!   interrupted or buffered write leaves *complete valid lines followed
//!   by at most one newline-less prefix of the next record*;
//! * therefore a trailing line without `\n` is in-flight or torn — the
//!   tailer leaves it in place and re-polls, never failing the chain on
//!   it — while a **complete** line that fails verification is genuine
//!   corruption and ends the tail with a sticky [`ChainError`];
//! * [`recover`](crate::recover) truncates only invalid suffix bytes,
//!   which the tailer by construction never consumed, so a concurrent
//!   crash-recovery cycle can shorten the file only *above* the tailer's
//!   offset; shrinking below it is reported as
//!   [`ChainError::TruncatedBehind`].
//!
//! The tailer holds no file handle between polls: each [`poll`]
//! re-opens the path, seeks to the verified offset, and reads whatever
//! grew. A missing file is an empty journal (the writer may not have
//! created it yet), matching the offline reader's clean handling of
//! empty input.
//!
//! [`poll`]: JournalTailer::poll

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::journal::{ChainCursor, ChainError, JournalRecord};

/// One record consumed by a poll, with the byte offset of its first
/// byte in the journal file — the stable anchor a watch surface reports
/// alongside violations.
#[derive(Debug, Clone, PartialEq)]
pub struct TailedRecord {
    /// Byte offset of the record's first byte.
    pub offset: u64,
    /// The verified record.
    pub record: JournalRecord,
}

/// What one [`JournalTailer::poll`] found.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TailBatch {
    /// Newly verified records, in chain order.
    pub records: Vec<TailedRecord>,
    /// Bytes after the last complete line: a torn or in-flight append.
    /// Not consumed — the next poll re-reads them.
    pub torn_bytes: u64,
}

/// A polling reader over a live journal file. See the module docs for
/// the safety rules it relies on.
#[derive(Debug)]
pub struct JournalTailer {
    path: PathBuf,
    /// Byte offset one past the last verified record.
    offset: u64,
    /// Complete lines consumed so far (1-based numbering parity with
    /// [`JournalReader`](crate::JournalReader) error messages).
    line_no: usize,
    cursor: ChainCursor,
    /// The first chain failure, sticky: a journal is unusable past it.
    failed: Option<ChainError>,
    /// True until the first complete line is seen: a tailer opened at
    /// the start of a file may find a checkpoint-anchored suffix there
    /// and seed its cursor from the anchor.
    at_start: bool,
}

impl JournalTailer {
    /// A tailer positioned at the start of `path`. The file does not
    /// need to exist yet — polls before the writer's first append
    /// return empty batches. Like the offline reader, a first record
    /// that is a self-consistent `checkpoint` anchor (a truncated
    /// journal suffix — see [`crate::checkpoint`]) seeds the cursor
    /// from the anchor instead of genesis.
    pub fn open(path: &Path) -> Self {
        JournalTailer {
            path: path.to_path_buf(),
            offset: 0,
            line_no: 0,
            cursor: ChainCursor::new(),
            failed: None,
            at_start: true,
        }
    }

    /// A tailer resuming mid-file: the next record starts at byte
    /// `offset` and must carry sequence `records` chained from `head`.
    /// This is how a watcher restarts from a checkpoint instead of
    /// re-verifying from the start of the file.
    pub fn resume(path: &Path, offset: u64, records: u64, head: String) -> Self {
        JournalTailer {
            path: path.to_path_buf(),
            offset,
            line_no: 0,
            cursor: ChainCursor::resume(records, head),
            failed: None,
            at_start: false,
        }
    }

    /// The journal path being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records verified so far.
    pub fn records_read(&self) -> u64 {
        self.cursor.records()
    }

    /// Hash of the last verified record (genesis hash before the first).
    pub fn head(&self) -> &str {
        self.cursor.head()
    }

    /// Byte offset one past the last verified record.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The sticky chain failure, if the tail has ended.
    pub fn error(&self) -> Option<&ChainError> {
        self.failed.as_ref()
    }

    /// Reads and verifies whatever the journal grew since the last
    /// poll. Returns the newly verified records plus the size of any
    /// torn/in-flight tail.
    ///
    /// Failure delivery matches the offline reader's: a complete line
    /// that fails verification *mid-batch* does not discard the records
    /// admitted before it — the batch is returned `Ok`, the failure is
    /// latched (visible immediately via [`error`](Self::error)), and
    /// every later poll returns it as `Err`. Failures detected before
    /// anything is consumed ([`ChainError::TruncatedBehind`], I/O
    /// errors) return `Err` at once. Either way the error is sticky:
    /// nothing past a chain failure can be trusted.
    pub fn poll(&mut self) -> Result<TailBatch, ChainError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        self.read_new().inspect_err(|e| {
            self.failed = Some(e.clone());
        })
    }

    fn read_new(&mut self) -> Result<TailBatch, ChainError> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            // Not created yet: an empty journal, not an error — unless
            // the verified prefix vanished with it.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if self.offset > 0 {
                    return Err(ChainError::TruncatedBehind {
                        offset: self.offset,
                        len: 0,
                    });
                }
                return Ok(TailBatch::default());
            }
            Err(e) => return Err(ChainError::Io(e.to_string())),
        };
        let len = file
            .metadata()
            .map_err(|e| ChainError::Io(e.to_string()))?
            .len();
        if len < self.offset {
            return Err(ChainError::TruncatedBehind {
                offset: self.offset,
                len,
            });
        }
        if len == self.offset {
            return Ok(TailBatch::default());
        }
        file.seek(SeekFrom::Start(self.offset))
            .map_err(|e| ChainError::Io(e.to_string()))?;
        let mut bytes = Vec::with_capacity((len - self.offset) as usize);
        file.read_to_end(&mut bytes)
            .map_err(|e| ChainError::Io(e.to_string()))?;

        let base = self.offset;
        let mut batch = TailBatch::default();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
                break; // torn or in-flight final line: re-poll later
            };
            let line_end = pos + nl;
            let record_offset = base + pos as u64;
            let Ok(line) = std::str::from_utf8(&bytes[pos..line_end]) else {
                self.failed = Some(ChainError::Malformed {
                    line: self.line_no + 1,
                    message: "record is not valid UTF-8".to_string(),
                });
                batch.torn_bytes = 0;
                return Ok(batch);
            };
            self.line_no += 1;
            if !line.trim().is_empty() {
                if self.at_start {
                    self.at_start = false;
                    if let Some((records, head)) = crate::checkpoint::suffix_anchor(line) {
                        self.cursor = ChainCursor::resume(records, head);
                    }
                }
                match self.cursor.admit(self.line_no, line) {
                    Ok(record) => batch.records.push(TailedRecord {
                        offset: record_offset,
                        record,
                    }),
                    // Genuine corruption on a complete line: deliver
                    // the records verified before it — exactly what the
                    // offline reader reports — and latch the failure.
                    Err(e) => {
                        self.failed = Some(e);
                        batch.torn_bytes = 0;
                        return Ok(batch);
                    }
                }
            }
            pos = line_end + 1;
            self.offset = base + pos as u64;
        }
        batch.torn_bytes = (bytes.len() - pos) as u64;
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{recover, verify_chain, Journal, GENESIS_HASH};
    use crate::json::Json;
    use std::io::Write;

    /// A scratch file that cleans up after itself.
    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("hka-tail-{}-{tag}.jsonl", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempPath(path)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn payload(i: i64) -> Json {
        Json::obj([("n", Json::Int(i))])
    }

    fn journal_bytes(range: std::ops::Range<i64>) -> Vec<u8> {
        let mut j = Journal::new(Vec::new());
        for i in range {
            j.append("tail.test", payload(i)).unwrap();
        }
        j.into_inner()
    }

    #[test]
    fn missing_then_empty_file_polls_clean() {
        let tmp = TempPath::new("missing");
        let mut tailer = JournalTailer::open(&tmp.0);
        let batch = tailer.poll().unwrap();
        assert!(batch.records.is_empty());
        assert_eq!(batch.torn_bytes, 0);
        assert_eq!(tailer.records_read(), 0);
        assert_eq!(tailer.head(), GENESIS_HASH);

        // Zero-length file: identical clean-empty result.
        std::fs::write(&tmp.0, b"").unwrap();
        let batch = tailer.poll().unwrap();
        assert!(batch.records.is_empty());
        assert_eq!(tailer.offset(), 0);
    }

    #[test]
    fn growing_file_is_consumed_incrementally() {
        let tmp = TempPath::new("grow");
        let all = journal_bytes(0..6);
        let text = String::from_utf8(all).unwrap();
        let lines: Vec<&str> = text.lines().collect();

        let mut tailer = JournalTailer::open(&tmp.0);
        let mut file = std::fs::File::create(&tmp.0).unwrap();
        let mut seen = 0u64;
        for (i, line) in lines.iter().enumerate() {
            writeln!(file, "{line}").unwrap();
            file.flush().unwrap();
            let batch = tailer.poll().unwrap();
            seen += batch.records.len() as u64;
            assert_eq!(seen, i as u64 + 1);
            assert_eq!(batch.torn_bytes, 0);
        }
        assert_eq!(tailer.records_read(), 6);
        let report = verify_chain(text.as_bytes()).unwrap();
        assert_eq!(tailer.head(), report.head);
        // Idle poll: nothing new.
        assert!(tailer.poll().unwrap().records.is_empty());
    }

    #[test]
    fn record_offsets_anchor_into_the_file() {
        let tmp = TempPath::new("offsets");
        std::fs::write(&tmp.0, journal_bytes(0..4)).unwrap();
        let mut tailer = JournalTailer::open(&tmp.0);
        let batch = tailer.poll().unwrap();
        let bytes = std::fs::read(&tmp.0).unwrap();
        for tr in &batch.records {
            // The bytes at the reported offset start the record's line.
            let at = tr.offset as usize;
            assert_eq!(bytes[at], b'{');
            let line_end = at + bytes[at..].iter().position(|&b| b == b'\n').unwrap();
            let line = std::str::from_utf8(&bytes[at..line_end]).unwrap();
            assert_eq!(JournalRecord::parse_line(line).unwrap(), tr.record);
        }
        assert_eq!(tailer.offset(), bytes.len() as u64);
    }

    #[test]
    fn torn_tail_is_tolerated_until_completed() {
        let tmp = TempPath::new("torn");
        let all = journal_bytes(0..3);
        let text = String::from_utf8(all).unwrap();
        let last_line_len = text.lines().last().unwrap().len();
        let cut = text.len() - 1 - last_line_len / 2; // mid final record
        std::fs::write(&tmp.0, &text.as_bytes()[..cut]).unwrap();

        let mut tailer = JournalTailer::open(&tmp.0);
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.records.len(), 2, "complete records verify");
        assert!(batch.torn_bytes > 0, "partial line reported, not failed");

        // Re-poll with nothing new: same torn tail, still no failure.
        let batch = tailer.poll().unwrap();
        assert!(batch.records.is_empty());
        assert!(batch.torn_bytes > 0);

        // The writer completes the append: the record is consumed.
        std::fs::write(&tmp.0, text.as_bytes()).unwrap();
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.torn_bytes, 0);
        assert_eq!(tailer.records_read(), 3);
    }

    #[test]
    fn complete_invalid_line_is_a_sticky_chain_error() {
        let tmp = TempPath::new("tamper");
        let text = String::from_utf8(journal_bytes(0..4)).unwrap();
        let tampered = text.replacen("\"n\":2", "\"n\":22", 1);
        std::fs::write(&tmp.0, tampered).unwrap();

        let mut tailer = JournalTailer::open(&tmp.0);
        // The prefix before the tamper is delivered (as the offline
        // reader would report it), with the failure latched alongside.
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.records.len(), 2, "prefix before the tamper verified");
        assert_eq!(batch.torn_bytes, 0);
        assert_eq!(tailer.records_read(), 2);
        let err = tailer.error().expect("failure latched").clone();
        assert!(matches!(err, ChainError::BadHash { line: 3 }));
        // Sticky: the same error comes back; the file growing is moot.
        std::fs::write(&tmp.0, format!("{text}extra", text = text)).unwrap();
        assert_eq!(tailer.poll().unwrap_err(), err);
        assert_eq!(tailer.error(), Some(&err));
    }

    #[test]
    fn shrinking_below_the_verified_offset_is_detected() {
        let tmp = TempPath::new("shrink");
        std::fs::write(&tmp.0, journal_bytes(0..5)).unwrap();
        let mut tailer = JournalTailer::open(&tmp.0);
        tailer.poll().unwrap();
        assert_eq!(tailer.records_read(), 5);

        // The file is replaced with a shorter (even valid) journal:
        // the verified prefix is gone.
        std::fs::write(&tmp.0, journal_bytes(0..1)).unwrap();
        let err = tailer.poll().unwrap_err();
        assert!(matches!(err, ChainError::TruncatedBehind { .. }));

        // Removing the file entirely under a positioned tailer is the
        // same failure.
        let mut tailer2 = JournalTailer::open(&tmp.0);
        tailer2.poll().unwrap();
        std::fs::remove_file(&tmp.0).unwrap();
        assert!(matches!(
            tailer2.poll().unwrap_err(),
            ChainError::TruncatedBehind { len: 0, .. }
        ));
    }

    #[test]
    fn recovery_truncation_is_invisible_to_a_positioned_tailer() {
        // Satellite: `Journal::recover` + tail interplay. The tailer
        // verifies the clean prefix, the writer crashes mid-append
        // (torn tail), recovery truncates the torn bytes and appends a
        // `journal.recovered` marker, and the writer re-chains. The
        // tailer — positioned exactly past the verified prefix — must
        // resume seamlessly: no error, marker + new records consumed.
        let tmp = TempPath::new("recover");
        let text = String::from_utf8(journal_bytes(0..4)).unwrap();
        std::fs::write(&tmp.0, text.as_bytes()).unwrap();

        let mut tailer = JournalTailer::open(&tmp.0);
        assert_eq!(tailer.poll().unwrap().records.len(), 4);
        let offset_before_crash = tailer.offset();

        // Crash mid-append: half a record lands, no newline.
        let torn = &journal_bytes(0..5)[text.len()..];
        let half = &torn[..torn.len() / 2];
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&tmp.0)
                .unwrap();
            f.write_all(half).unwrap();
        }
        let batch = tailer.poll().unwrap();
        assert!(batch.records.is_empty());
        assert_eq!(batch.torn_bytes, half.len() as u64);

        // Recovery truncates the torn bytes (never below the tailer's
        // offset) and re-chains with a marker + fresh appends.
        let (mut journal, report) = recover(&tmp.0).unwrap();
        assert_eq!(report.valid_records, 4);
        assert!(report.truncated_bytes > 0);
        journal.append("post.recovery", payload(99)).unwrap();
        journal.flush().unwrap();
        drop(journal);

        let batch = tailer.poll().unwrap();
        let kinds: Vec<&str> = batch
            .records
            .iter()
            .map(|r| r.record.kind.as_str())
            .collect();
        assert_eq!(kinds, vec!["journal.recovered", "post.recovery"]);
        assert_eq!(batch.torn_bytes, 0);
        assert!(tailer.offset() > offset_before_crash);

        // And the tail agrees with a from-scratch verification.
        let report = verify_chain(&std::fs::read(&tmp.0).unwrap()[..]).unwrap();
        assert_eq!(tailer.records_read(), report.records.len() as u64);
        assert_eq!(tailer.head(), report.head);
    }

    #[test]
    fn blank_lines_are_skipped_like_the_offline_reader() {
        let tmp = TempPath::new("blank");
        let text = String::from_utf8(journal_bytes(0..2)).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(1, "");
        std::fs::write(&tmp.0, lines.join("\n") + "\n").unwrap();
        let mut tailer = JournalTailer::open(&tmp.0);
        assert_eq!(tailer.poll().unwrap().records.len(), 2);
    }
}
