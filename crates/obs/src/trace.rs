//! Causal request tracing: trace/span contexts minted per request,
//! propagated across threads, collected into bounded per-track rings,
//! and exported as Chrome trace-event JSON loadable in Perfetto.
//!
//! Design constraints, in order:
//!
//! * **Zero cost when off.** A single relaxed atomic load gates the hot
//!   path; with the collector disabled no allocation, locking, or
//!   clock read happens beyond what [`span`](crate::span) already does.
//! * **Deterministic export.** Every *track* (the coordinator thread,
//!   or one worker shard) is single-threaded and processes work in a
//!   deterministic order, so span start/end order per track is a pure
//!   function of the workload. Each track therefore carries a logical
//!   **tick counter**: opening or closing a span consumes one tick, and
//!   the default export clock uses ticks, making the artifact
//!   byte-stable for a fixed seed. Wall-clock micros are recorded
//!   alongside and selectable with [`TraceClock::Wall`].
//! * **Out-of-order drops stay correct.** Open spans form a per-thread
//!   stack of frames; a guard dropped while an inner guard is still
//!   live marks its frame *dead* instead of clobbering the current
//!   context, and the innermost live guard sweeps dead frames when it
//!   closes. Parentage is captured at creation, so durations and parent
//!   links never migrate between spans (see the interleaved-guard test).
//! * **Bounded memory.** Spans land in a per-track
//!   [`RingBuffer`](crate::RingBuffer); overflow drops the oldest record
//!   and increments the `obs.trace_dropped` counter.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::json::Json;
use crate::metrics::global;
use crate::ring::RingBuffer;

/// Identifies one request's journey through the stack. Minted
/// unconditionally (whether or not collection is enabled) so that
/// journal payloads referencing a trace are identical with tracing on
/// and off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{:08x}", self.0)
    }
}

/// Identifies one span. The top 16 bits carry the track that opened it
/// (mirroring the shard id-space split), the low 48 bits its start
/// tick, so ids are unique without cross-track coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{:012x}", self.0)
    }
}

/// The (trace, span) pair handed across a thread boundary so work on
/// the far side parents under the originating request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The request's trace.
    pub trace: TraceId,
    /// The span the far side should parent under.
    pub span: SpanId,
}

/// One finished span as stored in a track ring.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The owning trace.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// The parent span, captured at creation.
    pub parent: Option<SpanId>,
    /// Span name (stage or operation). Static: span names are code,
    /// not data, and a per-span heap allocation is measurable on the
    /// request path.
    pub name: &'static str,
    /// The track (0 = coordinator / sequential server, 1+i = shard i).
    pub track: u32,
    /// Logical tick at open (deterministic per track).
    pub start_tick: u64,
    /// Logical tick at close.
    pub end_tick: u64,
    /// Wall-clock micros since collector creation, at open.
    pub start_us: u64,
    /// Wall-clock micros since collector creation, at close.
    pub end_us: u64,
    /// Key attributes (k_req, k_got, outcome, shard, ...).
    pub attrs: Vec<(&'static str, Json)>,
}

const TRACK_SHIFT: u32 = 48;

/// Per-track state: the bounded span ring and the logical tick counter.
/// Aligned out to two cache lines: every span bumps `ticks` twice and
/// takes `ring` once, and adjacent tracks belong to *different* worker
/// threads — sharing a line between them turns per-track atomics into
/// cross-core traffic.
#[repr(align(128))]
struct Track {
    ring: Mutex<RingBuffer<SpanRecord>>,
    ticks: AtomicU64,
}

/// The process-wide collector.
struct Collector {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    next_trace: AtomicU64,
    /// Bumped by [`enable`] whenever the track table is rebuilt, so
    /// per-thread cached track handles know to refresh.
    generation: AtomicU64,
    epoch: Instant,
    tracks: RwLock<Vec<Arc<Track>>>,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        enabled: AtomicBool::new(false),
        capacity: AtomicUsize::new(4096),
        next_trace: AtomicU64::new(1),
        generation: AtomicU64::new(0),
        epoch: Instant::now(),
        tracks: RwLock::new(Vec::new()),
    })
}

impl Collector {
    fn track(&self, idx: u32) -> Arc<Track> {
        {
            let tracks = self.tracks.read().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = tracks.get(idx as usize) {
                return Arc::clone(t);
            }
        }
        let mut tracks = self.tracks.write().unwrap_or_else(|e| e.into_inner());
        let cap = self.capacity.load(Ordering::Relaxed);
        while tracks.len() <= idx as usize {
            tracks.push(Arc::new(Track {
                ring: Mutex::new(RingBuffer::new(cap)),
                ticks: AtomicU64::new(0),
            }));
        }
        Arc::clone(&tracks[idx as usize])
    }
}

/// Enables collection with `capacity` span records per track, clearing
/// any previously collected spans and resetting tick counters. Trace id
/// minting continues from wherever it was (ids are process-unique).
pub fn enable(capacity: usize) {
    let c = collector();
    c.capacity.store(capacity.max(1), Ordering::Relaxed);
    c.tracks.write().unwrap_or_else(|e| e.into_inner()).clear();
    c.generation.fetch_add(1, Ordering::SeqCst);
    c.enabled.store(true, Ordering::SeqCst);
}

/// Disables collection. Spans already collected remain drainable.
pub fn disable() {
    collector().enabled.store(false, Ordering::SeqCst);
}

/// Whether spans are currently being collected.
pub fn enabled() -> bool {
    collector().enabled.load(Ordering::Relaxed)
}

/// Mints the next trace id. Works whether or not collection is enabled,
/// so journal events can reference a trace id unconditionally.
pub fn mint_trace_id() -> TraceId {
    TraceId(collector().next_trace.fetch_add(1, Ordering::Relaxed))
}

/// Drains every track's collected spans, ordered by (track, start
/// tick) — a deterministic total order for a deterministic workload.
pub fn drain() -> Vec<SpanRecord> {
    let c = collector();
    let tracks: Vec<Arc<Track>> = c
        .tracks
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    let mut out = Vec::new();
    for t in tracks {
        let mut ring = t.ring.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(ring.drain());
    }
    out.sort_by_key(|r| (r.track, r.start_tick, r.id.0));
    out
}

// ---------------------------------------------------------------------------
// Per-thread context: a frame stack tolerant of out-of-order drops.

struct Frame {
    ctx: SpanContext,
    dead: bool,
}

#[derive(Default)]
struct ThreadCtx {
    /// Track index spans opened on this thread belong to.
    track: u32,
    /// Context handed in from another thread (a worker's current item).
    base: Option<SpanContext>,
    /// Open spans, innermost last. Dead frames are swept lazily.
    frames: Vec<Frame>,
    /// `(generation, track) -> Arc<Track>` cache. Looking the track up
    /// in the collector takes a read lock on a `RwLock` every worker
    /// thread contends on; caching the handle here makes the per-span
    /// cost an uncontended refcount bump. The generation (bumped by
    /// [`enable`], which drops the old tracks) invalidates stale
    /// handles.
    cached: Option<(u64, u32, Arc<Track>)>,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = const {
        RefCell::new(ThreadCtx {
            track: 0,
            base: None,
            frames: Vec::new(),
            cached: None,
        })
    };
    /// Cache of [`current`]'s answer — innermost live frame, else base.
    /// Updated by every frame/base mutation; `const`-initialized so the
    /// read on the hot path (every `span()` call while collection is
    /// enabled, live context or not) is a plain TLS load with no lazy
    /// registration and no `RefCell` borrow.
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

/// Recomputes the [`CURRENT`] cache from a borrowed context. Callers
/// hold the `CTX` borrow, so this cannot race with `current()` on the
/// same thread.
fn refresh_current(ctx: &ThreadCtx) {
    let cur = ctx
        .frames
        .iter()
        .rev()
        .find(|f| !f.dead)
        .map(|f| f.ctx)
        .or(ctx.base);
    CURRENT.with(|c| c.set(cur));
}

/// Assigns this thread's track: 0 for the coordinator / sequential
/// server, `1 + shard` for worker threads. Worker spawns call this
/// before running their batch.
pub fn set_thread_track(track: u32) {
    CTX.with(|c| c.borrow_mut().track = track);
}

/// Swaps the thread's *base* context — the parent adopted by spans
/// opened while no local guard is live. Workers swap the submitted
/// request's context in before each work item and restore the previous
/// value after, which hands spans across the thread boundary. Returns
/// the previous base.
pub fn swap_current(ctx: Option<SpanContext>) -> Option<SpanContext> {
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        let prev = std::mem::replace(&mut c.base, ctx);
        refresh_current(&c);
        prev
    })
}

/// The innermost live span context on this thread, if any.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|c| c.get())
}

struct OpenSpan {
    ctx: SpanContext,
    parent: Option<SpanId>,
    name: &'static str,
    track: u32,
    /// The track the span opened on, kept so the drop path skips the
    /// collector's track-table lookup.
    handle: Arc<Track>,
    start_tick: u64,
    start_us: u64,
    attrs: Vec<(&'static str, Json)>,
    /// Whether this span pushed a frame (roots opened detached did not).
    framed: bool,
}

/// A live span guard. Closing (dropping) it stamps the end tick, pushes
/// the finished [`SpanRecord`] into the track ring, and restores the
/// thread context — correctly even when guards drop out of creation
/// order. When collection is disabled the guard is inert but still
/// carries the minted trace id.
#[derive(Debug)]
pub struct ActiveSpan {
    trace: TraceId,
    open: Option<OpenSpanOpaque>,
}

// Keep OpenSpan out of the public debug surface.
struct OpenSpanOpaque(OpenSpan);

impl std::fmt::Debug for OpenSpanOpaque {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenSpan")
            .field("id", &self.0.ctx.span)
            .field("name", &self.0.name)
            .finish()
    }
}

fn open_span(
    trace: TraceId,
    name: &'static str,
    parent: Option<SpanId>,
    framed: bool,
) -> ActiveSpan {
    let c = collector();
    let start_us = u64::try_from(c.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
    CTX.with(|tls| {
        let mut tls = tls.borrow_mut();
        let track = tls.track;
        let generation = c.generation.load(Ordering::Relaxed);
        let handle = match &tls.cached {
            Some((g, t, h)) if *g == generation && *t == track => Arc::clone(h),
            _ => {
                let h = c.track(track);
                tls.cached = Some((generation, track, Arc::clone(&h)));
                h
            }
        };
        let start_tick = handle.ticks.fetch_add(1, Ordering::Relaxed);
        let id = SpanId((u64::from(track) + 1) << TRACK_SHIFT | start_tick);
        let ctx = SpanContext { trace, span: id };
        if framed {
            tls.frames.push(Frame { ctx, dead: false });
            CURRENT.with(|cur| cur.set(Some(ctx)));
        }
        ActiveSpan {
            trace,
            open: Some(OpenSpanOpaque(OpenSpan {
                ctx,
                parent,
                name,
                track,
                handle,
                start_tick,
                start_us,
                attrs: Vec::new(),
                framed,
            })),
        }
    })
}

/// Opens a root span for a new request: mints a trace id (always) and,
/// when collection is enabled, opens a parentless span and makes it the
/// thread's current context.
pub fn root(name: &'static str) -> ActiveSpan {
    let trace = mint_trace_id();
    if !enabled() {
        return ActiveSpan { trace, open: None };
    }
    open_span(trace, name, None, true)
}

/// Opens a root span *without* touching the thread's current context.
/// The sharded frontend uses this for deferred roots that stay open
/// across a whole flush while children run on worker threads via
/// [`swap_current`].
pub fn root_detached(name: &'static str) -> ActiveSpan {
    let trace = mint_trace_id();
    if !enabled() {
        return ActiveSpan { trace, open: None };
    }
    open_span(trace, name, None, false)
}

/// Opens a child under the thread's current context. Returns an inert
/// guard when collection is disabled or no context is live.
pub fn child(name: &'static str) -> ActiveSpan {
    if !enabled() {
        return ActiveSpan {
            trace: TraceId(0),
            open: None,
        };
    }
    match current() {
        None => ActiveSpan {
            trace: TraceId(0),
            open: None,
        },
        Some(parent) => open_span(parent.trace, name, Some(parent.span), true),
    }
}

impl ActiveSpan {
    /// The trace id (minted even when collection is disabled, except
    /// for inert children, which report trace 0).
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }

    /// The context to hand across a thread boundary, if recording.
    pub fn context(&self) -> Option<SpanContext> {
        self.open.as_ref().map(|o| o.0.ctx)
    }

    /// Attaches a key attribute. No-op when not recording.
    pub fn attr(&mut self, key: &'static str, value: Json) {
        if let Some(o) = self.open.as_mut() {
            o.0.attrs.push((key, value));
        }
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let o = open.0;
        let c = collector();
        if o.framed {
            // Explicit restoration: mark *this* frame dead; only the
            // innermost live guard pops, sweeping any dead frames under
            // it. An out-of-order drop therefore never steals the
            // context from a still-live inner span.
            CTX.with(|ctx| {
                let mut ctx = ctx.borrow_mut();
                if let Some(f) = ctx
                    .frames
                    .iter_mut()
                    .rev()
                    .find(|f| f.ctx.span == o.ctx.span)
                {
                    f.dead = true;
                }
                while ctx.frames.last().is_some_and(|f| f.dead) {
                    ctx.frames.pop();
                }
                refresh_current(&ctx);
            });
        }
        if !enabled() {
            return;
        }
        let handle = o.handle;
        let end_tick = handle.ticks.fetch_add(1, Ordering::Relaxed);
        let end_us = u64::try_from(c.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let record = SpanRecord {
            trace: self.trace,
            id: o.ctx.span,
            parent: o.parent,
            name: o.name,
            track: o.track,
            start_tick: o.start_tick,
            end_tick,
            start_us: o.start_us,
            end_us,
            attrs: o.attrs,
        };
        let mut ring = handle.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.push(record).is_some() {
            global().counter("obs.trace_dropped").incr();
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.

/// Which clock the exporter stamps `ts`/`dur` with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClock {
    /// Per-track logical ticks: deterministic, byte-stable for a fixed
    /// seed. The default.
    Logical,
    /// Wall-clock micros since collector creation.
    Wall,
}

impl TraceClock {
    /// Parses `logical` / `wall`.
    pub fn parse(s: &str) -> Option<TraceClock> {
        match s {
            "logical" => Some(TraceClock::Logical),
            "wall" => Some(TraceClock::Wall),
            _ => None,
        }
    }
}

fn track_label(track: u32) -> String {
    if track == 0 {
        "coordinator".to_string()
    } else {
        format!("shard-{}", track - 1)
    }
}

/// Renders drained span records as Chrome trace-event JSON (the format
/// Perfetto and `chrome://tracing` load). One complete (`ph:"X"`) event
/// per span plus a `thread_name` metadata event per track; span, parent
/// and trace ids ride in `args`.
pub fn chrome_trace(records: &[SpanRecord], clock: TraceClock) -> Json {
    let mut events = Vec::new();
    let tracks: BTreeSet<u32> = records.iter().map(|r| r.track).collect();
    for track in &tracks {
        events.push(Json::obj([
            ("ph", Json::from("M")),
            ("pid", Json::Int(1)),
            ("tid", Json::from(*track)),
            ("name", Json::from("thread_name")),
            (
                "args",
                Json::obj([("name", Json::from(track_label(*track)))]),
            ),
        ]));
    }
    for r in records {
        let (ts, dur) = match clock {
            TraceClock::Logical => (r.start_tick, r.end_tick.saturating_sub(r.start_tick).max(1)),
            TraceClock::Wall => (r.start_us, r.end_us.saturating_sub(r.start_us).max(1)),
        };
        let mut args = BTreeMap::new();
        args.insert("trace".to_string(), Json::from(r.trace.to_string()));
        args.insert("span".to_string(), Json::from(r.id.to_string()));
        args.insert(
            "parent".to_string(),
            match r.parent {
                Some(p) => Json::from(p.to_string()),
                None => Json::Null,
            },
        );
        for (k, v) in &r.attrs {
            args.entry((*k).to_string()).or_insert_with(|| v.clone());
        }
        events.push(Json::obj([
            ("ph", Json::from("X")),
            ("pid", Json::Int(1)),
            ("tid", Json::from(r.track)),
            ("name", Json::from(r.name)),
            ("cat", Json::from("ts")),
            ("ts", Json::from(ts)),
            ("dur", Json::from(dur)),
            ("args", Json::Obj(args)),
        ]));
    }
    Json::obj([
        ("displayTimeUnit", Json::from("ms")),
        ("traceEvents", Json::Arr(events)),
    ])
}

/// Summary of a validated trace artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events (metadata + complete).
    pub events: usize,
    /// Complete (`ph:"X"`) span events.
    pub spans: usize,
    /// Spans with no parent.
    pub roots: usize,
    /// Distinct tracks (tids).
    pub tracks: usize,
}

/// Validates a Chrome trace-event document: required fields per event
/// (`ph`/`pid`/`tid`/`name`, plus `ts`/`dur` on complete events),
/// unique span ids, and acyclic parent linkage where every parent
/// resolves to a span in the document.
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceCheck, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|e| match e {
            Json::Arr(v) => Some(v),
            _ => None,
        })
        .ok_or("missing traceEvents array")?;
    let mut spans: BTreeMap<String, Option<String>> = BTreeMap::new();
    let mut roots = 0usize;
    let mut n_spans = 0usize;
    let mut tracks = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        ev.get("pid")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        if ph != "X" {
            continue;
        }
        tracks.insert(tid);
        n_spans += 1;
        let ts = ev
            .get("ts")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i}: complete event missing ts"))?;
        let dur = ev
            .get("dur")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i}: complete event missing dur"))?;
        if ts < 0 || dur < 1 {
            return Err(format!("event {i}: bad ts/dur ({ts}/{dur})"));
        }
        let span = ev
            .get("args")
            .and_then(|a| a.get("span"))
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing args.span"))?
            .to_string();
        let parent = ev
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Json::as_str)
            .map(str::to_string);
        if parent.is_none() {
            roots += 1;
        }
        if spans.insert(span.clone(), parent).is_some() {
            return Err(format!("duplicate span id {span}"));
        }
    }
    for (span, parent) in &spans {
        if let Some(p) = parent {
            if !spans.contains_key(p) {
                return Err(format!("span {span}: parent {p} not in document"));
            }
        }
        // Walk to a root; a cycle revisits a node before the walk ends.
        let mut seen = BTreeSet::new();
        let mut cur = span;
        while let Some(Some(p)) = spans.get(cur) {
            if !seen.insert(cur.clone()) {
                return Err(format!("cycle in parent linkage at span {span}"));
            }
            cur = p;
        }
    }
    Ok(TraceCheck {
        events: events.len(),
        spans: n_spans,
        roots,
        tracks: tracks.len(),
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Tests toggling the global collector must not interleave.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: StdMutex<()> = StdMutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_guards_are_inert_but_mint_trace_ids() {
        let _g = lock();
        disable();
        let r = root("req");
        assert!(!r.is_recording());
        assert!(r.trace_id().0 > 0);
        assert!(!child("inner").is_recording());
        drop(r);
        let _ = drain(); // nothing recorded by us; leave the rings clean
    }

    #[test]
    fn nesting_and_cross_thread_handoff_link_correctly() {
        let _g = lock();
        enable(64);
        let ctx = {
            let root = root("req");
            {
                let _inner = child("stage");
            }
            root.context().unwrap()
        };
        // Simulate a worker: separate "thread" context via swap.
        let prev = swap_current(Some(ctx));
        set_thread_track(3);
        {
            let _hop = child("worker-hop");
        }
        set_thread_track(0);
        swap_current(prev);
        disable();
        let records = drain();
        assert_eq!(records.len(), 3);
        let root_rec = records.iter().find(|r| r.name == "req").unwrap();
        let stage = records.iter().find(|r| r.name == "stage").unwrap();
        let hop = records.iter().find(|r| r.name == "worker-hop").unwrap();
        assert_eq!(root_rec.parent, None);
        assert_eq!(stage.parent, Some(root_rec.id));
        assert_eq!(hop.parent, Some(root_rec.id));
        assert_eq!(hop.track, 3);
        assert_eq!(hop.trace, root_rec.trace);
        assert!(stage.start_tick > root_rec.start_tick);
        assert!(stage.end_tick < root_rec.end_tick);
    }

    #[test]
    fn interleaved_drops_do_not_misattribute() {
        let _g = lock();
        enable(64);
        let r = root("req");
        let a = child("a");
        let a_ctx = a.context().unwrap();
        let b = child("b");
        let b_ctx = b.context().unwrap();
        // Drop the *outer* child first: the inner child must keep the
        // current context.
        drop(a);
        assert_eq!(current(), Some(b_ctx));
        drop(b);
        assert_eq!(current(), r.context());
        drop(r);
        disable();
        let records = drain();
        let rec = |n: &str| records.iter().find(|r| r.name == n).unwrap().clone();
        let (ra, rb, rr) = (rec("a"), rec("b"), rec("req"));
        assert_eq!(ra.parent, Some(rr.id));
        assert_eq!(rb.parent, Some(ra.id), "b was created under a");
        assert_eq!(ra.id, a_ctx.span);
        assert!(ra.end_tick < rb.end_tick, "a closed before b");
        assert!(ra.end_tick > ra.start_tick && rb.end_tick > rb.start_tick);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _g = lock();
        enable(2);
        let before = global().counter("obs.trace_dropped").get();
        let r = root("req");
        for _ in 0..4 {
            let _c = child("c");
        }
        drop(r);
        disable();
        let records = drain();
        assert_eq!(records.len(), 2, "ring capacity bounds retention");
        assert!(global().counter("obs.trace_dropped").get() >= before + 3);
    }

    #[test]
    fn export_is_schema_valid_and_deterministic_under_logical_clock() {
        let _g = lock();
        enable(64);
        {
            let _r = root("req");
            let _c = child("stage");
        }
        disable();
        let records = drain();
        let doc = chrome_trace(&records, TraceClock::Logical);
        let check = validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(check.spans, 2);
        assert_eq!(check.roots, 1);
        let reparsed = crate::json::parse(&doc.to_string()).expect("round-trips");
        assert_eq!(reparsed, doc);
        // Logical clock: ticks are 0..4 regardless of wall time.
        let stage = records.iter().find(|r| r.name == "stage").unwrap();
        assert_eq!((stage.start_tick, stage.end_tick), (1, 2));
    }

    #[test]
    fn validator_rejects_broken_linkage() {
        let doc = crate::json::parse(
            r#"{"traceEvents":[{"ph":"X","pid":1,"tid":0,"name":"x","ts":0,"dur":1,"args":{"span":"s1","parent":"s9"}}]}"#,
        )
        .unwrap();
        assert!(validate_chrome_trace(&doc).is_err());
        let cyclic = crate::json::parse(
            r#"{"traceEvents":[{"ph":"X","pid":1,"tid":0,"name":"x","ts":0,"dur":1,"args":{"span":"s1","parent":"s2"}},{"ph":"X","pid":1,"tid":0,"name":"y","ts":1,"dur":1,"args":{"span":"s2","parent":"s1"}}]}"#,
        )
        .unwrap();
        assert!(validate_chrome_trace(&cyclic)
            .unwrap_err()
            .contains("cycle"));
    }
}
