//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: `Mutex` and `RwLock` with the poison-free `parking_lot` API,
//! implemented over `std::sync`. A poisoned std lock (a writer panicked)
//! is recovered rather than propagated — `parking_lot` locks never
//! poison, and callers here rely on that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose guards never carry poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_serializes_increments() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn locks_recover_from_poisoning() {
        let l = Arc::new(RwLock::new(1));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock stays usable.
        assert_eq!(*l.read(), 1);
    }
}
