//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no registry access, so this crate implements
//! the exact surface the workspace's `tests/props.rs` suites use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for numeric
//!   ranges, tuples (arity ≤ 8), and [`Just`];
//! * [`prop::collection::vec`] and [`prop::collection::btree_map`];
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], and [`prop_assume!`].
//!
//! Semantics deliberately kept from real proptest: each test runs `cases`
//! random cases from a deterministic per-test seed, rejected cases
//! (`prop_assume!`) don't count against the budget (with a global retry
//! cap), and failures report the case number and a reproduction seed.
//! Shrinking is **not** implemented — a failing case is reported as
//! sampled. Set the `PROPTEST_SEED` environment variable to replay a
//! reported seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

pub use rand::RngExt;

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; try another case.
    Reject(String),
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i32, i64, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// One boxed alternative of a [`OneOf`] strategy.
pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// A uniformly chosen alternative among boxed sub-strategies; built by
/// [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
}

impl<V> OneOf<V> {
    /// Composes the given arms (callers use [`prop_oneof!`]).
    pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.random_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use std::collections::BTreeMap;

        /// A strategy for `Vec`s with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// The output of [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A strategy for `BTreeMap`s with sizes drawn from `size`.
        /// Key collisions overwrite, exactly like real proptest, so maps
        /// can come out smaller than the drawn size.
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            BTreeMapStrategy {
                key,
                value,
                size: size.into(),
            }
        }

        /// The output of [`btree_map`].
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                (0..n)
                    .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                    .collect()
            }
        }
    }
}

/// A collection-size specification (`n`, `a..b`, or `a..=b`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a, used to derive a per-test base seed from the test's name so
/// every test explores a different region of input space.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property test: samples and runs cases until `config.cases`
/// accepted cases pass, a case fails, or the rejection budget is
/// exhausted. Called by the expansion of [`proptest!`] — not public API.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base_seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got '{s}'")),
        Err(_) => fnv1a(name.as_bytes()),
    };
    let max_rejects = config.cases as u64 * 16;
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let mut case_index = 0u64;
    while accepted < config.cases {
        let seed = base_seed.wrapping_add(case_index);
        let mut rng = TestRng::seed_from_u64(seed);
        case_index += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property '{name}': too many rejected cases \
                     ({rejected} rejects for {accepted} accepted); \
                     loosen the prop_assume! guards"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{name}' failed at case {accepted} \
                     (replay with PROPTEST_SEED={seed} minus case offset; \
                     direct seed {seed}):\n{msg}"
                );
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&config, stringify!($name), |proptest_rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), proptest_rng);)*
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Chooses uniformly among the listed strategies (all producing the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>> =
            ::std::vec![$({
                let strategy = $arm;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::sample(&strategy, rng)
                })
            }),+];
        $crate::OneOf::new(arms)
    }};
}

/// Asserts a property of the sampled inputs; failure fails the case with
/// its location (and an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("{} at {}:{}", format_args!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format_args!($($fmt)+), l, r
        );
    }};
}

/// Asserts inequality, reporting the shared value on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
        let _ = r;
    }};
}

/// Rejects the current case (does not count as a failure) unless the
/// guard holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..100, 0i64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes((a, b) in arb_pair()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "len = {}", v.len());
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn maps_use_sampled_keys(m in prop::collection::btree_map(0u64..6, 0i64..3, 1..6)) {
            prop_assert!(m.len() <= 5);
            prop_assert!(m.keys().all(|k| *k < 6));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0i64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_just_cover_arms(x in prop_oneof![Just(1u32), Just(2u32), 5u32..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn prop_map_transforms(s in (0u64..5).prop_map(|x| x * 10)) {
            prop_assert!(s % 10 == 0 && s < 50);
        }
    }

    #[test]
    #[should_panic(expected = "property 'failing'")]
    fn failures_panic_with_seed() {
        super::run_proptest(
            &ProptestConfig::with_cases(8),
            "failing",
            |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::Fail("forced".into())) },
        );
    }
}
