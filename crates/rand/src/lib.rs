//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to the crates.io registry, so this
//! workspace vendors a minimal, API-compatible implementation of exactly
//! the surface the other crates use:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++, seeded via SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`RngExt::random_range`] over integer and float ranges
//!   (half-open and inclusive);
//! * [`RngExt::random_bool`].
//!
//! Determinism is a workspace requirement (every experiment is seeded), so
//! the generator is a fixed, well-known algorithm: the same seed always
//! yields the same stream, on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic and portable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range from which a value can be drawn uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Multiply-shift bounded integer in `[0, span)` — unbiased enough for
/// simulation workloads, branch-free, and deterministic.
fn bounded(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience draws, mirroring the `rand` 0.9+ `Rng` extension methods.
pub trait RngExt: RngCore {
    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<T: RngCore> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let j = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&j));
            let f = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let u = rng.random_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!rng.random_bool(0.0));
        assert!(
            rng.random_bool(1.0),
            "p = 1 always hits: unit draw is in [0,1)"
        );
    }
}
