//! Group-commit journal writer.
//!
//! The sharded server funnels every shard's events into **one** hash
//! chain: at each barrier the coordinator merges the workers' event
//! buffers in canonical (submission-position) order into a pending
//! batch, and a commit appends the whole batch through
//! [`hka_obs::Journal::append_batch`] followed by a single
//! flush + fsync ([`hka_obs::DurableJournal::commit`]). Chaining is
//! byte-identical to appending the same events one at a time — the
//! property `verify_chain` and `hka-audit` rely on.
//!
//! Failure semantics adapt the sequential per-event
//! [`RetryPolicy`](hka_core::RetryPolicy) to batches:
//!
//! * a failed `append_batch` leaves the journal's `(seq, prev)` state
//!   untouched, so the batch **stays pending** and the next commit
//!   retries it byte-identically (group commit improves on the
//!   sequential sink here, which drops events during backoff);
//! * each fully-failed commit escalates `failures`; between retries the
//!   sink backs off for `backoff_base << failures` commits (the batch
//!   keeps accumulating, nothing is lost);
//! * at `max_failures` consecutive failed commits the sink is declared
//!   [`JournalHealth::Down`] and pending events are dropped (counted in
//!   `ts.journal_skipped`) until a fresh journal is attached — the
//!   server goes read-only, exactly like the sequential ladder;
//! * an fsync failure after a successful append counts as an error and
//!   escalates, but the batch is *not* retried (the records are already
//!   in the chain; re-appending would duplicate them).

use hka_core::{JournalHealth, RetryPolicy};
use hka_obs::{DurableJournal, Json};

/// The coordinator's journal sink: one durable hash-chained journal fed
/// by batched appends, with retry/backoff/health bookkeeping.
pub(crate) struct GroupCommit {
    journal: DurableJournal,
    policy: RetryPolicy,
    /// Consecutive commits that exhausted every attempt.
    failures: u32,
    /// Commits to skip (batch retained) before the next attempt.
    skip: u64,
    /// Permanently abandoned until a fresh journal is attached.
    down: bool,
}

impl GroupCommit {
    pub fn new(journal: DurableJournal, policy: RetryPolicy) -> Self {
        GroupCommit {
            journal,
            policy,
            failures: 0,
            skip: 0,
            down: false,
        }
    }

    pub fn health(&self) -> JournalHealth {
        if self.down {
            JournalHealth::Down
        } else if self.failures > 0 {
            JournalHealth::Retrying {
                failures: self.failures,
            }
        } else {
            JournalHealth::Healthy
        }
    }

    /// Gives the journal back (for inspection after a run). Whatever is
    /// pending at the caller stays pending.
    pub fn into_journal(self) -> DurableJournal {
        self.journal
    }

    /// The sink's chain position: `(next_seq, head)`. Only meaningful
    /// between commits with an empty pending batch — the coordinator's
    /// checkpoint path enforces that.
    pub fn position(&self) -> (u64, String) {
        (self.journal.next_seq(), self.journal.head().to_string())
    }

    /// Appends one record directly and durably (append + flush + fsync),
    /// bypassing the pending batch and the retry/backoff bookkeeping —
    /// the checkpoint anchor's path. A failure here neither escalates
    /// `failures` nor backs off: the caller (the checkpointer) treats it
    /// as "this checkpoint didn't happen" and the regular event flow's
    /// health ladder is unaffected. Refused while the sink is down.
    pub fn append_now(&mut self, kind: &str, payload: Json) -> std::io::Result<u64> {
        if self.down {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "journal sink is down",
            ));
        }
        let seq = self.journal.append(kind, payload)?;
        self.journal.commit()?;
        Ok(seq)
    }

    /// Attempts to commit the pending batch: one `append_batch` per
    /// attempt, then a single flush + fsync. On success `pending` is
    /// cleared; on append failure it is retained for a byte-identical
    /// retry at a later commit.
    pub fn commit(&mut self, pending: &mut Vec<(String, Json)>) {
        let metrics = hka_obs::global();
        // Group commits batch many requests, so the span is its own
        // root rather than a child of any one trace. Minted through the
        // same unconditional counter as request roots, keeping trace-id
        // allocation identical with collection on and off.
        let mut span = hka_obs::trace::root_detached("shard.group_commit");
        span.attr("batch", Json::from(pending.len() as u64));
        if self.down {
            if !pending.is_empty() {
                metrics
                    .counter("ts.journal_skipped")
                    .add(pending.len() as u64);
                pending.clear();
            }
            return;
        }
        if pending.is_empty() {
            return;
        }
        if self.skip > 0 {
            // Backoff window: the batch keeps accumulating.
            self.skip -= 1;
            return;
        }
        let attempts = self.policy.attempts.max(1);
        for attempt in 0..attempts {
            match self.journal.append_batch(pending) {
                Ok(_) => {
                    let synced = self.journal.commit().is_ok();
                    metrics
                        .counter("ts.journal_committed")
                        .add(pending.len() as u64);
                    metrics.counter("ts.journal_commits").incr();
                    pending.clear();
                    if synced {
                        if self.failures > 0 {
                            metrics.counter("ts.journal_recoveries").incr();
                        }
                        self.failures = 0;
                    } else {
                        // Appended but not durably synced: escalate, but
                        // never re-append (the chain has advanced).
                        metrics.counter("ts.journal_errors").incr();
                        self.escalate();
                    }
                    return;
                }
                Err(_) => {
                    metrics.counter("ts.journal_errors").incr();
                    if attempt + 1 < attempts {
                        metrics.counter("ts.journal_retries").incr();
                    }
                }
            }
        }
        // Every attempt failed: the batch stays pending; escalate.
        self.escalate();
        if self.down && !pending.is_empty() {
            metrics
                .counter("ts.journal_skipped")
                .add(pending.len() as u64);
            pending.clear();
        }
    }

    fn escalate(&mut self) {
        self.failures += 1;
        if self.failures >= self.policy.max_failures {
            self.down = true;
        } else {
            self.skip = self.policy.backoff_base << self.failures;
        }
    }
}

impl std::fmt::Debug for GroupCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommit")
            .field("next_seq", &self.journal.next_seq())
            .field("health", &self.health())
            .finish()
    }
}
