//! # hka-shard
//!
//! A sharded frontend for the paper's Trusted Server: users are
//! hash-partitioned across N worker shards, each owning the
//! `TrustedServer`-style per-user state (pseudonym, privacy profile,
//! LBQID monitors, pattern bookkeeping) and a partition of the PHL
//! store + grid index for its users.
//!
//! ## Execution model: canonical-order phases
//!
//! Events are submitted with a global **position** (their submission
//! order) and classified:
//!
//! * **parallel-safe** — location ingests, and requests whose effective
//!   privacy is *off* for the addressed service (the exact-forward
//!   path): these touch only the issuing user's shard, so consecutive
//!   runs of them execute concurrently, one `std::thread::scope` worker
//!   per shard, each shard replaying its slice in position order;
//! * **serialization points** — every protected (pattern-matching)
//!   request, and *all* events once a fault plan is attached or a
//!   randomizer is configured: the scheduler drains the parallel stage
//!   to quiescence (a **barrier**, which is also the epoch tick that
//!   publishes a fresh read snapshot), commits the journal, and runs
//!   the event on the coordinator against the union of all shards.
//!
//! Cross-shard reads on the serialized path go through
//! [`IndexSnapshot`](hka_trajectory::IndexSnapshot) — an immutable
//! epoch snapshot over the per-shard indices whose merged k-candidate
//! answer is bit-identical to a single index (shards partition users
//! disjointly). This is what keeps Algorithm 1's anonymity sets exact:
//! a snapshot that lagged ingests could only *shrink* candidate sets
//! (fail-closed), never inflate them, but the barrier-published
//! snapshot has zero lag and the differential tests pin byte equality.
//!
//! ## Group-commit journal
//!
//! All shards' events funnel into **one** hash chain: workers buffer
//! `(position, event)` pairs, the barrier merges them in canonical
//! order, and a commit appends the whole batch with a single
//! flush + fsync (see [`crate::commit`]'s module docs in the source for
//! the batched retry semantics). `verify_chain` and `hka-audit` accept
//! the result unchanged — batching alters durability cadence, not one
//! byte of the chain.
//!
//! ## Equivalence contract
//!
//! For every shard count, [`ShardedTs`] produces **identical per-user
//! outcomes** to the sequential [`TrustedServer`](hka_core::TrustedServer)
//! run over the same submissions: outcome kind, forwarded context box,
//! service, suppression reason, per-user event order, and canonical
//! global event order all match. Message ids and pseudonyms come from
//! disjoint per-shard id spaces (shard *i* allocates
//! `((i+1) << 48) | n`), so their *values* differ unless every event
//! serializes — with a fault plan or randomizer attached the sharded
//! server replays the sequential id allocation exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commit;
mod serial;
mod worker;

use crate::commit::GroupCommit;
use crate::serial::{shard_of, Coordinator, SerialHost};
use crate::worker::{ShardState, Work, WorkKind};
use hka_anonymity::{historical_k_anonymity, HkOutcome, MsgId, Pseudonym, ServiceId, SpRequest};
use hka_core::strategy::{self, PatternState, UserState};
use hka_core::{
    EventLog, JournalHealth, PrivacyIndicator, PrivacyLevel, RequestOutcome, RetryPolicy,
    ServerMode, Tolerance, TsConfig, TsError, TsStats,
};
use hka_faults::FaultInjector;
use hka_geo::{Rect, StBox, StPoint};
use hka_lbqid::{Lbqid, Monitor};
use hka_obs::DurableJournal;
use hka_trajectory::{TrajectoryStore, UserId};
use std::collections::{BTreeMap, BTreeSet};

/// Classification metadata the scheduler keeps outside the shards, so
/// submissions can be routed without touching (possibly busy) worker
/// state: whether privacy is on at registration, and per-service
/// overrides.
#[derive(Debug, Clone)]
struct PrivacyMeta {
    base_on: bool,
    overrides: BTreeMap<ServiceId, bool>,
}

impl PrivacyMeta {
    fn on_for(&self, service: ServiceId) -> bool {
        *self.overrides.get(&service).unwrap_or(&self.base_on)
    }
}

/// A submitted, not-yet-executed event.
#[derive(Debug, Clone)]
enum Submitted {
    Location {
        pos: u64,
        user: UserId,
        at: StPoint,
    },
    Request {
        pos: u64,
        user: UserId,
        at: StPoint,
        service: ServiceId,
    },
}

/// The sharded Trusted Server frontend. See the crate docs for the
/// execution model; the API is submission-based — queue events with
/// [`ShardedTs::submit_location`] / [`ShardedTs::submit_request`], run
/// them with [`ShardedTs::flush`], and collect request outcomes (tagged
/// with their submission position) via [`ShardedTs::take_outcomes`].
pub struct ShardedTs {
    shards: Vec<ShardState>,
    co: Coordinator,
    registered: BTreeSet<UserId>,
    privacy: BTreeMap<UserId, PrivacyMeta>,
    queue: Vec<Submitted>,
    outcomes: Vec<(u64, UserId, Result<RequestOutcome, TsError>)>,
    next_pos: u64,
    epoch: u64,
    parallel_threshold: usize,
}

impl ShardedTs {
    /// Creates an empty sharded TS with `shards` worker partitions
    /// (clamped to at least 1).
    pub fn new(config: TsConfig, shards: usize) -> Self {
        let n = shards.max(1);
        // On a single-core host worker threads cannot overlap; spawning
        // them per barrier is pure overhead, so default to inline
        // execution there (results are identical either way — the
        // differential tests force the threaded path explicitly).
        let single_core = std::thread::available_parallelism()
            .map(|p| p.get() == 1)
            .unwrap_or(false);
        ShardedTs {
            shards: (0..n).map(|i| ShardState::new(i, &config)).collect(),
            co: Coordinator::new(config),
            registered: BTreeSet::new(),
            privacy: BTreeMap::new(),
            queue: Vec::new(),
            outcomes: Vec::new(),
            next_pos: 0,
            epoch: 0,
            parallel_threshold: if single_core { usize::MAX } else { 64 },
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// How many epochs (barrier publications of a fresh read snapshot)
    /// have elapsed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Minimum staged batch size before the scheduler spawns worker
    /// threads; smaller batches run inline (thread spawn costs more
    /// than it saves). One-shard servers always run inline. Pass `0` to
    /// force the threaded path, `usize::MAX` to always run inline (the
    /// default on single-core hosts).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold;
    }

    // ------------------------------------------------------------------
    // Setup (serial; drains any queued events first).
    // ------------------------------------------------------------------

    /// Registers a user; returns the initial pseudonym (allocated from
    /// the coordinator's id space, matching the sequential server).
    ///
    /// # Panics
    /// On the same conditions as the sequential
    /// [`register_user`](hka_core::TrustedServer::register_user).
    pub fn register_user(&mut self, user: UserId, level: PrivacyLevel) -> Pseudonym {
        match self.try_register_user(user, level) {
            Ok(p) => p,
            Err(TsError::DuplicateUser(u)) => panic!("user {u} registered twice"),
            Err(e) => panic!("register_user({user}) failed: {e}"),
        }
    }

    /// Fallible registration; refused with [`TsError::Degraded`] while
    /// read-only.
    pub fn try_register_user(
        &mut self,
        user: UserId,
        level: PrivacyLevel,
    ) -> Result<Pseudonym, TsError> {
        self.flush();
        if self.co.mode == ServerMode::ReadOnly {
            return Err(TsError::Degraded);
        }
        let params = level.params();
        if let Some(p) = &params {
            p.validate().map_err(TsError::InvalidParams)?;
        }
        if self.registered.contains(&user) {
            return Err(TsError::DuplicateUser(user));
        }
        let pseudonym = Pseudonym(self.co.next_pseudonym);
        self.co.next_pseudonym += 1;
        let sid = shard_of(self.shards.len(), user);
        let shard = &mut self.shards[sid];
        shard.users.insert(user, UserState::new(pseudonym, params));
        shard.store.ensure_user(user);
        self.registered.insert(user);
        self.privacy.insert(
            user,
            PrivacyMeta {
                base_on: params.is_some(),
                overrides: BTreeMap::new(),
            },
        );
        Ok(pseudonym)
    }

    /// Attaches an LBQID to a user.
    ///
    /// # Panics
    /// If the user is unknown or the server is read-only.
    pub fn add_lbqid(&mut self, user: UserId, lbqid: Lbqid) {
        if let Err(e) = self.try_add_lbqid(user, lbqid) {
            panic!("add_lbqid({user}) failed: {e}");
        }
    }

    /// Fallible variant of [`ShardedTs::add_lbqid`].
    pub fn try_add_lbqid(&mut self, user: UserId, lbqid: Lbqid) -> Result<(), TsError> {
        self.flush();
        if self.co.mode == ServerMode::ReadOnly {
            return Err(TsError::Degraded);
        }
        let sid = shard_of(self.shards.len(), user);
        let shard = &mut self.shards[sid];
        let st = shard
            .users
            .get_mut(&user)
            .ok_or(TsError::UnknownUser(user))?;
        st.monitors.push(Monitor::new(lbqid));
        st.patterns.push(PatternState::default());
        Ok(())
    }

    /// Sets a per-service privacy override for a user.
    pub fn set_service_privacy(
        &mut self,
        user: UserId,
        service: ServiceId,
        level: PrivacyLevel,
    ) -> Result<(), TsError> {
        self.flush();
        if self.co.mode == ServerMode::ReadOnly {
            return Err(TsError::Degraded);
        }
        let params = level.params();
        if let Some(p) = &params {
            p.validate().map_err(TsError::InvalidParams)?;
        }
        let sid = shard_of(self.shards.len(), user);
        let shard = &mut self.shards[sid];
        let state = shard
            .users
            .get_mut(&user)
            .ok_or(TsError::UnknownUser(user))?;
        state.overrides.insert(service, params);
        self.privacy
            .get_mut(&user)
            .expect("privacy metadata tracks registration")
            .overrides
            .insert(service, params.is_some());
        Ok(())
    }

    /// Registers a service's tolerance constraints (replicated to every
    /// shard — the strategy resolves the tolerance on both paths).
    pub fn register_service(&mut self, service: ServiceId, tolerance: Tolerance) {
        self.flush();
        self.co.services.insert(service, tolerance);
        for shard in &mut self.shards {
            shard.services.insert(service, tolerance);
        }
    }

    /// Adds a static mix-zone (replicated to every shard for crossing
    /// detection on the parallel ingest path).
    pub fn add_static_mixzone(&mut self, zone: Rect) {
        self.flush();
        self.co.mixzones.add_static_zone(zone);
        for shard in &mut self.shards {
            shard.static_zones.push(zone);
        }
    }

    /// Attaches a fault-injection plan. Faults make every event a
    /// serialization point: the shared plan's triggers (`Once`,
    /// `EveryNth`, windows) must observe the exact sequential order of
    /// site checks, so the scheduler stops running anything in parallel.
    pub fn attach_faults(&mut self, injector: FaultInjector) {
        self.flush();
        for shard in &mut self.shards {
            shard.injector = injector.clone();
        }
        self.co.injector = injector;
        self.co.serialize_all = true;
    }

    /// Routes every logged event into a durable hash-chained journal
    /// via group commit (default [`RetryPolicy`]). Returns the previous
    /// journal, if any. A fresh sink is healthy, so a degraded server
    /// returns to [`ServerMode::Normal`].
    pub fn attach_journal(&mut self, journal: DurableJournal) -> Option<DurableJournal> {
        self.attach_journal_with(journal, RetryPolicy::default())
    }

    /// Like [`ShardedTs::attach_journal`] with an explicit retry policy.
    pub fn attach_journal_with(
        &mut self,
        journal: DurableJournal,
        policy: RetryPolicy,
    ) -> Option<DurableJournal> {
        self.flush();
        // Give the outgoing sink a last chance at the pending batch;
        // whatever it cannot take carries over to the fresh journal.
        let previous = self.co.journal.take().map(|mut old| {
            old.commit(&mut self.co.pending);
            old.into_journal()
        });
        self.co.journal = Some(GroupCommit::new(journal, policy));
        self.co.sync_mode();
        previous
    }

    /// Runs any queued events and commits the pending journal batch
    /// (flush + fsync). Errors surface through the health ladder rather
    /// than this result, mirroring the sequential
    /// [`flush_journal`](hka_core::TrustedServer::flush_journal).
    pub fn flush_journal(&mut self) -> std::io::Result<()> {
        self.flush();
        self.co.commit();
        Ok(())
    }

    /// Detaches and returns the journal after committing what's pending.
    pub fn take_journal(&mut self) -> Option<DurableJournal> {
        self.flush();
        self.co.commit();
        let taken = self.co.journal.take().map(GroupCommit::into_journal);
        self.co.sync_mode();
        taken
    }

    // ------------------------------------------------------------------
    // Submission API.
    // ------------------------------------------------------------------

    /// Queues a location update; returns its canonical position.
    pub fn submit_location(&mut self, user: UserId, at: StPoint) -> u64 {
        let pos = self.next_pos;
        self.next_pos += 1;
        self.queue.push(Submitted::Location { pos, user, at });
        pos
    }

    /// Queues a service request; returns its canonical position (the
    /// key into [`ShardedTs::take_outcomes`]).
    pub fn submit_request(&mut self, user: UserId, at: StPoint, service: ServiceId) -> u64 {
        let pos = self.next_pos;
        self.next_pos += 1;
        self.queue.push(Submitted::Request {
            pos,
            user,
            at,
            service,
        });
        pos
    }

    /// Runs every queued event through the phase scheduler and commits
    /// the journal.
    pub fn flush(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let q = std::mem::take(&mut self.queue);
        let n = self.shards.len();
        let mut staged: Vec<Vec<Work>> = (0..n).map(|_| Vec::new()).collect();
        let mut staged_count = 0usize;
        for ev in q {
            match ev {
                Submitted::Location { pos, user, at } => {
                    if self.co.serialize_all {
                        self.run_barrier(&mut staged, &mut staged_count);
                        self.run_serial_location(user, at);
                    } else {
                        staged[shard_of(n, user)].push(Work {
                            pos,
                            user,
                            kind: WorkKind::Location { at },
                        });
                        staged_count += 1;
                    }
                }
                Submitted::Request {
                    pos,
                    user,
                    at,
                    service,
                } => {
                    if !self.registered.contains(&user) {
                        // The sequential server counts the request
                        // before rejecting it; keep totals identical.
                        let _span = hka_obs::span("ts.handle_request");
                        hka_obs::global().counter("ts.requests").incr();
                        self.outcomes
                            .push((pos, user, Err(TsError::UnknownUser(user))));
                    } else if !self.co.serialize_all
                        && !self.privacy[&user].on_for(service)
                    {
                        staged[shard_of(n, user)].push(Work {
                            pos,
                            user,
                            kind: WorkKind::Request { at, service },
                        });
                        staged_count += 1;
                    } else {
                        self.run_barrier(&mut staged, &mut staged_count);
                        // Serial requests consult the mode ladder, so
                        // they must see a freshly committed health.
                        self.co.commit();
                        self.run_serial_request(pos, user, at, service);
                    }
                }
            }
        }
        self.run_barrier(&mut staged, &mut staged_count);
        self.co.commit();
    }

    /// Flushes and returns all collected request outcomes, ordered by
    /// canonical position.
    pub fn take_outcomes(&mut self) -> Vec<(u64, UserId, Result<RequestOutcome, TsError>)> {
        self.flush();
        let mut out = std::mem::take(&mut self.outcomes);
        out.sort_by_key(|(pos, _, _)| *pos);
        out
    }

    /// Convenience: submit one request, flush, and return its outcome —
    /// the sharded analogue of the sequential
    /// [`try_handle_request`](hka_core::TrustedServer::try_handle_request).
    pub fn request_now(
        &mut self,
        user: UserId,
        at: StPoint,
        service: ServiceId,
    ) -> Result<RequestOutcome, TsError> {
        let pos = self.submit_request(user, at, service);
        self.flush();
        let idx = self
            .outcomes
            .iter()
            .position(|(p, _, _)| *p == pos)
            .expect("flush records an outcome for every request");
        self.outcomes.remove(idx).2
    }

    /// Convenience: submit one location update and flush.
    pub fn location_update(&mut self, user: UserId, at: StPoint) {
        self.submit_location(user, at);
        self.flush();
    }

    // ------------------------------------------------------------------
    // Phase execution.
    // ------------------------------------------------------------------

    /// Drains the staged parallel work to quiescence and publishes a
    /// new epoch: workers run their slices (threaded above the inline
    /// threshold), then the coordinator merges events, outcomes, and
    /// outbox entries back into canonical order.
    fn run_barrier(&mut self, staged: &mut [Vec<Work>], staged_count: &mut usize) {
        if *staged_count == 0 {
            return;
        }
        let total = *staged_count;
        *staged_count = 0;
        for shard in &mut self.shards {
            shard.mode = self.co.mode;
        }
        if self.shards.len() == 1 || total < self.parallel_threshold {
            for (sid, work) in staged.iter_mut().enumerate() {
                if work.is_empty() {
                    continue;
                }
                self.shards[sid].run(std::mem::take(work));
            }
        } else {
            std::thread::scope(|scope| {
                for (shard, work) in self.shards.iter_mut().zip(staged.iter_mut()) {
                    if work.is_empty() {
                        continue;
                    }
                    let batch = std::mem::take(work);
                    scope.spawn(move || shard.run(batch));
                }
            });
        }
        self.epoch += 1;
        self.merge_worker_buffers();
    }

    /// Merges the workers' per-batch buffers back into global state in
    /// canonical (position, emission-index) order, so the ring, the
    /// journal batch, and the outbox are indistinguishable from a
    /// sequential execution.
    fn merge_worker_buffers(&mut self) {
        let mut events = Vec::new();
        let mut outs = Vec::new();
        for shard in &mut self.shards {
            events.append(&mut shard.events_buf);
            outs.append(&mut shard.outbox_buf);
            for (pos, user, outcome) in shard.outcomes_buf.drain(..) {
                self.outcomes.push((pos, user, Ok(outcome)));
            }
        }
        events.sort_by_key(|&(pos, idx, _, _)| (pos, idx));
        for (_, _, e, at) in events {
            self.co.emit_event(e, at);
        }
        outs.sort_by_key(|(pos, _, _)| *pos);
        for (_, user, req) in outs {
            self.co.routes.insert(req.msg_id, user);
            self.co.outbox.push((user, req));
        }
    }

    fn run_serial_location(&mut self, user: UserId, at: StPoint) {
        let sid = shard_of(self.shards.len(), user);
        let state = self.shards[sid].users.remove(&user);
        let mut host = SerialHost {
            co: &mut self.co,
            shards: &mut self.shards,
        };
        match state {
            Some(mut st) => {
                strategy::location_update_on(&mut host, user, &mut st, at);
                self.shards[sid].users.insert(user, st);
            }
            None => {
                // Unregistered users are still observed by the
                // positioning infrastructure (sequential behaviour).
                strategy::ingest_on(&mut host, user, at);
            }
        }
    }

    fn run_serial_request(&mut self, pos: u64, user: UserId, at: StPoint, service: ServiceId) {
        let _span = hka_obs::span("ts.handle_request");
        hka_obs::global().counter("ts.requests").incr();
        let sid = shard_of(self.shards.len(), user);
        let Some(mut state) = self.shards[sid].users.remove(&user) else {
            self.outcomes
                .push((pos, user, Err(TsError::UnknownUser(user))));
            return;
        };
        let mut host = SerialHost {
            co: &mut self.co,
            shards: &mut self.shards,
        };
        let outcome = strategy::handle_request_on(&mut host, user, &mut state, at, service);
        self.shards[sid].users.insert(user, state);
        self.outcomes.push((pos, user, Ok(outcome)));
    }

    // ------------------------------------------------------------------
    // Introspection (reflects flushed events only).
    // ------------------------------------------------------------------

    /// The user's current pseudonym.
    pub fn pseudonym_of(&self, user: UserId) -> Option<Pseudonym> {
        self.shards[shard_of(self.shards.len(), user)]
            .users
            .get(&user)
            .map(|s| s.pseudonym)
    }

    /// Whether the user has an unresolved at-risk notification.
    pub fn is_at_risk(&self, user: UserId) -> bool {
        self.shards[shard_of(self.shards.len(), user)]
            .users
            .get(&user)
            .is_some_and(|s| s.at_risk)
    }

    /// The lock-style privacy indicator, or `None` for unknown users.
    pub fn privacy_indicator(&self, user: UserId) -> Option<PrivacyIndicator> {
        let state = self.shards[shard_of(self.shards.len(), user)]
            .users
            .get(&user)?;
        Some(if state.params.is_none() {
            PrivacyIndicator::Off
        } else if state.at_risk {
            PrivacyIndicator::AtRisk
        } else {
            PrivacyIndicator::Locked
        })
    }

    /// The decision log (ring + exact statistics, canonical order).
    pub fn log(&self) -> &EventLog {
        &self.co.log
    }

    /// The exact aggregate statistics.
    pub fn stats(&self) -> TsStats {
        self.co.log.stats()
    }

    /// The server's current operating mode.
    pub fn mode(&self) -> ServerMode {
        self.co.mode
    }

    /// Health of the group-commit journal sink.
    pub fn journal_health(&self) -> JournalHealth {
        self.co.journal_health()
    }

    /// Everything forwarded so far, with ground-truth issuers, in
    /// canonical order.
    pub fn outbox(&self) -> &[(UserId, SpRequest)] {
        &self.co.outbox
    }

    /// Provider view: the bare request stream.
    pub fn provider_view(&self) -> Vec<SpRequest> {
        self.co.outbox.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Routes a provider's answer back to the issuing user.
    pub fn route_response(&self, msg_id: MsgId) -> Option<UserId> {
        self.co.routes.get(&msg_id).copied()
    }

    /// A single store holding every shard's PHLs — the global view for
    /// audits and experiments.
    pub fn merged_store(&self) -> TrajectoryStore {
        TrajectoryStore::merged(self.shards.iter().map(|s| &s.store))
    }

    /// Per-LBQID audit, as the sequential
    /// [`audit_patterns`](hka_core::TrustedServer::audit_patterns):
    /// pattern name, full-match flag, and the audited historical
    /// k-anonymity of the forwarded contexts (over the merged store).
    pub fn audit_patterns(&self, user: UserId, k: usize) -> Vec<(String, bool, HkOutcome)> {
        let shard = &self.shards[shard_of(self.shards.len(), user)];
        let Some(state) = shard.users.get(&user) else {
            return Vec::new();
        };
        let store = self.merged_store();
        state
            .monitors
            .iter()
            .zip(&state.patterns)
            .map(|(m, p)| {
                (
                    m.lbqid().name().to_owned(),
                    m.is_fully_matched(),
                    historical_k_anonymity(&store, user, &p.contexts, k),
                )
            })
            .collect()
    }

    /// The generalized contexts forwarded for each of the user's
    /// patterns under the current pseudonym.
    pub fn pattern_contexts(&self, user: UserId) -> Vec<(String, Vec<StBox>)> {
        let shard = &self.shards[shard_of(self.shards.len(), user)];
        let Some(state) = shard.users.get(&user) else {
            return Vec::new();
        };
        state
            .monitors
            .iter()
            .zip(&state.patterns)
            .map(|(m, p)| (m.lbqid().name().to_owned(), p.contexts.clone()))
            .collect()
    }

    /// A point-in-time snapshot of the process-wide metrics registry.
    pub fn metrics_snapshot(&self) -> hka_obs::MetricsSnapshot {
        hka_obs::global().snapshot()
    }
}

impl std::fmt::Debug for ShardedTs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTs")
            .field("shards", &self.shards.len())
            .field("users", &self.registered.len())
            .field("epoch", &self.epoch)
            .field("mode", &self.co.mode)
            .finish()
    }
}
