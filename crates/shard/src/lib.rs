//! # hka-shard
//!
//! A sharded frontend for the paper's Trusted Server: users are
//! hash-partitioned across N worker shards, each owning the
//! `TrustedServer`-style per-user state (pseudonym, privacy profile,
//! LBQID monitors, pattern bookkeeping) and a partition of the PHL
//! store + grid index for its users.
//!
//! ## Execution model: canonical-order phases
//!
//! Events are submitted with a global **position** (their submission
//! order) and classified:
//!
//! * **parallel-safe** — location ingests, and requests whose effective
//!   privacy is *off* for the addressed service (the exact-forward
//!   path): these touch only the issuing user's shard, so consecutive
//!   runs of them execute concurrently, one `std::thread::scope` worker
//!   per shard, each shard replaying its slice in position order;
//! * **serialization points** — every protected (pattern-matching)
//!   request, and *all* events once a fault plan is attached or a
//!   randomizer is configured: the scheduler drains the parallel stage
//!   to quiescence (a **barrier**, which is also the epoch tick that
//!   publishes a fresh read snapshot), commits the journal, and runs
//!   the event on the coordinator against the union of all shards.
//!
//! Cross-shard reads on the serialized path go through
//! [`IndexSnapshot`](hka_trajectory::IndexSnapshot) — an immutable
//! epoch snapshot over the per-shard indices whose merged k-candidate
//! answer is bit-identical to a single index (shards partition users
//! disjointly). This is what keeps Algorithm 1's anonymity sets exact:
//! a snapshot that lagged ingests could only *shrink* candidate sets
//! (fail-closed), never inflate them, but the barrier-published
//! snapshot has zero lag and the differential tests pin byte equality.
//!
//! ## Group-commit journal
//!
//! All shards' events funnel into **one** hash chain: workers buffer
//! `(position, event)` pairs, the barrier merges them in canonical
//! order, and a commit appends the whole batch with a single
//! flush + fsync (see [`crate::commit`]'s module docs in the source for
//! the batched retry semantics). `verify_chain` and `hka-audit` accept
//! the result unchanged — batching alters durability cadence, not one
//! byte of the chain.
//!
//! ## Equivalence contract
//!
//! For every shard count, [`ShardedTs`] produces **identical per-user
//! outcomes** to the sequential [`TrustedServer`](hka_core::TrustedServer)
//! run over the same submissions: outcome kind, forwarded context box,
//! service, suppression reason, per-user event order, and canonical
//! global event order all match. Message ids and pseudonyms come from
//! disjoint per-shard id spaces (shard *i* allocates
//! `((i+1) << 48) | n`), so their *values* differ unless every event
//! serializes — with a fault plan or randomizer attached the sharded
//! server replays the sequential id allocation exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commit;
mod serial;
mod worker;

use crate::commit::GroupCommit;
use crate::serial::{shard_of, Coordinator, SerialHost};
use crate::worker::{ShardState, Work, WorkKind};
use hka_anonymity::{historical_k_anonymity, HkOutcome, MsgId, Pseudonym, ServiceId, SpRequest};
use hka_core::checkpoint::{
    stats_to_json, AUDIT_SECTION, SERVER_SECTION, STATS_SECTION, STORE_SECTION,
};
use hka_core::strategy::{self, PatternState, UserState};
use hka_core::{
    CheckpointReceipt, Checkpointer, EventLog, JournalHealth, PrivacyIndicator, PrivacyLevel,
    RequestOutcome, RetryPolicy, ServerMeta, ServerMode, Tolerance, TsConfig, TsError, TsStats,
    UserMeta,
};
use hka_faults::{sites, FaultInjector};
use hka_geo::{Rect, StBox, StPoint};
use hka_lbqid::{Lbqid, Monitor};
use hka_obs::checkpoint::{anchor_payload, Snapshot};
use hka_obs::{DurableJournal, CHECKPOINT_KIND};
use hka_trajectory::{TrajectoryStore, UserId};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Classification metadata the scheduler keeps outside the shards, so
/// submissions can be routed without touching (possibly busy) worker
/// state: whether privacy is on at registration, and per-service
/// overrides.
#[derive(Debug, Clone)]
struct PrivacyMeta {
    base_on: bool,
    overrides: BTreeMap<ServiceId, bool>,
}

impl PrivacyMeta {
    fn on_for(&self, service: ServiceId) -> bool {
        *self.overrides.get(&service).unwrap_or(&self.base_on)
    }
}

/// Per-request tracing/SLO bookkeeping: the deferred root span opened
/// at submission (kept open across the whole flush while children run
/// on worker threads) and the submission instant for latency samples.
#[derive(Debug)]
struct ReqMeta {
    root: hka_obs::trace::ActiveSpan,
    started: Instant,
}

/// A submitted, not-yet-executed event.
#[derive(Debug, Clone, Copy)]
enum Submitted {
    Location {
        pos: u64,
        user: UserId,
        at: StPoint,
    },
    Request {
        pos: u64,
        user: UserId,
        at: StPoint,
        service: ServiceId,
    },
}

/// The sharded Trusted Server frontend. See the crate docs for the
/// execution model; the API is submission-based — queue events with
/// [`ShardedTs::submit_location`] / [`ShardedTs::submit_request`], run
/// them with [`ShardedTs::flush`], and collect request outcomes (tagged
/// with their submission position) via [`ShardedTs::take_outcomes`].
pub struct ShardedTs {
    shards: Vec<ShardState>,
    co: Coordinator,
    registered: BTreeSet<UserId>,
    privacy: BTreeMap<UserId, PrivacyMeta>,
    queue: Vec<Submitted>,
    outcomes: Vec<(u64, UserId, Result<RequestOutcome, TsError>)>,
    /// Open request roots keyed by position; populated at submission
    /// while tracing or the SLO watchdog is on, finished at the end of
    /// the flush in position order.
    req_meta: BTreeMap<u64, ReqMeta>,
    slo: Option<hka_obs::SloMonitor>,
    next_pos: u64,
    epoch: u64,
    parallel_threshold: usize,
    /// Submission position → `(req_id, trace)` of envelopes submitted
    /// through the [`RequestService`] seam, consumed by `drain`.
    svc_pending: BTreeMap<u64, (u64, u64)>,
}

impl ShardedTs {
    /// Creates an empty sharded TS with `shards` worker partitions
    /// (clamped to at least 1).
    pub fn new(config: TsConfig, shards: usize) -> Self {
        let n = shards.max(1);
        // On a single-core host worker threads cannot overlap; spawning
        // them per barrier is pure overhead, so default to inline
        // execution there (results are identical either way — the
        // differential tests force the threaded path explicitly).
        let single_core = std::thread::available_parallelism()
            .map(|p| p.get() == 1)
            .unwrap_or(false);
        ShardedTs {
            shards: (0..n).map(|i| ShardState::new(i, &config)).collect(),
            co: Coordinator::new(config, n),
            registered: BTreeSet::new(),
            privacy: BTreeMap::new(),
            queue: Vec::new(),
            outcomes: Vec::new(),
            req_meta: BTreeMap::new(),
            // Rolling windows are telemetry, not durable state: restore
            // paths start with the watchdog off, like the sequential
            // server.
            slo: None,
            next_pos: 0,
            epoch: 0,
            parallel_threshold: if single_core { usize::MAX } else { 64 },
            svc_pending: BTreeMap::new(),
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// How many epochs (barrier publications of a fresh read snapshot)
    /// have elapsed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Minimum staged batch size before the scheduler spawns worker
    /// threads; smaller batches run inline (thread spawn costs more
    /// than it saves). One-shard servers always run inline. Pass `0` to
    /// force the threaded path, `usize::MAX` to always run inline (the
    /// default on single-core hosts).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold;
    }

    /// Toggles the incrementally maintained union index on the
    /// protected-request path. On (the default), Algorithm 1's global
    /// k-candidate query runs against one owned index kept current by
    /// per-epoch shard deltas; off, every protected request re-unions
    /// the per-shard indices through an
    /// [`IndexSnapshot`](hka_trajectory::IndexSnapshot) — the
    /// pre-incremental baseline the benches and differential tests
    /// compare against. Answers are identical either way; only the cost
    /// profile changes.
    pub fn set_incremental_index(&mut self, on: bool) {
        self.flush();
        if !on {
            self.co.union.invalidate();
        }
        self.co.incremental_index = on;
    }

    /// Whether the protected-request path uses the incremental union.
    pub fn incremental_index(&self) -> bool {
        self.co.incremental_index
    }

    /// The union index generation stamp — bumps on every index mutation
    /// or invalidation, so a reading across a compaction can prove the
    /// snapshot it used was discarded.
    pub fn union_generation(&self) -> u64 {
        self.co.union.generation()
    }

    /// Folds PHL points older than the policy cutoff on **every shard**
    /// (the sharded analogue of
    /// [`compact_history`](hka_core::TrustedServer::compact_history)):
    /// drains the queue to quiescence, compacts each shard's store,
    /// rebuilds each shard's index over its folded partition, and
    /// **invalidates the union index** — a removal is exactly what the
    /// insert-only delta stream cannot express, so any snapshot
    /// generation spanning the compaction is discarded and the next
    /// protected request rebuilds from the folded stores.
    ///
    /// When a journal is attached, one deterministic `ts.compaction`
    /// chain record (fields: `at`, `dropped`, `kept`) is appended
    /// durably via the group-commit sink — auditors tolerate the extra
    /// kind, and the payload is independent of shard count and of the
    /// incremental-index toggle, so equivalence comparisons across
    /// configurations stay byte-for-byte.
    pub fn compact_history(
        &mut self,
        now: hka_geo::TimeSec,
        policy: &hka_trajectory::CompactionPolicy,
    ) -> hka_trajectory::CompactionStats {
        self.flush();
        let mut total = hka_trajectory::CompactionStats::default();
        for shard in &mut self.shards {
            let stats = shard.store.compact(now, policy);
            shard.index = self
                .co
                .config
                .backend
                .build(&shard.store, self.co.config.index);
            total.absorb(stats);
        }
        self.co.union.invalidate();
        let metrics = hka_obs::global();
        metrics.counter("ts.compactions").incr();
        metrics
            .counter("ts.compacted_points")
            .add(total.points_dropped());
        if let Some(sink) = &mut self.co.journal {
            let kept: u64 = self
                .shards
                .iter()
                .map(|s| s.store.total_points() as u64)
                .sum();
            let payload = hka_obs::Json::obj([
                ("at", hka_obs::Json::from(now.0)),
                ("dropped", hka_obs::Json::from(total.points_dropped())),
                ("kept", hka_obs::Json::from(kept)),
            ]);
            // Best-effort durability: a down sink already has the mode
            // ladder degraded; the compaction itself must not be undone.
            let _ = sink.append_now("ts.compaction", payload);
        }
        self.co.sync_mode();
        total
    }

    /// Turns on the continuous SLO watchdog: every flushed request feeds
    /// a rolling window, and threshold transitions emit
    /// `ts.slo_breach` / `ts.slo_recovered` journal events — exactly the
    /// sequential [`enable_slo`](hka_core::TrustedServer::enable_slo).
    pub fn enable_slo(&mut self, config: hka_obs::SloConfig) {
        self.slo = Some(hka_obs::SloMonitor::new(config));
    }

    /// The worst-latency request in the SLO window, as
    /// `(trace id, latency µs)`; `None` when the watchdog is off or the
    /// window is empty.
    pub fn slo_worst(&self) -> Option<(u64, u64)> {
        self.slo.as_ref()?.worst().map(|(t, us)| (t.0, us))
    }

    // ------------------------------------------------------------------
    // Setup (serial; drains any queued events first).
    // ------------------------------------------------------------------

    /// Registers a user; returns the initial pseudonym (allocated from
    /// the coordinator's id space, matching the sequential server).
    ///
    /// # Panics
    /// On the same conditions as the sequential
    /// [`register_user`](hka_core::TrustedServer::register_user).
    pub fn register_user(&mut self, user: UserId, level: PrivacyLevel) -> Pseudonym {
        match self.try_register_user(user, level) {
            Ok(p) => p,
            Err(TsError::DuplicateUser(u)) => panic!("user {u} registered twice"),
            Err(e) => panic!("register_user({user}) failed: {e}"),
        }
    }

    /// Fallible registration; refused with [`TsError::Degraded`] while
    /// read-only.
    pub fn try_register_user(
        &mut self,
        user: UserId,
        level: PrivacyLevel,
    ) -> Result<Pseudonym, TsError> {
        self.flush();
        if self.co.mode == ServerMode::ReadOnly {
            return Err(TsError::Degraded);
        }
        let params = level.params();
        if let Some(p) = &params {
            p.validate().map_err(TsError::InvalidParams)?;
        }
        if self.registered.contains(&user) {
            return Err(TsError::DuplicateUser(user));
        }
        let pseudonym = Pseudonym(self.co.next_pseudonym);
        self.co.next_pseudonym += 1;
        let sid = shard_of(self.shards.len(), user);
        let shard = &mut self.shards[sid];
        shard.users.insert(user, UserState::new(pseudonym, params));
        shard.store.ensure_user(user);
        self.registered.insert(user);
        self.privacy.insert(
            user,
            PrivacyMeta {
                base_on: params.is_some(),
                overrides: BTreeMap::new(),
            },
        );
        Ok(pseudonym)
    }

    /// Attaches an LBQID to a user.
    ///
    /// # Panics
    /// If the user is unknown or the server is read-only.
    pub fn add_lbqid(&mut self, user: UserId, lbqid: Lbqid) {
        if let Err(e) = self.try_add_lbqid(user, lbqid) {
            panic!("add_lbqid({user}) failed: {e}");
        }
    }

    /// Fallible variant of [`ShardedTs::add_lbqid`].
    pub fn try_add_lbqid(&mut self, user: UserId, lbqid: Lbqid) -> Result<(), TsError> {
        self.flush();
        if self.co.mode == ServerMode::ReadOnly {
            return Err(TsError::Degraded);
        }
        let sid = shard_of(self.shards.len(), user);
        let shard = &mut self.shards[sid];
        let st = shard
            .users
            .get_mut(&user)
            .ok_or(TsError::UnknownUser(user))?;
        st.monitors.push(Monitor::new(lbqid));
        st.patterns.push(PatternState::default());
        Ok(())
    }

    /// Sets a per-service privacy override for a user.
    pub fn set_service_privacy(
        &mut self,
        user: UserId,
        service: ServiceId,
        level: PrivacyLevel,
    ) -> Result<(), TsError> {
        self.flush();
        if self.co.mode == ServerMode::ReadOnly {
            return Err(TsError::Degraded);
        }
        let params = level.params();
        if let Some(p) = &params {
            p.validate().map_err(TsError::InvalidParams)?;
        }
        let sid = shard_of(self.shards.len(), user);
        let shard = &mut self.shards[sid];
        let state = shard
            .users
            .get_mut(&user)
            .ok_or(TsError::UnknownUser(user))?;
        state.overrides.insert(service, params);
        self.privacy
            .get_mut(&user)
            .expect("privacy metadata tracks registration")
            .overrides
            .insert(service, params.is_some());
        Ok(())
    }

    /// Registers a service's tolerance constraints (replicated to every
    /// shard — the strategy resolves the tolerance on both paths).
    pub fn register_service(&mut self, service: ServiceId, tolerance: Tolerance) {
        self.flush();
        self.co.services.insert(service, tolerance);
        for shard in &mut self.shards {
            shard.services.insert(service, tolerance);
        }
    }

    /// Adds a static mix-zone (replicated to every shard for crossing
    /// detection on the parallel ingest path).
    pub fn add_static_mixzone(&mut self, zone: Rect) {
        self.flush();
        self.co.mixzones.add_static_zone(zone);
        for shard in &mut self.shards {
            shard.static_zones.push(zone);
        }
    }

    /// Attaches a fault-injection plan. Faults make every event a
    /// serialization point: the shared plan's triggers (`Once`,
    /// `EveryNth`, windows) must observe the exact sequential order of
    /// site checks, so the scheduler stops running anything in parallel.
    pub fn attach_faults(&mut self, injector: FaultInjector) {
        self.flush();
        for shard in &mut self.shards {
            shard.injector = injector.clone();
        }
        self.co.injector = injector;
        self.co.serialize_all = true;
    }

    /// Routes every logged event into a durable hash-chained journal
    /// via group commit (default [`RetryPolicy`]). Returns the previous
    /// journal, if any. A fresh sink is healthy, so a degraded server
    /// returns to [`ServerMode::Normal`].
    pub fn attach_journal(&mut self, journal: DurableJournal) -> Option<DurableJournal> {
        self.attach_journal_with(journal, RetryPolicy::default())
    }

    /// Like [`ShardedTs::attach_journal`] with an explicit retry policy.
    pub fn attach_journal_with(
        &mut self,
        journal: DurableJournal,
        policy: RetryPolicy,
    ) -> Option<DurableJournal> {
        self.flush();
        // Give the outgoing sink a last chance at the pending batch;
        // whatever it cannot take carries over to the fresh journal.
        let previous = self.co.journal.take().map(|mut old| {
            old.commit(&mut self.co.pending);
            old.into_journal()
        });
        self.co.journal = Some(GroupCommit::new(journal, policy));
        self.co.sync_mode();
        previous
    }

    /// Runs any queued events and commits the pending journal batch
    /// (flush + fsync). Errors surface through the health ladder rather
    /// than this result, mirroring the sequential
    /// [`flush_journal`](hka_core::TrustedServer::flush_journal).
    pub fn flush_journal(&mut self) -> std::io::Result<()> {
        self.flush();
        self.co.commit();
        Ok(())
    }

    /// Detaches and returns the journal after committing what's pending.
    pub fn take_journal(&mut self) -> Option<DurableJournal> {
        self.flush();
        self.co.commit();
        let taken = self.co.journal.take().map(GroupCommit::into_journal);
        self.co.sync_mode();
        taken
    }

    // ------------------------------------------------------------------
    // Checkpoints: the coordinated cross-shard variant of
    // `hka_core::checkpoint` (same snapshot codecs, fault sites,
    // metrics, and recovery ladder).
    // ------------------------------------------------------------------

    /// The group-commit sink's chain position `(records, head)`, or
    /// `None` when no journal is attached. Meaningful only at a commit
    /// barrier with nothing pending — exactly where
    /// [`ShardedTs::write_checkpoint`] reads it.
    pub fn journal_position(&self) -> Option<(u64, String)> {
        self.co.journal.as_ref().map(|sink| sink.position())
    }

    /// The `server` snapshot section: per-user bindings merged across
    /// all shards in ascending user order, so the bytes are identical to
    /// the sequential server's
    /// [`server_meta`](hka_core::TrustedServer::server_meta) for the
    /// same state.
    pub fn server_meta(&self) -> ServerMeta {
        let mut users: Vec<UserMeta> = self
            .shards
            .iter()
            .flat_map(|s| s.users.iter())
            .map(|(user, st)| UserMeta {
                user: *user,
                pseudonym: st.pseudonym,
                params: st.params,
                overrides: st.overrides.iter().map(|(svc, p)| (*svc, *p)).collect(),
                at_risk: st.at_risk,
            })
            .collect();
        users.sort_by_key(|u| u.user);
        ServerMeta {
            mode: self.co.mode,
            last_time: self.co.last_time,
            next_msg: self.co.next_msg,
            next_pseudonym: self.co.next_pseudonym,
            services: self
                .co
                .services
                .iter()
                .map(|(id, tol)| (*id, *tol))
                .collect(),
            static_zones: self.co.mixzones.static_zones().to_vec(),
            users,
        }
    }

    /// Writes a **coordinated cross-shard checkpoint** at an epoch
    /// boundary: drains the queue to quiescence (a barrier), commits the
    /// pending batch so the on-disk chain covers every folded event,
    /// snapshots the union of all shards (merged store + merged server
    /// meta + stats + resumed audit state), publishes it atomically
    /// through the [`Checkpointer`], and anchors it into the chain with
    /// a direct durable append on the group-commit sink.
    ///
    /// The snapshot is the *global* state — shard count is not part of
    /// it — so it restores into [`ShardedTs::restore`] with any shard
    /// count, or into the sequential
    /// [`TrustedServer::restore`](hka_core::TrustedServer::restore).
    ///
    /// Fail-closed refusals: no journal attached, a non-empty pending
    /// batch after the commit attempt (a degraded sink would leave the
    /// snapshot claiming events the chain doesn't have), or an audit
    /// position diverging from the sink's. On any error the previous
    /// checkpoint (or genesis) stays authoritative and the server keeps
    /// serving; `ts.checkpoint_failures` counts the attempt.
    ///
    /// Journal-prefix truncation is deliberately **not** offered on this
    /// path: the group-commit sink cannot be detached around the
    /// inode swap mid-run. Truncate offline instead — after
    /// [`ShardedTs::take_journal`], call
    /// [`truncate_to_anchor`](hka_obs::checkpoint::truncate_to_anchor)
    /// and re-attach a fresh sink.
    pub fn write_checkpoint(
        &mut self,
        cp: &mut Checkpointer,
    ) -> std::io::Result<CheckpointReceipt> {
        let started = Instant::now();
        let result = self.try_write_checkpoint(cp, started);
        if result.is_err() {
            cp.note_failed();
        }
        result
    }

    fn try_write_checkpoint(
        &mut self,
        cp: &mut Checkpointer,
        started: Instant,
    ) -> std::io::Result<CheckpointReceipt> {
        fn invalid(msg: &str) -> std::io::Error {
            std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
        }
        self.flush();
        self.co.commit();
        if !self.co.pending.is_empty() {
            return Err(invalid(
                "pending events not durably committed: refusing to snapshot ahead of the chain",
            ));
        }
        let (records, head) = self
            .journal_position()
            .ok_or_else(|| invalid("no journal attached: nothing to anchor a checkpoint into"))?;
        let audit_state = cp.audit_state_at(records, &head)?;

        let mut snapshot = Snapshot::new(records, head.clone());
        snapshot.set_section(
            STORE_SECTION,
            hka_trajectory::state::store_to_json(&self.merged_store()),
        );
        snapshot.set_section(SERVER_SECTION, self.server_meta().to_json());
        snapshot.set_section(STATS_SECTION, stats_to_json(&self.stats()));
        snapshot.set_section(AUDIT_SECTION, audit_state);

        let (path, hash, bytes) = cp.publish_snapshot(&snapshot)?;

        if cp.check_site(sites::CHECKPOINT_APPEND).is_some() {
            return Err(std::io::Error::other(format!(
                "injected fault at {}",
                sites::CHECKPOINT_APPEND
            )));
        }
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .ok_or_else(|| invalid("snapshot path has no file name"))?;
        let sink = self
            .co
            .journal
            .as_mut()
            .expect("position above proved a sink is attached");
        let seq = sink.append_now(
            CHECKPOINT_KIND,
            anchor_payload(&file_name, records, &head, &hash),
        )?;
        debug_assert_eq!(seq, records, "anchor seq equals the records it covers");
        cp.note_committed(&path, bytes, records, started);
        Ok(CheckpointReceipt {
            seq,
            path,
            snapshot_hash: hash,
            bytes,
            truncated_bytes: 0,
        })
    }

    /// Rebuilds a sharded server from a checkpoint snapshot, re-hashing
    /// users (and their PHL partitions) across `shards` workers — the
    /// snapshot is shard-count-free, so recovery may scale the fleet up
    /// or down. The same conservative-restart rules as the sequential
    /// [`TrustedServer::restore`](hka_core::TrustedServer::restore)
    /// apply: LBQID monitors restart empty (re-attach them), and no
    /// journal is attached (re-attach one, resuming the chain, before
    /// serving).
    pub fn restore(config: TsConfig, shards: usize, snapshot: &Snapshot) -> Result<Self, String> {
        use hka_core::checkpoint;

        let store = hka_trajectory::state::store_of_json(
            snapshot
                .section(STORE_SECTION)
                .ok_or("snapshot has no 'store' section")?,
        )?;
        let meta = ServerMeta::of_json(
            snapshot
                .section(SERVER_SECTION)
                .ok_or("snapshot has no 'server' section")?,
        )?;
        let stats = checkpoint::stats_of_json(
            snapshot
                .section(STATS_SECTION)
                .ok_or("snapshot has no 'stats' section")?,
        )?;

        let mut sharded = ShardedTs::new(config, shards);
        let n = sharded.shards.len();
        for (user, phl) in store.iter() {
            let shard = &mut sharded.shards[shard_of(n, user)];
            shard.store.ensure_user(user);
            for p in phl.points() {
                shard.store.record(user, *p);
                shard.index.insert(user, *p);
            }
        }
        for (id, tol) in &meta.services {
            sharded.co.services.insert(*id, *tol);
            for shard in &mut sharded.shards {
                shard.services.insert(*id, *tol);
            }
        }
        for zone in &meta.static_zones {
            sharded.co.mixzones.add_static_zone(*zone);
            for shard in &mut sharded.shards {
                shard.static_zones.push(*zone);
            }
        }
        for u in &meta.users {
            let shard = &mut sharded.shards[shard_of(n, u.user)];
            shard.store.ensure_user(u.user);
            shard.users.insert(
                u.user,
                UserState {
                    pseudonym: u.pseudonym,
                    params: u.params,
                    overrides: u.overrides.iter().cloned().collect(),
                    monitors: Vec::new(),
                    patterns: Vec::new(),
                    at_risk: u.at_risk,
                },
            );
            sharded.registered.insert(u.user);
            sharded.privacy.insert(
                u.user,
                PrivacyMeta {
                    base_on: u.params.is_some(),
                    overrides: u
                        .overrides
                        .iter()
                        .map(|(svc, p)| (*svc, p.is_some()))
                        .collect(),
                },
            );
        }
        sharded.co.log.restore_stats(stats);
        sharded.co.next_msg = meta.next_msg;
        sharded.co.next_pseudonym = meta.next_pseudonym;
        sharded.co.last_time = meta.last_time;
        sharded.co.mode = meta.mode;
        Ok(sharded)
    }

    // ------------------------------------------------------------------
    // Submission API.
    // ------------------------------------------------------------------

    /// Queues a location update; returns its canonical position.
    pub fn submit_location(&mut self, user: UserId, at: StPoint) -> u64 {
        let pos = self.next_pos;
        self.next_pos += 1;
        self.queue.push(Submitted::Location { pos, user, at });
        pos
    }

    /// Queues a service request; returns its canonical position (the
    /// key into [`ShardedTs::take_outcomes`]).
    pub fn submit_request(&mut self, user: UserId, at: StPoint, service: ServiceId) -> u64 {
        let pos = self.next_pos;
        self.next_pos += 1;
        if hka_obs::trace::enabled() || self.slo.is_some() {
            // Deferred root: opened detached (no thread frame) so it can
            // stay live across the flush while children run on worker
            // threads, and finished in position order afterwards.
            let mut root = hka_obs::trace::root_detached("ts.request");
            root.attr("pos", hka_obs::Json::from(pos));
            self.req_meta.insert(
                pos,
                ReqMeta {
                    root,
                    started: Instant::now(),
                },
            );
        }
        self.queue.push(Submitted::Request {
            pos,
            user,
            at,
            service,
        });
        pos
    }

    /// Whether a queued request is a serialization point (as opposed to
    /// parallel-safe exact-forward work or an inline rejection).
    fn serializes(&self, user: UserId, service: ServiceId) -> bool {
        self.registered.contains(&user)
            && (self.co.serialize_all || self.privacy[&user].on_for(service))
    }

    /// Runs every queued event through the phase scheduler and commits
    /// the journal.
    ///
    /// Co-arriving serialized requests are **batched**: a maximal run of
    /// consecutive protected requests crosses one barrier (one epoch
    /// publication) and then executes through a single Algorithm-1 pass
    /// ([`strategy::handle_request_batch_on`]-shaped: commit, run,
    /// repeat), sharing the live union index and its generation-keyed
    /// query memo across the run. The per-request commit cadence is
    /// exactly what unbatched execution produced — a barrier between two
    /// back-to-back serialized requests was always empty — so journal
    /// bytes and the mode ladder are byte-for-byte unchanged.
    pub fn flush(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let q = std::mem::take(&mut self.queue);
        let n = self.shards.len();
        let mut staged: Vec<Vec<Work>> = (0..n).map(|_| Vec::new()).collect();
        let mut staged_count = 0usize;
        let mut i = 0usize;
        while i < q.len() {
            match q[i] {
                Submitted::Location { pos, user, at } => {
                    if self.co.serialize_all {
                        self.run_barrier(&mut staged, &mut staged_count);
                        self.run_serial_location(user, at);
                    } else {
                        staged[shard_of(n, user)].push(Work {
                            pos,
                            user,
                            kind: WorkKind::Location { at },
                            ctx: None,
                        });
                        staged_count += 1;
                    }
                    i += 1;
                }
                Submitted::Request {
                    pos,
                    user,
                    at,
                    service,
                } => {
                    if !self.registered.contains(&user) {
                        // The sequential server counts the request
                        // before rejecting it; keep totals identical.
                        let _span = hka_obs::span("ts.handle_request");
                        hka_obs::global().counter("ts.requests").incr();
                        self.outcomes
                            .push((pos, user, Err(TsError::UnknownUser(user))));
                        i += 1;
                    } else if !self.co.serialize_all && !self.privacy[&user].on_for(service) {
                        staged[shard_of(n, user)].push(Work {
                            pos,
                            user,
                            kind: WorkKind::Request { at, service },
                            ctx: self.req_meta.get(&pos).and_then(|m| m.root.context()),
                        });
                        staged_count += 1;
                        i += 1;
                    } else {
                        // The maximal run of consecutive serialized
                        // requests starting here: one barrier, then the
                        // whole run against the published epoch.
                        let mut end = i + 1;
                        while end < q.len() {
                            match q[end] {
                                Submitted::Request { user, service, .. }
                                    if self.serializes(user, service) =>
                                {
                                    end += 1
                                }
                                _ => break,
                            }
                        }
                        self.run_barrier(&mut staged, &mut staged_count);
                        let metrics = hka_obs::global();
                        metrics.counter("ts.request_batches").incr();
                        metrics.counter("ts.batched_requests").add((end - i) as u64);
                        for item in &q[i..end] {
                            let Submitted::Request {
                                pos,
                                user,
                                at,
                                service,
                            } = *item
                            else {
                                unreachable!("the run scan only admits requests");
                            };
                            // Serial requests consult the mode ladder, so
                            // each must see a freshly committed health.
                            self.co.commit();
                            self.run_serial_request(pos, user, at, service);
                        }
                        i = end;
                    }
                }
            }
        }
        self.run_barrier(&mut staged, &mut staged_count);
        self.finish_request_roots();
        self.co.commit();
    }

    /// Finishes the flush's deferred request roots in position order
    /// (attaching the outcome), feeds the SLO watchdog, and queues any
    /// SLO transitions for the commit that follows.
    fn finish_request_roots(&mut self) {
        if self.req_meta.is_empty() && self.slo.is_none() {
            return;
        }
        let meta = std::mem::take(&mut self.req_meta);
        // One pass over the outcome buffer (it may still hold untaken
        // outcomes from earlier flushes; those have no open root).
        let mut by_pos: BTreeMap<u64, &Result<RequestOutcome, TsError>> = BTreeMap::new();
        for (pos, _, outcome) in &self.outcomes {
            if meta.contains_key(pos) {
                by_pos.insert(*pos, outcome);
            }
        }
        let mut transitions = Vec::new();
        for (pos, mut m) in meta {
            let suppressed = match by_pos.get(&pos) {
                Some(Ok(RequestOutcome::Forwarded(_))) => {
                    m.root.attr("outcome", hka_obs::Json::from("forwarded"));
                    false
                }
                Some(Ok(RequestOutcome::Suppressed(_))) => {
                    m.root.attr("outcome", hka_obs::Json::from("suppressed"));
                    true
                }
                Some(Err(_)) => {
                    m.root.attr("outcome", hka_obs::Json::from("rejected"));
                    false
                }
                // A root without an outcome can only mean the request is
                // still queued (flush re-entered); keep it open.
                None => {
                    self.req_meta.insert(pos, m);
                    continue;
                }
            };
            let trace = m.root.trace_id();
            let latency = u64::try_from(m.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            drop(m.root);
            if let Some(monitor) = self.slo.as_mut() {
                let degraded = self.co.mode != ServerMode::Normal;
                transitions.extend(monitor.observe_request(latency, suppressed, degraded, trace));
            }
        }
        if let Some(monitor) = self.slo.as_mut() {
            transitions.extend(monitor.observe_flush_lag(self.co.pending.len()));
        }
        for ev in &transitions {
            let at = self.co.last_time;
            self.co.emit_event(hka_core::TsEvent::from_slo(ev, at), at);
        }
    }

    /// Flushes and returns all collected request outcomes, ordered by
    /// canonical position.
    pub fn take_outcomes(&mut self) -> Vec<(u64, UserId, Result<RequestOutcome, TsError>)> {
        self.flush();
        let mut out = std::mem::take(&mut self.outcomes);
        out.sort_by_key(|(pos, _, _)| *pos);
        out
    }

    /// Convenience: submit one request, flush, and return its outcome —
    /// the sharded analogue of the sequential
    /// [`try_handle_request`](hka_core::TrustedServer::try_handle_request).
    pub fn request_now(
        &mut self,
        user: UserId,
        at: StPoint,
        service: ServiceId,
    ) -> Result<RequestOutcome, TsError> {
        let pos = self.submit_request(user, at, service);
        self.flush();
        let idx = self
            .outcomes
            .iter()
            .position(|(p, _, _)| *p == pos)
            .expect("flush records an outcome for every request");
        self.outcomes.remove(idx).2
    }

    /// Convenience: submit one location update and flush.
    pub fn location_update(&mut self, user: UserId, at: StPoint) {
        self.submit_location(user, at);
        self.flush();
    }

    // ------------------------------------------------------------------
    // Phase execution.
    // ------------------------------------------------------------------

    /// Drains the staged parallel work to quiescence and publishes a
    /// new epoch: workers run their slices (threaded above the inline
    /// threshold), then the coordinator merges events, outcomes, and
    /// outbox entries back into canonical order.
    fn run_barrier(&mut self, staged: &mut [Vec<Work>], staged_count: &mut usize) {
        if *staged_count == 0 {
            return;
        }
        let total = *staged_count;
        *staged_count = 0;
        for shard in &mut self.shards {
            shard.mode = self.co.mode;
        }
        if self.shards.len() == 1 || total < self.parallel_threshold {
            for (sid, work) in staged.iter_mut().enumerate() {
                if work.is_empty() {
                    continue;
                }
                // Inline execution still attributes spans to the shard's
                // track, so the export looks the same either way.
                hka_obs::trace::set_thread_track(sid as u32 + 1);
                self.shards[sid].run(std::mem::take(work));
            }
            hka_obs::trace::set_thread_track(0);
        } else {
            std::thread::scope(|scope| {
                for (shard, work) in self.shards.iter_mut().zip(staged.iter_mut()) {
                    if work.is_empty() {
                        continue;
                    }
                    let batch = std::mem::take(work);
                    let track = shard.id as u32 + 1;
                    scope.spawn(move || {
                        hka_obs::trace::set_thread_track(track);
                        shard.run(batch);
                    });
                }
            });
        }
        self.epoch += 1;
        self.merge_worker_buffers();
    }

    /// Merges the workers' per-batch buffers back into global state in
    /// canonical (position, emission-index) order, so the ring, the
    /// journal batch, and the outbox are indistinguishable from a
    /// sequential execution.
    fn merge_worker_buffers(&mut self) {
        let mut events = Vec::new();
        let mut outs = Vec::new();
        let mut deltas = Vec::new();
        for shard in &mut self.shards {
            events.append(&mut shard.events_buf);
            outs.append(&mut shard.outbox_buf);
            deltas.append(&mut shard.deltas_buf);
            for (pos, user, outcome) in shard.outcomes_buf.drain(..) {
                self.outcomes.push((pos, user, Ok(outcome)));
            }
        }
        // Publish this epoch's index deltas to the union in canonical
        // position order (no-op — but still a drain — while the union is
        // invalid or the incremental path is off; the next rebuild reads
        // the authoritative stores instead).
        self.co.union.apply_epoch(&mut deltas);
        events.sort_by_key(|&(pos, idx, _, _)| (pos, idx));
        for (_, _, e, at) in events {
            self.co.emit_event(e, at);
        }
        outs.sort_by_key(|(pos, _, _)| *pos);
        for (_, user, req) in outs {
            self.co.routes.insert(req.msg_id, user);
            self.co.outbox.push((user, req));
        }
    }

    fn run_serial_location(&mut self, user: UserId, at: StPoint) {
        let sid = shard_of(self.shards.len(), user);
        let state = self.shards[sid].users.remove(&user);
        let mut host = SerialHost {
            co: &mut self.co,
            shards: &mut self.shards,
        };
        match state {
            Some(mut st) => {
                strategy::location_update_on(&mut host, user, &mut st, at);
                self.shards[sid].users.insert(user, st);
            }
            None => {
                // Unregistered users are still observed by the
                // positioning infrastructure (sequential behaviour).
                strategy::ingest_on(&mut host, user, at);
            }
        }
    }

    fn run_serial_request(&mut self, pos: u64, user: UserId, at: StPoint, service: ServiceId) {
        // Serialized requests run on the coordinator thread (track 0);
        // adopt the request's root so Algorithm 1 / mix-zone stage spans
        // parent under it.
        let handoff = self
            .req_meta
            .get(&pos)
            .and_then(|m| m.root.context())
            .map(|ctx| hka_obs::trace::swap_current(Some(ctx)));
        let _span = hka_obs::span("ts.handle_request");
        hka_obs::global().counter("ts.requests").incr();
        let outcome = 'run: {
            let sid = shard_of(self.shards.len(), user);
            let Some(mut state) = self.shards[sid].users.remove(&user) else {
                break 'run Err(TsError::UnknownUser(user));
            };
            let mut host = SerialHost {
                co: &mut self.co,
                shards: &mut self.shards,
            };
            let outcome = strategy::handle_request_on(&mut host, user, &mut state, at, service);
            self.shards[sid].users.insert(user, state);
            Ok(outcome)
        };
        self.outcomes.push((pos, user, outcome));
        drop(_span);
        if let Some(prev) = handoff {
            hka_obs::trace::swap_current(prev);
        }
    }

    // ------------------------------------------------------------------
    // Introspection (reflects flushed events only).
    // ------------------------------------------------------------------

    /// The user's current pseudonym.
    pub fn pseudonym_of(&self, user: UserId) -> Option<Pseudonym> {
        self.shards[shard_of(self.shards.len(), user)]
            .users
            .get(&user)
            .map(|s| s.pseudonym)
    }

    /// Whether the user has an unresolved at-risk notification.
    pub fn is_at_risk(&self, user: UserId) -> bool {
        self.shards[shard_of(self.shards.len(), user)]
            .users
            .get(&user)
            .is_some_and(|s| s.at_risk)
    }

    /// The lock-style privacy indicator, or `None` for unknown users.
    pub fn privacy_indicator(&self, user: UserId) -> Option<PrivacyIndicator> {
        let state = self.shards[shard_of(self.shards.len(), user)]
            .users
            .get(&user)?;
        Some(if state.params.is_none() {
            PrivacyIndicator::Off
        } else if state.at_risk {
            PrivacyIndicator::AtRisk
        } else {
            PrivacyIndicator::Locked
        })
    }

    /// The decision log (ring + exact statistics, canonical order).
    pub fn log(&self) -> &EventLog {
        &self.co.log
    }

    /// The exact aggregate statistics.
    pub fn stats(&self) -> TsStats {
        self.co.log.stats()
    }

    /// The server's current operating mode.
    pub fn mode(&self) -> ServerMode {
        self.co.mode
    }

    /// Health of the group-commit journal sink.
    pub fn journal_health(&self) -> JournalHealth {
        self.co.journal_health()
    }

    /// Everything forwarded so far, with ground-truth issuers, in
    /// canonical order.
    pub fn outbox(&self) -> &[(UserId, SpRequest)] {
        &self.co.outbox
    }

    /// Provider view: the bare request stream.
    pub fn provider_view(&self) -> Vec<SpRequest> {
        self.co.outbox.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Routes a provider's answer back to the issuing user.
    pub fn route_response(&self, msg_id: MsgId) -> Option<UserId> {
        self.co.routes.get(&msg_id).copied()
    }

    /// A single store holding every shard's PHLs — the global view for
    /// audits and experiments.
    pub fn merged_store(&self) -> TrajectoryStore {
        TrajectoryStore::merged(self.shards.iter().map(|s| &s.store))
    }

    /// Per-LBQID audit, as the sequential
    /// [`audit_patterns`](hka_core::TrustedServer::audit_patterns):
    /// pattern name, full-match flag, and the audited historical
    /// k-anonymity of the forwarded contexts (over the merged store).
    pub fn audit_patterns(&self, user: UserId, k: usize) -> Vec<(String, bool, HkOutcome)> {
        let shard = &self.shards[shard_of(self.shards.len(), user)];
        let Some(state) = shard.users.get(&user) else {
            return Vec::new();
        };
        let store = self.merged_store();
        state
            .monitors
            .iter()
            .zip(&state.patterns)
            .map(|(m, p)| {
                (
                    m.lbqid().name().to_owned(),
                    m.is_fully_matched(),
                    historical_k_anonymity(&store, user, &p.contexts, k),
                )
            })
            .collect()
    }

    /// The generalized contexts forwarded for each of the user's
    /// patterns under the current pseudonym.
    pub fn pattern_contexts(&self, user: UserId) -> Vec<(String, Vec<StBox>)> {
        let shard = &self.shards[shard_of(self.shards.len(), user)];
        let Some(state) = shard.users.get(&user) else {
            return Vec::new();
        };
        state
            .monitors
            .iter()
            .zip(&state.patterns)
            .map(|(m, p)| (m.lbqid().name().to_owned(), p.contexts.clone()))
            .collect()
    }

    /// A point-in-time snapshot of the process-wide metrics registry.
    pub fn metrics_snapshot(&self) -> hka_obs::MetricsSnapshot {
        hka_obs::global().snapshot()
    }

    /// Journals SLO transitions observed outside the server's own
    /// watchdog — e.g. the TCP gateway's p999/queue-depth monitor.
    /// Async-class telemetry; never gates a request.
    pub fn note_slo_events(&mut self, events: &[hka_obs::SloEvent]) {
        for ev in events {
            let at = self.co.last_time;
            self.co.emit_event(hka_core::TsEvent::from_slo(ev, at), at);
        }
    }

    /// Journals a gateway liveness snapshot
    /// ([`TsEvent`](hka_core::TsEvent)`::GwStats`).
    pub fn note_gateway_stats(&mut self, conns: u64, drains: u64, queue_depth: u64) {
        let at = self.co.last_time;
        self.co.emit_event(
            hka_core::TsEvent::GwStats {
                at,
                conns,
                drains,
                queue_depth,
            },
            at,
        );
    }
}

impl hka_core::RequestService for ShardedTs {
    fn submit(&mut self, env: &hka_core::RequestEnvelope) {
        match env.body {
            hka_core::EnvelopeBody::Location => {
                self.submit_location(env.user, env.at);
            }
            hka_core::EnvelopeBody::Request { service } => {
                let pos = self.submit_request(env.user, env.at, service);
                self.svc_pending.insert(pos, (env.req_id, env.trace));
            }
        }
    }

    /// Flushes the pipeline and maps settled outcomes back to their
    /// envelopes. `k_got` is recovered by aligning the drain's
    /// forwarded outcomes (position order) with the log's most recent
    /// `ts.forwarded` events (canonical order — the same order); if
    /// the ring has already evicted an event the response carries 0,
    /// with the journal record staying authoritative.
    fn drain(&mut self) -> Vec<hka_core::ResponseEnvelope> {
        let outcomes = self.take_outcomes();
        let forwarded = outcomes
            .iter()
            .filter(|(_, _, r)| matches!(r, Ok(RequestOutcome::Forwarded(_))))
            .count();
        let mut k_gots: std::collections::VecDeque<(UserId, u64)> =
            std::collections::VecDeque::with_capacity(forwarded);
        for ev in self.co.log.events() {
            if let hka_core::TsEvent::Forwarded { user, k_got, .. } = ev {
                if k_gots.len() == forwarded {
                    k_gots.pop_front();
                }
                k_gots.push_back((*user, *k_got as u64));
            }
        }
        let mut responses = Vec::with_capacity(outcomes.len());
        for (pos, user, result) in &outcomes {
            let (req_id, trace) = self.svc_pending.remove(pos).unwrap_or((*pos, 0));
            let k_got = match result {
                Ok(RequestOutcome::Forwarded(_)) => match k_gots.pop_front() {
                    Some((u, k)) if u == *user => k,
                    _ => 0,
                },
                _ => 0,
            };
            responses.push(hka_core::ResponseEnvelope::from_result(
                req_id,
                trace,
                result,
                self.co.mode,
                k_got,
            ));
        }
        responses
    }

    fn mode(&self) -> ServerMode {
        ShardedTs::mode(self)
    }

    fn pseudonym_of(&self, user: UserId) -> Option<Pseudonym> {
        ShardedTs::pseudonym_of(self, user)
    }

    fn flush_journal(&mut self) -> std::io::Result<()> {
        ShardedTs::flush_journal(self)
    }

    fn note_slo_events(&mut self, events: &[hka_obs::SloEvent]) {
        ShardedTs::note_slo_events(self, events);
    }

    fn note_gateway_stats(&mut self, conns: u64, drains: u64, queue_depth: u64) {
        ShardedTs::note_gateway_stats(self, conns, drains, queue_depth);
    }
}

impl std::fmt::Debug for ShardedTs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTs")
            .field("shards", &self.shards.len())
            .field("users", &self.registered.len())
            .field("epoch", &self.epoch)
            .field("mode", &self.co.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_audit::AuditConfig;
    use hka_core::TrustedServer;
    use hka_faults::{FaultKind, FaultPlan, Trigger};
    use hka_geo::{Point, TimeSec};
    use hka_obs::{DurableSink, Journal};
    use std::path::{Path, PathBuf};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("hka-shard-ckpt-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn durable_file_journal(path: &Path) -> DurableJournal {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        Journal::new(Box::new(file) as Box<dyn DurableSink>)
    }

    fn boxed_file_journal(path: &Path) -> hka_obs::BoxedJournal {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        Journal::new(Box::new(std::io::BufWriter::new(file)))
    }

    /// The identical traffic script for either frontend: six users
    /// (privacy alternating Medium/Off), five location updates and one
    /// request each.
    fn traffic(mut run: impl FnMut(Op)) {
        for u in 0..6u64 {
            let level = if u % 2 == 0 {
                PrivacyLevel::Medium
            } else {
                PrivacyLevel::Off
            };
            run(Op::Reg(UserId(u), level));
            for t in 0..5 {
                run(Op::Loc(
                    UserId(u),
                    sp(10.0 * u as f64, 3.0 * t as f64, 60 * t),
                ));
            }
            run(Op::Req(
                UserId(u),
                sp(10.0 * u as f64, 20.0, 400),
                ServiceId(1),
            ));
        }
    }

    enum Op {
        Reg(UserId, PrivacyLevel),
        Loc(UserId, StPoint),
        Req(UserId, StPoint, ServiceId),
    }

    fn busy_sharded(dir: &Path, shards: usize) -> (ShardedTs, PathBuf) {
        let journal = dir.join("shard-journal.jsonl");
        let mut ts = ShardedTs::new(TsConfig::default(), shards);
        // Serialize everything: the sharded server then replays the
        // sequential id allocation, making runs comparable byte for byte.
        ts.attach_faults(FaultInjector::none());
        ts.attach_journal(durable_file_journal(&journal));
        ts.register_service(ServiceId(1), Tolerance::new(1e8, 7_200));
        ts.add_static_mixzone(Rect::new(
            Point::new(500.0, 500.0),
            Point::new(600.0, 600.0),
        ));
        traffic(|op| match op {
            Op::Reg(u, level) => {
                ts.register_user(u, level);
            }
            Op::Loc(u, at) => ts.location_update(u, at),
            Op::Req(u, at, svc) => {
                let _ = ts.request_now(u, at, svc);
            }
        });
        (ts, journal)
    }

    #[test]
    fn coordinated_checkpoint_matches_the_sequential_snapshot_byte_for_byte() {
        let dir = TempDir::new("coord");
        let seq_journal = dir.0.join("seq-journal.jsonl");
        let mut seq = TrustedServer::new(TsConfig::default());
        seq.attach_journal(boxed_file_journal(&seq_journal));
        seq.register_service(ServiceId(1), Tolerance::new(1e8, 7_200));
        seq.add_static_mixzone(Rect::new(
            Point::new(500.0, 500.0),
            Point::new(600.0, 600.0),
        ));
        traffic(|op| match op {
            Op::Reg(u, level) => {
                seq.register_user(u, level);
            }
            Op::Loc(u, at) => seq.location_update(u, at),
            Op::Req(u, at, svc) => {
                let _ = seq.handle_request(u, at, svc);
            }
        });
        let (mut shd, shd_journal) = busy_sharded(&dir.0, 3);

        let mut cp_seq = Checkpointer::new(&seq_journal, dir.0.join("seq-snaps"));
        let mut cp_shd = Checkpointer::new(&shd_journal, dir.0.join("shd-snaps"));
        let a = cp_seq.checkpoint(&mut seq, false).unwrap();
        let b = shd.write_checkpoint(&mut cp_shd).unwrap();

        // Same chain position, same snapshot bytes (the hash covers the
        // whole file), and — because the anchor payload only names the
        // file, not the directory — the same journal bytes end to end.
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.snapshot_hash, b.snapshot_hash);
        assert_eq!(
            std::fs::read(&seq_journal).unwrap(),
            std::fs::read(&shd_journal).unwrap()
        );
    }

    #[test]
    fn sharded_anchor_resumes_the_audit_byte_identically() {
        let dir = TempDir::new("audit");
        let (mut shd, journal) = busy_sharded(&dir.0, 4);
        let mut cp = Checkpointer::new(&journal, dir.0.join("snaps"));
        let receipt = shd.write_checkpoint(&mut cp).unwrap();

        // Suffix traffic after the anchor.
        for u in 0..6u64 {
            let _ = shd.request_now(UserId(u), sp(10.0 * u as f64, 25.0, 700), ServiceId(1));
        }
        shd.flush_journal().unwrap();

        let genesis = hka_audit::replay_file(&journal, AuditConfig::default()).unwrap();
        let resumed = hka_audit::resume_from_snapshot(&journal, &receipt.path).unwrap();
        assert!(genesis.chain.verified(), "{:?}", genesis.chain.error);
        assert_eq!(genesis.totals.checkpoints, 1);
        assert_eq!(resumed.to_json().to_string(), genesis.to_json().to_string());
    }

    #[test]
    fn sharded_checkpoint_restores_with_a_different_shard_count() {
        let dir = TempDir::new("restore");
        let (mut shd, journal) = busy_sharded(&dir.0, 3);
        let mut cp = Checkpointer::new(&journal, dir.0.join("snaps"));
        shd.write_checkpoint(&mut cp).unwrap();

        let (found, skipped) = cp.latest_valid().unwrap();
        assert!(skipped.is_empty());
        let rec = found.expect("checkpoint recovered");

        // Scale the fleet from 3 to 5 shards on restore: the snapshot is
        // shard-count-free, so the merged view must be unchanged.
        let restored = ShardedTs::restore(TsConfig::default(), 5, &rec.snapshot).unwrap();
        assert_eq!(restored.shard_count(), 5);
        assert_eq!(restored.server_meta(), shd.server_meta());
        assert_eq!(restored.stats(), shd.stats());
        assert_eq!(
            hka_trajectory::state::store_to_json(&restored.merged_store()).to_string(),
            hka_trajectory::state::store_to_json(&shd.merged_store()).to_string()
        );

        // And it keeps serving: a protected request from restored state
        // answers identically to the original server's.
        let mut restored = restored;
        let at = sp(0.0, 26.0, 800);
        let a = shd.request_now(UserId(0), at, ServiceId(1)).unwrap();
        let b = restored.request_now(UserId(0), at, ServiceId(1)).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn checkpoint_faults_leave_the_previous_checkpoint_authoritative() {
        for (site, kind) in [
            (sites::SNAPSHOT_WRITE, FaultKind::Torn),
            (sites::SNAPSHOT_RENAME, FaultKind::Io),
            (sites::CHECKPOINT_APPEND, FaultKind::Io),
        ] {
            let dir = TempDir::new(&format!("fault-{}", site.replace('.', "-")));
            let (mut shd, journal) = busy_sharded(&dir.0, 2);
            let mut cp = Checkpointer::new(&journal, dir.0.join("snaps"));
            let good = shd.write_checkpoint(&mut cp).unwrap();
            let _ = shd.request_now(UserId(1), sp(10.0, 30.0, 800), ServiceId(1));

            let mut plan = FaultPlan::new(7);
            plan.push_rule(site, Trigger::Always, kind);
            cp.attach_faults(FaultInjector::new(plan));
            let err = shd.write_checkpoint(&mut cp).unwrap_err();
            assert!(err.to_string().contains(site), "{site}: {err}");

            cp.attach_faults(FaultInjector::none());
            let (found, _skipped) = cp.latest_valid().unwrap();
            assert_eq!(
                found.expect("previous checkpoint survives").anchor.records,
                good.seq,
                "{site}"
            );

            // The server keeps serving and the chain stays verifiable.
            let _ = shd.request_now(UserId(2), sp(20.0, 30.0, 900), ServiceId(1));
            shd.flush_journal().unwrap();
            let out = hka_audit::replay_file(&journal, AuditConfig::default()).unwrap();
            assert!(out.chain.verified(), "{site}: {:?}", out.chain.error);
            assert!(out.ok(), "{site}: {:?}", out.violations);
        }
    }

    #[test]
    fn checkpoint_without_a_journal_is_refused() {
        let dir = TempDir::new("nojournal");
        let mut shd = ShardedTs::new(TsConfig::default(), 2);
        let mut cp = Checkpointer::new(dir.0.join("none.jsonl"), dir.0.join("snaps"));
        let err = shd.write_checkpoint(&mut cp).unwrap_err();
        assert!(err.to_string().contains("no journal attached"), "{err}");
    }
}
