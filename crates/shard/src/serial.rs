//! The coordinator and the serialized event path.
//!
//! Everything a parallel-safe event can never touch lives here: the
//! mix-zone manager (on-demand zones are global state), the randomizer,
//! the service registry, the fault injector, the mode ladder, the
//! outbox/routing table, and the group-commit journal. A serialization
//! point runs against [`SerialHost`], which answers the extracted
//! strategy's [`RequestHost`] capabilities over the *union* of all
//! shards — Algorithm 1's candidate search goes through the merged
//! [`IndexSnapshot`](hka_trajectory::IndexSnapshot), and unlink
//! attempts iterate the shards' PHLs in global user order, so every
//! answer is bit-identical to the sequential server's.

use crate::commit::GroupCommit;
use crate::worker::ShardState;
use hka_anonymity::{MsgId, Pseudonym, ServiceId, SpRequest};
use hka_core::strategy::RequestHost;
use hka_core::{
    algorithm1_first_from, algorithm1_subsequent_from, EventLog, Generalization, JournalHealth,
    MixZoneManager, Randomizer, ServerMode, Tolerance, TsConfig, TsEvent, UnlinkDecision,
};
use hka_faults::FaultInjector;
use hka_geo::{Point, StBox, StPoint, TimeSec};
use hka_obs::Json;
use hka_trajectory::{IndexDelta, IndexSnapshot, UnionIndex, UserId};
use std::collections::BTreeMap;

/// Which shard owns a user: a stable hash of the id. Registration is
/// not required — unregistered users' observations partition the same
/// way (the sequential server ingests those too).
pub(crate) fn shard_of(shards: usize, user: UserId) -> usize {
    (user.0 % shards as u64) as usize
}

/// Coordinator-only state: global subsystems plus the group-commit
/// journal and the mode ladder.
pub(crate) struct Coordinator {
    pub config: TsConfig,
    pub services: BTreeMap<ServiceId, Tolerance>,
    pub mixzones: MixZoneManager,
    pub randomizer: Option<Randomizer>,
    /// Ring + exact statistics (journaling is the group-commit sink's
    /// job, so the log itself never carries one).
    pub log: EventLog,
    /// Events merged in canonical order, awaiting the next commit.
    pub pending: Vec<(String, Json)>,
    pub journal: Option<GroupCommit>,
    pub outbox: Vec<(UserId, SpRequest)>,
    pub routes: BTreeMap<MsgId, UserId>,
    pub next_msg: u64,
    pub next_pseudonym: u64,
    pub injector: FaultInjector,
    /// Every event becomes a serialization point (fault plan attached,
    /// or a randomizer configured): the sharded server then replays the
    /// sequential server's exact id allocation and fault-site order.
    pub serialize_all: bool,
    pub mode: ServerMode,
    pub last_time: TimeSec,
    /// The incrementally maintained union index over all shards (the
    /// tentpole of DESIGN.md §15): built lazily at the first protected
    /// request, kept current by per-epoch shard deltas, invalidated by
    /// anything the delta stream cannot express.
    pub union: UnionIndex,
    /// When false, every protected request falls back to the per-request
    /// [`IndexSnapshot`] re-union (the pre-incremental baseline; the
    /// benches and the CLI's `--no-incremental-index` use this).
    pub incremental_index: bool,
}

impl Coordinator {
    pub fn new(config: TsConfig, shards: usize) -> Self {
        Coordinator {
            config,
            services: BTreeMap::new(),
            mixzones: MixZoneManager::new(config.mixzone),
            randomizer: config.randomize.map(Randomizer::new),
            log: EventLog::new(),
            pending: Vec::new(),
            journal: None,
            outbox: Vec::new(),
            routes: BTreeMap::new(),
            next_msg: 0,
            next_pseudonym: 0,
            injector: FaultInjector::none(),
            serialize_all: config.randomize.is_some(),
            mode: ServerMode::Normal,
            last_time: TimeSec(0),
            union: UnionIndex::new(config.backend, config.index, shards),
            incremental_index: true,
        }
    }

    /// Folds one event into the ring + statistics and queues it for the
    /// next group commit. Unlike the sequential server, no journal write
    /// happens here — health (and therefore mode) moves only at commit
    /// barriers.
    pub fn emit_event(&mut self, e: TsEvent, at: TimeSec) {
        self.last_time = at;
        if self.journal.is_some() {
            self.pending.push((e.kind().to_string(), e.payload()));
        }
        self.log.push(e);
    }

    /// Commits the pending batch (append + fsync) and re-aligns the
    /// mode ladder with the sink's health.
    pub fn commit(&mut self) {
        if let Some(sink) = &mut self.journal {
            sink.commit(&mut self.pending);
        }
        self.sync_mode();
    }

    pub fn journal_health(&self) -> JournalHealth {
        match &self.journal {
            None => JournalHealth::Detached,
            Some(sink) => sink.health(),
        }
    }

    /// Aligns the mode with journal health, emitting the transition
    /// exactly like the sequential server (counter, gauge,
    /// `ts.mode_changed` into ring and pending batch).
    pub fn sync_mode(&mut self) {
        let target = match self.journal_health() {
            JournalHealth::Detached | JournalHealth::Healthy => ServerMode::Normal,
            JournalHealth::Retrying { .. } => ServerMode::Degraded,
            JournalHealth::Down => ServerMode::ReadOnly,
        };
        if target == self.mode {
            return;
        }
        let from = self.mode;
        self.mode = target;
        let metrics = hka_obs::global();
        metrics.counter("ts.mode_changes").incr();
        metrics.gauge("ts.mode").set(match target {
            ServerMode::Normal => 0,
            ServerMode::Degraded => 1,
            ServerMode::ReadOnly => 2,
        });
        let e = TsEvent::ModeChanged {
            at: self.last_time,
            from,
            to: target,
        };
        if self.journal.is_some() {
            self.pending.push((e.kind().to_string(), e.payload()));
        }
        self.log.push(e);
    }
}

/// The serialized-path host: the coordinator's global subsystems plus
/// mutable access to every quiescent shard.
pub(crate) struct SerialHost<'a> {
    pub co: &'a mut Coordinator,
    pub shards: &'a mut [ShardState],
}

impl RequestHost for SerialHost<'_> {
    fn phl_last(&self, user: UserId) -> Option<StPoint> {
        self.shards[shard_of(self.shards.len(), user)]
            .store
            .phl(user)
            .and_then(|p| p.last())
            .copied()
    }

    fn record(&mut self, user: UserId, at: StPoint) {
        let shard = &mut self.shards[shard_of(self.shards.len(), user)];
        shard.store.record(user, at);
        shard.index.insert(user, at);
        // Keep the union current on the serialized path too (position 0
        // is fine: `apply` inserts immediately, no reordering happens).
        self.co.union.apply(&IndexDelta {
            pos: 0,
            user,
            point: at,
        });
    }

    fn check_fault(&mut self, site: &str) -> bool {
        if self.co.injector.check(site).is_some() {
            let metrics = hka_obs::global();
            metrics.counter("faults.injected").incr();
            metrics.counter(&format!("faults.{site}")).incr();
            true
        } else {
            false
        }
    }

    fn in_static_zone(&self, pos: &Point) -> bool {
        self.co.mixzones.in_static_zone(pos)
    }

    fn suppressed_at(&mut self, at: &StPoint) -> bool {
        self.co.mixzones.suppressed_at(at)
    }

    fn tolerance_for(&self, service: ServiceId) -> Tolerance {
        *self
            .co
            .services
            .get(&service)
            .unwrap_or(&self.co.config.default_tolerance)
    }

    fn mode(&self) -> ServerMode {
        self.co.mode
    }

    fn algo1_first(
        &mut self,
        at: &StPoint,
        user: UserId,
        k: usize,
        tolerance: &Tolerance,
    ) -> Generalization {
        let picks = if self.co.incremental_index {
            // The incrementally maintained union (DESIGN.md §15): one
            // owned index over all shards, kept current by the epoch
            // delta stream, rebuilt lazily from the authoritative
            // stores after an invalidation. Its generation-keyed memo
            // lets co-arriving batch members share identical window
            // queries — a stale answer can never be served because any
            // mutation bumps the generation.
            if !self.co.union.is_live() {
                self.co
                    .union
                    .rebuild(self.shards.iter().map(|s| &s.store), self.shards.len());
            }
            self.co.union.k_nearest_users(at, k, Some(user))
        } else {
            // Baseline: a per-request epoch snapshot over immutable
            // references to every shard's index. The merged k-candidate
            // query reproduces the single-index answer exactly (see
            // `IndexSnapshot`) — the union path above is differentially
            // pinned against this one.
            let snapshot =
                IndexSnapshot::new(self.shards.iter().map(|s| s.index.as_ref()).collect());
            snapshot.k_nearest_users(at, k, Some(user))
        };
        algorithm1_first_from(at, picks, k, tolerance)
    }

    fn algo1_subsequent(
        &mut self,
        at: &StPoint,
        stored: &[UserId],
        k: usize,
        tolerance: &Tolerance,
    ) -> Generalization {
        let shards = &*self.shards;
        algorithm1_subsequent_from(
            |u| shards[shard_of(shards.len(), u)].store.phl(u),
            at,
            stored,
            k,
            tolerance,
            &self.co.config.index.scale,
        )
    }

    fn try_unlink(&mut self, user: UserId, at: &StPoint, k: usize) -> UnlinkDecision {
        // The greedy heading selection is order-sensitive: feed the
        // shards' PHLs in ascending global user order, exactly as one
        // sequential store would iterate.
        let mut phls: Vec<_> = self.shards.iter().flat_map(|s| s.store.iter()).collect();
        phls.sort_by_key(|(u, _)| *u);
        self.co.mixzones.try_unlink_over(phls, user, at, k)
    }

    fn fresh_pseudonym(&mut self) -> Pseudonym {
        let p = Pseudonym(self.co.next_pseudonym);
        self.co.next_pseudonym += 1;
        p
    }

    fn next_msg_id(&mut self) -> MsgId {
        let m = MsgId(self.co.next_msg);
        self.co.next_msg += 1;
        m
    }

    fn randomize(
        &mut self,
        context: StBox,
        at: &StPoint,
        msg_id: u64,
        service: ServiceId,
    ) -> StBox {
        match &self.co.randomizer {
            Some(rz) => {
                let tolerance = *self
                    .co
                    .services
                    .get(&service)
                    .unwrap_or(&self.co.config.default_tolerance);
                rz.randomize(&context, at, msg_id, &tolerance)
            }
            None => context,
        }
    }

    fn emit(&mut self, e: TsEvent, at: TimeSec) {
        self.co.emit_event(e, at);
    }

    fn deliver(&mut self, user: UserId, req: SpRequest) {
        self.co.routes.insert(req.msg_id, user);
        self.co.outbox.push((user, req));
    }
}
