//! Per-shard worker state and the parallel-safe event path.
//!
//! Each shard owns the complete per-user state for its slice of the user
//! population: `UserState` (pseudonym, privacy profile, monitors,
//! pattern bookkeeping), the shard's `TrajectoryStore` partition, and a
//! `GridIndex` over it. A worker batch runs the *identical* extracted
//! strategy (`hka_core::strategy`) over this state; everything the
//! strategy could need but that a parallel-safe event can never reach
//! (mix-zone probes, Algorithm-1 searches, unlink attempts) is
//! implemented as `unreachable!()` so a scheduler classification bug
//! fails loudly instead of silently diverging from the sequential
//! server.

use hka_anonymity::{MsgId, Pseudonym, ServiceId, SpRequest};
use hka_core::strategy::{self, RequestHost, UserState};
use hka_core::{
    Generalization, RequestOutcome, ServerMode, Tolerance, TsConfig, TsEvent, UnlinkDecision,
};
use hka_faults::FaultInjector;
use hka_geo::{Point, Rect, StBox, StPoint, TimeSec};
use hka_trajectory::{IndexDelta, SpatialIndex, TrajectoryStore, UserId};
use std::collections::BTreeMap;

/// Shard-local ids live in a disjoint space: shard `i` allocates
/// `((i + 1) << 48) | n`, the coordinator allocates plain `n`. Message
/// ids and pseudonyms stay globally unique without cross-shard
/// coordination.
pub(crate) const SHARD_ID_SHIFT: u32 = 48;

/// One unit of parallel-safe work, tagged with its canonical submission
/// position so the coordinator can re-establish global order at the
/// barrier.
#[derive(Debug, Clone)]
pub(crate) struct Work {
    pub pos: u64,
    pub user: UserId,
    pub kind: WorkKind,
    /// The request's trace context, handed across the thread boundary so
    /// worker-side spans parent under the submitting request's root.
    /// `None` for locations and whenever tracing is off.
    pub ctx: Option<hka_obs::SpanContext>,
}

/// What the work item does.
#[derive(Debug, Clone)]
pub(crate) enum WorkKind {
    /// A positioning-infrastructure observation.
    Location { at: StPoint },
    /// A service request classified exact-forward (privacy off for this
    /// user/service, no faults, no randomizer).
    Request { at: StPoint, service: ServiceId },
}

/// One shard: the per-user state, trajectory partition, and index for
/// the users hashed onto it, plus the buffers a worker batch fills for
/// the coordinator to merge at the next barrier.
pub(crate) struct ShardState {
    pub id: usize,
    pub users: BTreeMap<UserId, UserState>,
    pub store: TrajectoryStore,
    pub index: Box<dyn SpatialIndex>,
    /// Static mix-zones, replicated from the coordinator (read-only on
    /// the worker path: crossing detection during ingest).
    pub static_zones: Vec<Rect>,
    /// Service tolerances, replicated from the coordinator (the strategy
    /// resolves the tolerance before the privacy-off branch).
    pub services: BTreeMap<ServiceId, Tolerance>,
    pub default_tolerance: Tolerance,
    /// Shared fault injector (`Arc` inside). Parallel batches are only
    /// scheduled while no plan is attached, so worker-side checks stay
    /// inert; the clone is defensive.
    pub injector: FaultInjector,
    /// The coordinator's mode, copied in at the start of each batch
    /// (mode only transitions at commit barriers).
    pub mode: ServerMode,
    next_msg: u64,
    next_pseudonym: u64,
    /// Events emitted this batch: `(pos, emit index within pos, event,
    /// timestamp)`.
    pub events_buf: Vec<(u64, u32, TsEvent, TimeSec)>,
    /// Forwarded requests this batch, with their canonical position.
    pub outbox_buf: Vec<(u64, UserId, SpRequest)>,
    /// Request outcomes this batch.
    pub outcomes_buf: Vec<(u64, UserId, RequestOutcome)>,
    /// Index mutations this batch, tagged with their canonical position:
    /// the coordinator drains these at the barrier and applies them to
    /// the incrementally maintained union index in global order.
    pub deltas_buf: Vec<IndexDelta>,
    cur_pos: u64,
    cur_idx: u32,
}

impl ShardState {
    pub fn new(id: usize, config: &TsConfig) -> Self {
        ShardState {
            id,
            users: BTreeMap::new(),
            store: TrajectoryStore::new(),
            index: config.backend.make(config.index),
            static_zones: Vec::new(),
            services: BTreeMap::new(),
            default_tolerance: config.default_tolerance,
            injector: FaultInjector::none(),
            mode: ServerMode::Normal,
            next_msg: 0,
            next_pseudonym: 0,
            events_buf: Vec::new(),
            outbox_buf: Vec::new(),
            outcomes_buf: Vec::new(),
            deltas_buf: Vec::new(),
            cur_pos: 0,
            cur_idx: 0,
        }
    }

    /// Runs one batch of parallel-safe work in canonical (position)
    /// order. Per-user order is preserved exactly because every event of
    /// a user lands on this one shard and the batch is pre-sorted by
    /// submission position.
    pub fn run(&mut self, work: Vec<Work>) {
        for w in work {
            self.cur_pos = w.pos;
            self.cur_idx = 0;
            // Hand the request's trace context to this worker thread for
            // the duration of the item; spans opened below then parent
            // under the submitting request's root.
            let handoff = w.ctx.map(|ctx| hka_obs::trace::swap_current(Some(ctx)));
            match w.kind {
                WorkKind::Location { at } => {
                    let ing = strategy::ingest_on(self, w.user, at);
                    if ing.entering {
                        if let Some(mut state) = self.users.remove(&w.user) {
                            if state.params.is_some() {
                                strategy::change_pseudonym_on(self, w.user, &mut state, ing.at);
                            }
                            self.users.insert(w.user, state);
                        }
                    }
                }
                WorkKind::Request { at, service } => {
                    let mut span = hka_obs::span("ts.handle_request");
                    span.attr("shard", hka_obs::Json::from(self.id as u64));
                    hka_obs::global().counter("ts.requests").incr();
                    let mut state = self
                        .users
                        .remove(&w.user)
                        .expect("scheduler routes only registered users to workers");
                    let outcome =
                        strategy::handle_request_on(self, w.user, &mut state, at, service);
                    self.users.insert(w.user, state);
                    self.outcomes_buf.push((w.pos, w.user, outcome));
                }
            }
            if let Some(prev) = handoff {
                hka_obs::trace::swap_current(prev);
            }
        }
    }
}

impl RequestHost for ShardState {
    fn phl_last(&self, user: UserId) -> Option<StPoint> {
        self.store.phl(user).and_then(|p| p.last()).copied()
    }

    fn record(&mut self, user: UserId, at: StPoint) {
        self.store.record(user, at);
        self.index.insert(user, at);
        self.deltas_buf.push(IndexDelta {
            pos: self.cur_pos,
            user,
            point: at,
        });
    }

    fn check_fault(&mut self, site: &str) -> bool {
        if self.injector.check(site).is_some() {
            let metrics = hka_obs::global();
            metrics.counter("faults.injected").incr();
            metrics.counter(&format!("faults.{site}")).incr();
            true
        } else {
            false
        }
    }

    fn in_static_zone(&self, pos: &Point) -> bool {
        self.static_zones.iter().any(|z| z.contains(pos))
    }

    fn suppressed_at(&mut self, _at: &StPoint) -> bool {
        unreachable!(
            "mix-zone probes never run on the parallel path (protected requests serialize)"
        )
    }

    fn tolerance_for(&self, service: ServiceId) -> Tolerance {
        *self
            .services
            .get(&service)
            .unwrap_or(&self.default_tolerance)
    }

    fn mode(&self) -> ServerMode {
        self.mode
    }

    fn algo1_first(
        &mut self,
        _at: &StPoint,
        _user: UserId,
        _k: usize,
        _tolerance: &Tolerance,
    ) -> Generalization {
        unreachable!("Algorithm 1 never runs on the parallel path (protected requests serialize)")
    }

    fn algo1_subsequent(
        &mut self,
        _at: &StPoint,
        _stored: &[UserId],
        _k: usize,
        _tolerance: &Tolerance,
    ) -> Generalization {
        unreachable!("Algorithm 1 never runs on the parallel path (protected requests serialize)")
    }

    fn try_unlink(&mut self, _user: UserId, _at: &StPoint, _k: usize) -> UnlinkDecision {
        unreachable!(
            "unlink attempts never run on the parallel path (protected requests serialize)"
        )
    }

    fn fresh_pseudonym(&mut self) -> Pseudonym {
        let p = Pseudonym(((self.id as u64 + 1) << SHARD_ID_SHIFT) | self.next_pseudonym);
        self.next_pseudonym += 1;
        p
    }

    fn next_msg_id(&mut self) -> MsgId {
        let m = MsgId(((self.id as u64 + 1) << SHARD_ID_SHIFT) | self.next_msg);
        self.next_msg += 1;
        m
    }

    fn randomize(
        &mut self,
        _context: StBox,
        _at: &StPoint,
        _msg_id: u64,
        _service: ServiceId,
    ) -> StBox {
        unreachable!("randomization never runs on the parallel path (a configured randomizer serializes everything)")
    }

    fn emit(&mut self, e: TsEvent, at: TimeSec) {
        self.events_buf.push((self.cur_pos, self.cur_idx, e, at));
        self.cur_idx += 1;
    }

    fn deliver(&mut self, user: UserId, req: SpRequest) {
        self.outbox_buf.push((self.cur_pos, user, req));
    }
}
