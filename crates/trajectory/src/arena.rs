//! Structure-of-arrays point storage: per-user columnar tracks.
//!
//! The brute backend answers every query by walking `Vec<StPoint>`
//! slices behind a `BTreeMap` of [`crate::Phl`]s — each point is an
//! interleaved `(x, y, t)` record, so a time-pruned nearest-point walk
//! touches all three fields of every candidate even when the time
//! column alone would prune it. [`SoaIndex`] keeps the same per-user
//! time-sorted tracks but stores each coordinate in its own column
//! (`xs`, `ys`, `ts`): the temporal pruning pass streams a dense `i64`
//! column, and only the surviving candidates touch the spatial columns.
//! Query semantics are identical to [`crate::BruteIndex`] — per-user
//! nearest observation under the space–time metric with the canonical
//! smallest-`(t, x, y)` tie rule — so the differential suites cover it
//! with no extra oracle.

use crate::spatial::{obs_cmp, IndexBackend, SpatialIndex};
use crate::{TrajectoryStore, UserId};
use hka_geo::{SpaceTimeScale, StBox, StPoint, TimeSec};
use std::collections::{BTreeMap, BTreeSet};

/// One user's time-sorted observations, one column per coordinate.
#[derive(Debug, Clone, Default)]
struct SoaTrack {
    xs: Vec<f64>,
    ys: Vec<f64>,
    ts: Vec<i64>,
}

impl SoaTrack {
    fn len(&self) -> usize {
        self.ts.len()
    }

    fn point(&self, i: usize) -> StPoint {
        StPoint::xyt(self.xs[i], self.ys[i], TimeSec(self.ts[i]))
    }

    fn push(&mut self, p: StPoint) {
        debug_assert!(
            self.ts.last().is_none_or(|last| p.t.0 >= *last),
            "SoA tracks require per-user non-decreasing timestamps"
        );
        self.xs.push(p.pos.x);
        self.ys.push(p.pos.y);
        self.ts.push(p.t.0);
    }

    /// Index of the first observation with `t >= t0` (time column only).
    fn lower_bound(&self, t0: i64) -> usize {
        self.ts.partition_point(|t| *t < t0)
    }

    /// Whether any observation falls inside the box — the columnar twin
    /// of [`crate::Phl::crosses`]: binary-search the time column, then
    /// scan only the window's spatial columns.
    fn crosses(&self, b: &StBox) -> bool {
        let lo = self.lower_bound(b.span.start().0);
        let hi = self.ts.partition_point(|t| *t <= b.span.end().0);
        (lo..hi).any(|i| {
            b.rect
                .contains(&hka_geo::Point::new(self.xs[i], self.ys[i]))
        })
    }

    /// The nearest observation to `q` under `scale` — the same
    /// outward-from-insertion-point walk as [`crate::Phl::nearest_point`]
    /// (each side prunes once its time displacement alone exceeds the
    /// best), including the canonical equal-distance tie rule.
    fn nearest(&self, q: &StPoint, scale: &SpaceTimeScale) -> Option<(f64, StPoint)> {
        if self.ts.is_empty() {
            return None;
        }
        let mid = self.lower_bound(q.t.0);
        let mps = scale.meters_per_second;
        let mut best: Option<(f64, StPoint)> = None;

        let consider = |i: usize, best: &mut Option<(f64, StPoint)>| {
            let p = self.point(i);
            let d = scale.dist_sq(q, &p);
            let wins = match best {
                None => true,
                Some((bd, bp)) => d < *bd || (d == *bd && obs_cmp(&p, bp).is_lt()),
            };
            if wins {
                *best = Some((d, p));
            }
        };

        let mut r = mid;
        let mut l = mid;
        loop {
            let mut advanced = false;
            if r < self.len() {
                let tdist = mps * (self.ts[r] - q.t.0) as f64;
                if best.is_none() || tdist * tdist <= best.unwrap().0 || mps == 0.0 {
                    consider(r, &mut best);
                    r += 1;
                    advanced = true;
                } else {
                    r = self.len();
                }
            }
            if l > 0 {
                let tdist = mps * (q.t.0 - self.ts[l - 1]) as f64;
                if best.is_none() || tdist * tdist <= best.unwrap().0 || mps == 0.0 {
                    consider(l - 1, &mut best);
                    l -= 1;
                    advanced = true;
                } else {
                    l = 0;
                }
            }
            if (r >= self.len() && l == 0) || !advanced {
                break;
            }
        }
        best
    }
}

/// The SoA scan backend behind the [`SpatialIndex`] seam: per-user
/// columnar tracks in user order, answering every query exactly like
/// the brute oracle but with cache-friendly column scans.
#[derive(Debug, Clone)]
pub struct SoaIndex {
    tracks: BTreeMap<UserId, SoaTrack>,
    scale: SpaceTimeScale,
    points: usize,
}

impl SoaIndex {
    /// An empty SoA index using `scale` for distance queries.
    pub fn new(scale: SpaceTimeScale) -> Self {
        SoaIndex {
            tracks: BTreeMap::new(),
            scale,
            points: 0,
        }
    }

    /// An SoA index over every point currently in `store`.
    pub fn build(store: &TrajectoryStore, scale: SpaceTimeScale) -> Self {
        let mut idx = SoaIndex::new(scale);
        for (user, phl) in store.iter() {
            for p in phl.points() {
                idx.insert(user, *p);
            }
        }
        idx
    }

    /// Number of indexed observations.
    pub fn len(&self) -> usize {
        self.points
    }

    /// Whether the index holds no observations.
    pub fn is_empty(&self) -> bool {
        self.points == 0
    }

    /// Indexes one observation (per-user non-decreasing timestamps,
    /// like every backend — the ingestion path clamps regressions).
    pub fn insert(&mut self, user: UserId, p: StPoint) {
        self.tracks.entry(user).or_default().push(p);
        self.points += 1;
    }
}

impl SpatialIndex for SoaIndex {
    fn backend(&self) -> IndexBackend {
        IndexBackend::Soa
    }

    fn scale(&self) -> &SpaceTimeScale {
        &self.scale
    }

    fn len(&self) -> usize {
        SoaIndex::len(self)
    }

    fn insert(&mut self, user: UserId, p: StPoint) {
        SoaIndex::insert(self, user, p);
    }

    fn users_crossing(&self, b: &StBox) -> BTreeSet<UserId> {
        self.tracks
            .iter()
            .filter(|(_, track)| track.crosses(b))
            .map(|(u, _)| *u)
            .collect()
    }

    fn count_users_crossing(&self, b: &StBox, limit: usize) -> usize {
        if limit == 0 {
            return 0;
        }
        let mut n = 0usize;
        for track in self.tracks.values() {
            if track.crosses(b) {
                n += 1;
                if n >= limit {
                    break;
                }
            }
        }
        n
    }

    fn k_nearest_users(
        &self,
        seed: &StPoint,
        k: usize,
        exclude: Option<UserId>,
    ) -> Vec<(UserId, StPoint)> {
        if k == 0 {
            return Vec::new();
        }
        let mut candidates: Vec<(UserId, f64, StPoint)> = Vec::new();
        for (user, track) in &self.tracks {
            if Some(*user) == exclude {
                continue;
            }
            if let Some((d, p)) = track.nearest(seed, &self.scale) {
                candidates.push((*user, d, p));
            }
        }
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        candidates.truncate(k);
        candidates.into_iter().map(|(u, _, p)| (u, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Rect, TimeInterval};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    #[test]
    fn tracks_store_columns_in_time_order() {
        let mut idx = SoaIndex::new(SpaceTimeScale::new(1.0));
        idx.insert(UserId(1), sp(1.0, 2.0, 0));
        idx.insert(UserId(1), sp(3.0, 4.0, 10));
        idx.insert(UserId(2), sp(5.0, 6.0, 5));
        assert_eq!(idx.len(), 3);
        let t1 = &idx.tracks[&UserId(1)];
        assert_eq!(
            (t1.xs.as_slice(), t1.ys.as_slice()),
            (&[1.0, 3.0][..], &[2.0, 4.0][..])
        );
        assert_eq!(t1.ts, vec![0, 10]);
    }

    #[test]
    fn matches_brute_on_a_small_world() {
        let mut store = TrajectoryStore::new();
        let mut s: u64 = 42;
        for i in 0..200u64 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (s >> 33) as f64 % 500.0;
            let y = (s >> 13) as f64 % 500.0;
            store.record(UserId(i % 17), sp(x, y, (i / 17) as i64 * 60));
        }
        let scale = SpaceTimeScale::new(1.4);
        let soa = SoaIndex::build(&store, scale);
        let brute = crate::BruteIndex::build(&store, scale);
        let b = StBox::new(
            Rect::from_bounds(50.0, 50.0, 300.0, 300.0),
            TimeInterval::new(TimeSec(0), TimeSec(400)),
        );
        assert_eq!(
            SpatialIndex::users_crossing(&soa, &b),
            SpatialIndex::users_crossing(&brute, &b)
        );
        for limit in [0usize, 1, 3, 100] {
            assert_eq!(
                soa.count_users_crossing(&b, limit),
                SpatialIndex::count_users_crossing(&brute, &b, limit)
            );
        }
        for k in [0usize, 1, 5, 17, 40] {
            for excl in [None, Some(UserId(3))] {
                assert_eq!(
                    SpatialIndex::k_nearest_users(&soa, &sp(100.0, 100.0, 120), k, excl),
                    brute.k_nearest_users(&sp(100.0, 100.0, 120), k, excl),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn equidistant_tie_resolves_to_canonical_point() {
        // Two points of user 1 exactly equidistant from the seed: the
        // smaller (t, x, y) must win regardless of insertion order.
        let scale = SpaceTimeScale::new(0.0); // time costs nothing
        let a = sp(-5.0, 0.0, 10);
        let b = sp(5.0, 0.0, 20);
        for order in [[a, b], [b, a]] {
            let mut idx = SoaIndex::new(scale);
            let mut sorted = order.to_vec();
            sorted.sort_by_key(|p| p.t);
            for p in sorted {
                idx.insert(UserId(1), p);
            }
            let got = SpatialIndex::k_nearest_users(&idx, &sp(0.0, 0.0, 15), 1, None);
            assert_eq!(got, vec![(UserId(1), a)]);
        }
    }
}
