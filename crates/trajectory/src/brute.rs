//! Reference implementations of the index queries by exhaustive scan.
//!
//! These mirror the paper's own complexity discussion of Algorithm 1:
//! "a brute-force algorithm by simply considering the nearest neighbor in
//! the PHL of each user and then taking the closest k points. In this
//! case, the worst case complexity of this step is O(k·n) where n is the
//! number of location points in the TS."
//!
//! They serve two purposes: differential testing of [`crate::GridIndex`],
//! and the un-indexed baseline of experiment T3.

use crate::spatial::{IndexBackend, SpatialIndex};
use crate::{TrajectoryStore, UserId};
use hka_geo::{SpaceTimeScale, StBox, StPoint};
use std::collections::BTreeSet;

/// The exhaustive-scan backend behind the [`SpatialIndex`] seam: owns
/// its own copy of the observations and answers every query with the
/// free functions in this module.
///
/// This is the differential **oracle** — the executable specification
/// the grid and R-tree backends are property-tested against — and the
/// un-indexed O(k·n) baseline of experiment T3. Like
/// [`TrajectoryStore::record`], [`SpatialIndex::insert`] requires
/// per-user non-decreasing timestamps (the TS ingestion path clamps
/// regressions before indexing).
#[derive(Debug, Clone)]
pub struct BruteIndex {
    store: TrajectoryStore,
    scale: SpaceTimeScale,
}

impl BruteIndex {
    /// An empty brute index using `scale` for distance queries.
    pub fn new(scale: SpaceTimeScale) -> Self {
        BruteIndex {
            store: TrajectoryStore::new(),
            scale,
        }
    }

    /// A brute index over a copy of `store`.
    pub fn build(store: &TrajectoryStore, scale: SpaceTimeScale) -> Self {
        BruteIndex {
            store: store.clone(),
            scale,
        }
    }
}

impl SpatialIndex for BruteIndex {
    fn backend(&self) -> IndexBackend {
        IndexBackend::Brute
    }

    fn scale(&self) -> &SpaceTimeScale {
        &self.scale
    }

    fn len(&self) -> usize {
        self.store.total_points()
    }

    fn insert(&mut self, user: UserId, p: StPoint) {
        self.store.record(user, p);
    }

    fn users_crossing(&self, b: &StBox) -> BTreeSet<UserId> {
        users_crossing(&self.store, b)
    }

    fn k_nearest_users(
        &self,
        seed: &StPoint,
        k: usize,
        exclude: Option<UserId>,
    ) -> Vec<(UserId, StPoint)> {
        k_nearest_users(&self.store, seed, k, exclude, &self.scale)
    }
}

/// For each of the `k` users (other than `exclude`) whose PHL comes
/// closest to `seed`, the closest observation — by scanning every PHL.
/// Results are sorted by distance, ties broken by user id.
pub fn k_nearest_users(
    store: &TrajectoryStore,
    seed: &StPoint,
    k: usize,
    exclude: Option<UserId>,
    scale: &SpaceTimeScale,
) -> Vec<(UserId, StPoint)> {
    if k == 0 {
        return Vec::new();
    }
    let mut candidates: Vec<(UserId, f64, StPoint)> = Vec::new();
    for (user, phl) in store.iter() {
        if Some(user) == exclude {
            continue;
        }
        if let Some(p) = phl.nearest_point(seed, scale) {
            candidates.push((user, scale.dist_sq(seed, &p), p));
        }
    }
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    candidates.truncate(k);
    candidates.into_iter().map(|(u, _, p)| (u, p)).collect()
}

/// Distinct users crossing `b`, by exhaustive scan.
pub fn users_crossing(store: &TrajectoryStore, b: &StBox) -> BTreeSet<UserId> {
    store
        .iter()
        .filter(|(_, phl)| phl.crosses(b))
        .map(|(u, _)| u)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Rect, TimeInterval, TimeSec};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    #[test]
    fn nearest_users_basic() {
        let mut store = TrajectoryStore::new();
        store.record(UserId(1), sp(1.0, 0.0, 0));
        store.record(UserId(2), sp(2.0, 0.0, 0));
        store.record(UserId(3), sp(9.0, 0.0, 0));
        let got = k_nearest_users(&store, &sp(0.0, 0.0, 0), 2, None, &SpaceTimeScale::new(1.0));
        let ids: Vec<u64> = got.iter().map(|(u, _)| u.raw()).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn exclusion_and_scarcity() {
        let mut store = TrajectoryStore::new();
        store.record(UserId(1), sp(1.0, 0.0, 0));
        store.record(UserId(2), sp(2.0, 0.0, 0));
        let scale = SpaceTimeScale::new(1.0);
        let got = k_nearest_users(&store, &sp(0.0, 0.0, 0), 5, Some(UserId(1)), &scale);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, UserId(2));
        assert!(k_nearest_users(&store, &sp(0.0, 0.0, 0), 0, None, &scale).is_empty());
    }

    #[test]
    fn ties_break_by_user_id() {
        let mut store = TrajectoryStore::new();
        store.record(UserId(9), sp(1.0, 0.0, 0));
        store.record(UserId(3), sp(-1.0, 0.0, 0));
        let got = k_nearest_users(&store, &sp(0.0, 0.0, 0), 1, None, &SpaceTimeScale::new(1.0));
        assert_eq!(got[0].0, UserId(3));
    }

    #[test]
    fn users_crossing_matches_store_helper() {
        let mut store = TrajectoryStore::new();
        store.record(UserId(1), sp(0.0, 0.0, 0));
        store.record(UserId(2), sp(50.0, 50.0, 5));
        let b = StBox::new(
            Rect::from_bounds(-1.0, -1.0, 1.0, 1.0),
            TimeInterval::new(TimeSec(0), TimeSec(10)),
        );
        let brute: Vec<UserId> = users_crossing(&store, &b).into_iter().collect();
        assert_eq!(brute, store.users_crossing(&b));
    }
}
