//! Granularity-aware PHL compaction: time-partitioned folding of old
//! precise observations into per-granule representatives.
//!
//! A trusted server that never forgets holds every location update ever
//! received — unbounded resident memory. The paper's own machinery says
//! what old history is still *for*: LBQID recurrence formulas observe
//! the past at the resolution of their time granularities (a "Mondays"
//! pattern cares which granule a visit fell in and where, not about
//! each 10-second fix). Compaction exploits exactly that: points
//! strictly older than a policy horizon are folded so that each granule
//! of the policy granularity keeps at most six representatives — the
//! granule's first and last observations and its four spatial extremes.
//!
//! What folding preserves, per granule, for the compacted (old) region:
//!
//! * **occupancy** — a granule holds points after compaction iff it did
//!   before (so granule-resolution pattern bookkeeping is unchanged);
//! * **entry/exit** — the first and last observations survive verbatim
//!   (so the PHL's overall time span and granule dwell spans survive);
//! * **spatial extent** — the per-granule bounding box is exact (so any
//!   region-containment answer at granule resolution that was driven by
//!   an extreme point is unchanged, and no answer can widen).
//!
//! What it deliberately drops is intra-granule precision older than the
//! horizon. Requests the live server actually evaluates — Algorithm 1
//! neighbourhoods and anonymity-set boxes around *current* requests —
//! look only at the recent window, which compaction never touches; the
//! differential tests in `tests/checkpoint.rs` pin that Algorithm 1
//! outputs and auditor k-timelines are byte-identical with and without
//! compaction. Points falling in granularity *gaps* (e.g. a Saturday
//! under `Weekdays`) fold at civil-day resolution instead of being kept
//! forever or lumped into a neighbouring granule.

use hka_geo::{StPoint, TimeSec};
use hka_granules::Granularity;

use crate::{Phl, TrajectoryStore};

/// What to fold and how coarsely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Observations younger than `now - horizon` (in seconds) are never
    /// touched. Choose this at least as wide as the widest window any
    /// live query looks back over.
    pub horizon: i64,
    /// The coarsest granularity any live LBQID still needs over old
    /// history; folded granules are granules of this.
    pub granularity: Granularity,
}

impl CompactionPolicy {
    /// A policy keeping `horizon` seconds precise and folding older
    /// points into granules of `granularity`.
    pub fn new(horizon: i64, granularity: Granularity) -> Self {
        CompactionPolicy {
            horizon,
            granularity,
        }
    }

    /// The oldest instant left untouched when compacting at `now`.
    pub fn cutoff(&self, now: TimeSec) -> TimeSec {
        TimeSec(now.0.saturating_sub(self.horizon))
    }
}

/// Aggregate outcome of one compaction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Users whose PHL lost at least one point.
    pub users_compacted: u64,
    /// Points across all processed PHLs before the pass.
    pub points_before: u64,
    /// Points remaining after the pass.
    pub points_after: u64,
    /// Granules (and gap-days) the folded region partitioned into.
    pub granules: u64,
}

impl CompactionStats {
    /// Points removed by the pass.
    pub fn points_dropped(&self) -> u64 {
        self.points_before - self.points_after
    }

    /// Folds another pass (or another PHL's outcome) into this one.
    pub fn absorb(&mut self, other: CompactionStats) {
        self.users_compacted += other.users_compacted;
        self.points_before += other.points_before;
        self.points_after += other.points_after;
        self.granules += other.granules;
    }
}

/// The partition key for one old observation: its granule, or — in a
/// granularity gap — its civil day, kept distinct so gap points fold at
/// day resolution rather than joining a neighbouring granule. Both
/// components are non-decreasing in time, so equal keys are contiguous
/// in a time-ordered PHL.
fn fold_key(granularity: &Granularity, t: TimeSec) -> (bool, i64) {
    match granularity.granule_of(t) {
        Some(g) => (false, g),
        None => (true, t.day_index()),
    }
}

/// Folds the time-ordered prefix `points[..cut]`, returning the new
/// point vector (folded prefix + untouched suffix) and the number of
/// granules the prefix partitioned into. Pure so it can be unit-tested
/// against the module invariants directly.
pub(crate) fn fold_points(
    points: &[StPoint],
    cut: usize,
    granularity: &Granularity,
) -> (Vec<StPoint>, u64) {
    let mut out = Vec::with_capacity(points.len());
    let mut granules = 0u64;
    let mut i = 0;
    while i < cut {
        let key = fold_key(granularity, points[i].t);
        let start = i;
        while i < cut && fold_key(granularity, points[i].t) == key {
            i += 1;
        }
        granules += 1;
        let group = &points[start..i];
        // Representatives: entry, exit, and the four spatial extremes.
        let mut keep = [0usize, group.len() - 1, 0, 0, 0, 0];
        for (j, p) in group.iter().enumerate() {
            if p.pos.x < group[keep[2]].pos.x {
                keep[2] = j;
            }
            if p.pos.x > group[keep[3]].pos.x {
                keep[3] = j;
            }
            if p.pos.y < group[keep[4]].pos.y {
                keep[4] = j;
            }
            if p.pos.y > group[keep[5]].pos.y {
                keep[5] = j;
            }
        }
        let mut keep = keep.to_vec();
        keep.sort_unstable();
        keep.dedup();
        out.extend(keep.into_iter().map(|j| group[j]));
    }
    out.extend_from_slice(&points[cut..]);
    (out, granules)
}

impl Phl {
    /// Folds observations strictly older than the policy cutoff at
    /// `now`; newer observations are untouched. Idempotent for a fixed
    /// `(now, policy)`: a second pass finds ≤6 points per granule and
    /// keeps them all.
    pub fn compact(&mut self, now: TimeSec, policy: &CompactionPolicy) -> CompactionStats {
        let cutoff = policy.cutoff(now);
        let points = self.points();
        let before = points.len() as u64;
        let cut = points.partition_point(|p| p.t < cutoff);
        if cut == 0 {
            return CompactionStats {
                points_before: before,
                points_after: before,
                ..CompactionStats::default()
            };
        }
        let (folded, granules) = fold_points(points, cut, &policy.granularity);
        let after = folded.len() as u64;
        self.replace_points(folded);
        CompactionStats {
            users_compacted: u64::from(after < before),
            points_before: before,
            points_after: after,
            granules,
        }
    }

    /// Approximate resident bytes of this history (points only; the
    /// quantity compaction bounds).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of_val(self.points())
    }
}

impl TrajectoryStore {
    /// Compacts every user's PHL under one policy, keeping the store's
    /// point accounting consistent. Returns the aggregate stats.
    pub fn compact(&mut self, now: TimeSec, policy: &CompactionPolicy) -> CompactionStats {
        let mut stats = CompactionStats::default();
        self.for_each_phl(|phl| stats.absorb(phl.compact(now, policy)));
        self.set_total_points(stats.points_after as usize);
        stats
    }

    /// Approximate resident bytes of all histories.
    pub fn approx_bytes(&self) -> usize {
        self.iter().map(|(_, phl)| phl.approx_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UserId;
    use hka_geo::{Rect, StBox, TimeInterval, DAY, HOUR};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    /// Two weeks of dense weekday commuting plus a weekend excursion,
    /// then a recent day of points inside the horizon.
    fn dense_history() -> Phl {
        let mut pts = Vec::new();
        for day in 0..14i64 {
            for step in 0..48i64 {
                let t = day * DAY + 8 * HOUR + step * 600;
                pts.push(sp(step as f64 * 12.5, day as f64 * 3.0, t));
            }
        }
        Phl::from_points(pts)
    }

    #[test]
    fn folding_preserves_occupancy_span_and_bbox_per_granule() {
        let mut phl = dense_history();
        let original = phl.clone();
        let policy = CompactionPolicy::new(2 * DAY, Granularity::Days);
        let now = TimeSec(14 * DAY);
        let stats = phl.compact(now, &policy);
        assert!(stats.points_dropped() > 0);
        assert_eq!(stats.points_after as usize, phl.len());

        let cutoff = policy.cutoff(now);
        for g in 0..14 {
            let span = Granularity::Days.granule_span(g);
            if span.end() >= cutoff {
                continue; // not (fully) folded
            }
            let old = original.in_interval(&span);
            let new = phl.in_interval(&span);
            assert_eq!(old.is_empty(), new.is_empty(), "occupancy of day {g}");
            if old.is_empty() {
                continue;
            }
            assert!(new.len() <= 6, "≤6 representatives, day {g}");
            assert_eq!(old.first(), new.first(), "entry of day {g}");
            assert_eq!(old.last(), new.last(), "exit of day {g}");
            let bbox = |pts: &[StPoint]| {
                let xs: Vec<f64> = pts.iter().map(|p| p.pos.x).collect();
                let ys: Vec<f64> = pts.iter().map(|p| p.pos.y).collect();
                (
                    xs.iter().cloned().fold(f64::INFINITY, f64::min),
                    xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    ys.iter().cloned().fold(f64::INFINITY, f64::min),
                    ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                )
            };
            assert_eq!(bbox(old), bbox(new), "bbox of day {g}");
        }
        // The recent window is untouched, point for point.
        let recent = TimeInterval::new(cutoff, TimeSec(i64::MAX));
        assert_eq!(original.in_interval(&recent), phl.in_interval(&recent));
        // Overall span survives (entry of the very first granule kept).
        assert_eq!(original.time_span(), phl.time_span());
    }

    #[test]
    fn compaction_is_idempotent() {
        let mut phl = dense_history();
        let policy = CompactionPolicy::new(DAY, Granularity::Weeks);
        let now = TimeSec(14 * DAY);
        phl.compact(now, &policy);
        let once = phl.clone();
        let stats = phl.compact(now, &policy);
        assert_eq!(phl, once, "second pass must be a no-op");
        assert_eq!(stats.points_dropped(), 0);
        assert_eq!(stats.users_compacted, 0);
    }

    #[test]
    fn gap_points_fold_at_day_resolution() {
        // Weekdays granularity: Saturday/Sunday (days 5, 6) are gaps.
        let mut pts = Vec::new();
        for day in [4i64, 5, 6, 7] {
            for step in 0..10i64 {
                pts.push(sp(step as f64, day as f64, day * DAY + step * HOUR));
            }
        }
        let mut phl = Phl::from_points(pts);
        let policy = CompactionPolicy::new(0, Granularity::Weekdays);
        let stats = phl.compact(TimeSec(9 * DAY), &policy);
        // 2 weekday granules + 2 gap days, each folded independently.
        assert_eq!(stats.granules, 4);
        for day in [4i64, 5, 6, 7] {
            let span = TimeInterval::new(TimeSec(day * DAY), TimeSec((day + 1) * DAY - 1));
            let kept = phl.in_interval(&span);
            assert!(!kept.is_empty(), "day {day} still occupied");
            assert!(kept.len() <= 6, "day {day} folded");
        }
    }

    #[test]
    fn crossing_answers_driven_by_extremes_survive() {
        let mut phl = dense_history();
        let boxes: Vec<StBox> = (0..12)
            .map(|g| {
                StBox::new(
                    Rect::from_bounds(500.0, -1.0, 700.0, 50.0),
                    Granularity::Days.granule_span(g),
                )
            })
            .collect();
        let before: Vec<bool> = boxes.iter().map(|b| phl.crosses(b)).collect();
        phl.compact(
            TimeSec(14 * DAY),
            &CompactionPolicy::new(DAY, Granularity::Days),
        );
        let after: Vec<bool> = boxes.iter().map(|b| phl.crosses(b)).collect();
        assert_eq!(before, after, "granule-aligned extreme-driven crossings");
    }

    #[test]
    fn store_compaction_keeps_point_accounting() {
        let mut store = TrajectoryStore::new();
        for user in 1..=5u64 {
            for day in 0..4i64 {
                for step in 0..20i64 {
                    store.record(
                        UserId(user),
                        sp(step as f64, user as f64, day * DAY + step * 60),
                    );
                }
            }
        }
        let before_bytes = store.approx_bytes();
        let stats = store.compact(
            TimeSec(4 * DAY),
            &CompactionPolicy::new(DAY, Granularity::Days),
        );
        assert_eq!(stats.users_compacted, 5);
        assert_eq!(store.total_points(), stats.points_after as usize);
        assert_eq!(
            store.total_points(),
            store.iter().map(|(_, p)| p.len()).sum::<usize>(),
            "accounting matches reality"
        );
        assert!(
            store.approx_bytes() < before_bytes,
            "memory actually shrank"
        );
    }

    #[test]
    fn empty_and_all_recent_histories_are_untouched() {
        let mut empty = Phl::new();
        let policy = CompactionPolicy::new(DAY, Granularity::Days);
        let stats = empty.compact(TimeSec(100), &policy);
        assert_eq!((stats.points_before, stats.points_after), (0, 0));

        let mut recent = Phl::from_points(vec![sp(0.0, 0.0, 50), sp(1.0, 0.0, 90)]);
        let stats = recent.compact(TimeSec(100), &policy);
        assert_eq!(stats.points_dropped(), 0);
        assert_eq!(recent.len(), 2);
    }
}
