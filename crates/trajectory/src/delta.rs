//! The incrementally maintained epoch union index.
//!
//! The sharded trusted server used to answer every protected request by
//! constructing an [`crate::IndexSnapshot`] over all shard indices and
//! merging per-partition k-nearest answers — one full per-shard query
//! fan-out per request. [`UnionIndex`] replaces that re-union with a
//! single owned [`SpatialIndex`] over *all* partitions, kept current by
//! applying the per-shard insertion deltas ([`IndexDelta`]) that worker
//! batches publish at each epoch barrier:
//!
//! * **Deltas.** Every observation a shard indexes during an epoch is
//!   also logged as an `IndexDelta` tagged with its canonical
//!   submission position. At the barrier the coordinator drains all
//!   shards' delta buffers, sorts by position, and applies them — the
//!   union then holds exactly the points a sequential server would,
//!   inserted in the same order. (Clamped re-timestamps arrive already
//!   normalized: the ingestion path clamps before it records, so a
//!   delta stream never violates per-user time ordering.)
//!
//! * **Generations.** Every mutation (delta application, rebuild,
//!   invalidation) bumps a generation counter. Cached query results are
//!   keyed by generation, so a stale answer can never be served — which
//!   is what makes sharing window queries across a batch of co-arriving
//!   protected requests order-equivalent to sequential processing by
//!   construction (DESIGN.md §15).
//!
//! * **Invalidation.** Anything the delta stream cannot express —
//!   compaction (points *removed*), a restore that bypasses the record
//!   path, a shard-count or backend change — calls
//!   [`UnionIndex::invalidate`]; the union lazily rebuilds from the
//!   authoritative per-shard stores on the next query. A fresh
//!   `UnionIndex` starts invalid for the same reason: it has not seen
//!   the stores yet.
//!
//! Exactness relies on the canonical equal-distance tie rule
//! (`spatial::obs_cmp`): with scan-order-independent answers, a union
//! built in any insertion order agrees with the per-shard merge and
//! with a from-scratch sequential build, which is what the differential
//! suites pin.

use crate::{GridIndexConfig, IndexBackend, SpatialIndex, TrajectoryStore, UserId};
use hka_geo::{StBox, StPoint};
use std::collections::{BTreeSet, HashMap};

/// One shard-published index mutation: `user` gained observation
/// `point` at canonical submission position `pos`. Timestamps are
/// post-normalization (the ingest path clamps regressions first).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexDelta {
    /// Canonical submission position (global order across shards).
    pub pos: u64,
    /// The observed user.
    pub user: UserId,
    /// The indexed observation.
    pub point: StPoint,
}

/// Memo key for a k-nearest query: seed coordinates (by bit pattern —
/// exact equality, no epsilon), k, and the excluded user.
type MemoKey = (u64, u64, i64, usize, Option<UserId>);

/// Memo key for a window (`users_crossing`) query: the box corners by
/// bit pattern and the time span. Exact equality only, like
/// [`MemoKey`] — two boxes that differ in the last ulp are different
/// queries.
type WindowKey = (u64, u64, u64, u64, i64, i64);

fn window_key(b: &StBox) -> WindowKey {
    (
        b.rect.min().x.to_bits(),
        b.rect.min().y.to_bits(),
        b.rect.max().x.to_bits(),
        b.rect.max().y.to_bits(),
        b.span.start().0,
        b.span.end().0,
    )
}

/// A generation-stamped, incrementally maintained union index over
/// user-disjoint partitions. See the module docs for the protocol.
#[derive(Debug)]
pub struct UnionIndex {
    backend: IndexBackend,
    config: GridIndexConfig,
    index: Box<dyn SpatialIndex>,
    /// Bumped on every mutation; memoized answers are only served while
    /// their recorded generation still matches.
    generation: u64,
    /// Whether `index` faithfully reflects the partition stores. When
    /// false, queries must rebuild first ([`UnionIndex::rebuild`]).
    live: bool,
    /// How many partitions the union was last built over; a different
    /// layout invalidates (the delta streams would not line up).
    partitions: usize,
    memo: HashMap<MemoKey, Vec<(UserId, StPoint)>>,
    /// Window-query memo, same generation fence as `memo`. Crossing
    /// sets and early-exit counts are cached separately: a count with
    /// `limit` cannot answer a later set query, and a set is often
    /// never materialized on the count path.
    window_memo: HashMap<WindowKey, BTreeSet<UserId>>,
    count_memo: HashMap<(WindowKey, usize), usize>,
    memo_generation: u64,
}

impl UnionIndex {
    /// A new union for `partitions` user-disjoint shards. Starts
    /// invalid: the first query (or an explicit [`UnionIndex::rebuild`])
    /// loads the authoritative stores.
    pub fn new(backend: IndexBackend, config: GridIndexConfig, partitions: usize) -> Self {
        UnionIndex {
            backend,
            config,
            index: backend.make(config),
            generation: 0,
            live: false,
            partitions,
            memo: HashMap::new(),
            window_memo: HashMap::new(),
            count_memo: HashMap::new(),
            memo_generation: 0,
        }
    }

    /// The current generation stamp (bumped on every mutation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the union currently reflects the partition stores.
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// The partition count the union was created/rebuilt for.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The backend the union instantiates.
    pub fn backend(&self) -> IndexBackend {
        self.backend
    }

    /// Number of indexed observations (0 while invalid).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the union holds no observations.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Marks the union stale and drops its storage. Call for anything
    /// the delta stream cannot express: compaction, restore, a backend
    /// or shard-layout change. The next query rebuilds lazily.
    pub fn invalidate(&mut self) {
        if self.live || !self.index.is_empty() {
            self.index = self.backend.make(self.config);
        }
        self.live = false;
        self.generation += 1;
        self.clear_memos();
        hka_obs::global().counter("union.invalidations").incr();
    }

    /// Applies one published delta. A no-op while invalid (the pending
    /// rebuild will read the point from its store instead — callers
    /// still drain their buffers so deltas are never applied twice).
    pub fn apply(&mut self, delta: &IndexDelta) {
        if !self.live {
            return;
        }
        self.index.insert(delta.user, delta.point);
        self.generation += 1;
        hka_obs::global().counter("union.deltas_applied").incr();
    }

    /// Applies a drained epoch's deltas in canonical position order —
    /// the same global insertion order a sequential server would use.
    /// The slice may arrive unsorted (one run per shard); it is sorted
    /// here by `pos`.
    pub fn apply_epoch(&mut self, deltas: &mut Vec<IndexDelta>) {
        if self.live && !deltas.is_empty() {
            deltas.sort_by_key(|d| d.pos);
            for d in deltas.iter() {
                self.index.insert(d.user, d.point);
            }
            self.generation += 1;
            hka_obs::global()
                .counter("union.deltas_applied")
                .add(deltas.len() as u64);
        }
        deltas.clear();
    }

    /// Rebuilds the union from the authoritative partition stores
    /// (global user order, time order within each user) and marks it
    /// live for `partitions` shards.
    pub fn rebuild<'a>(
        &mut self,
        stores: impl IntoIterator<Item = &'a TrajectoryStore>,
        partitions: usize,
    ) {
        let mut index = self.backend.make(self.config);
        let mut phls: Vec<_> = stores.into_iter().flat_map(|s| s.iter()).collect();
        phls.sort_by_key(|(u, _)| *u);
        for (user, phl) in phls {
            for p in phl.points() {
                index.insert(user, *p);
            }
        }
        self.index = index;
        self.live = true;
        self.partitions = partitions;
        self.generation += 1;
        self.clear_memos();
        hka_obs::global().counter("union.rebuilds").incr();
    }

    /// The global k-nearest-users query against the live union, served
    /// from the generation-keyed memo when an identical query already
    /// ran at this generation (co-arriving batch members with no
    /// intervening mutation — the only case where sharing is sound).
    ///
    /// # Panics
    /// If the union is not live; callers rebuild first.
    pub fn k_nearest_users(
        &mut self,
        seed: &StPoint,
        k: usize,
        exclude: Option<UserId>,
    ) -> Vec<(UserId, StPoint)> {
        assert!(self.live, "query against an invalidated union index");
        self.fence_memo();
        let key = (
            seed.pos.x.to_bits(),
            seed.pos.y.to_bits(),
            seed.t.0,
            k,
            exclude,
        );
        if let Some(hit) = self.memo.get(&key) {
            hka_obs::global().counter("union.memo_hits").incr();
            return hit.clone();
        }
        let out = self.index.k_nearest_users(seed, k, exclude);
        self.memo.insert(key, out.clone());
        out
    }

    /// Drops every memoized query result without touching the index or
    /// its generation. Correctness never requires this — the generation
    /// stamp already fences staleness — but benchmarks use it to time
    /// the memo-miss path, and long-lived epochs can call it to bound
    /// memory.
    pub fn clear_memo(&mut self) {
        self.clear_memos();
    }

    fn clear_memos(&mut self) {
        self.memo.clear();
        self.window_memo.clear();
        self.count_memo.clear();
    }

    /// Drops every memo table if the index has mutated since they were
    /// filled. All memoized queries share one fence: any mutation bumps
    /// `generation`, so a single stale table implies they all are.
    fn fence_memo(&mut self) {
        if self.memo_generation != self.generation {
            self.clear_memos();
            self.memo_generation = self.generation;
        }
    }

    /// Distinct users crossing `b`, against the live union — served
    /// from the generation-keyed window memo when the identical box was
    /// already queried at this generation (Algorithm 1 probes the same
    /// candidate windows repeatedly across a co-arriving batch).
    ///
    /// # Panics
    /// If the union is not live; callers rebuild first.
    pub fn users_crossing(&mut self, b: &StBox) -> BTreeSet<UserId> {
        assert!(self.live, "query against an invalidated union index");
        self.fence_memo();
        let key = window_key(b);
        if let Some(hit) = self.window_memo.get(&key) {
            hka_obs::global().counter("union.memo_hits").incr();
            return hit.clone();
        }
        let out = self.index.users_crossing(b);
        self.window_memo.insert(key, out.clone());
        out
    }

    /// Early-exit crossing count, against the live union. Memoized per
    /// `(box, limit)`: a count capped at `limit` says nothing about any
    /// other limit, so the limit is part of the key. A full crossing
    /// set already memoized for the same box answers any limit and is
    /// preferred over a fresh index walk.
    ///
    /// # Panics
    /// If the union is not live; callers rebuild first.
    pub fn count_users_crossing(&mut self, b: &StBox, limit: usize) -> usize {
        assert!(self.live, "query against an invalidated union index");
        self.fence_memo();
        let key = window_key(b);
        if let Some(set) = self.window_memo.get(&key) {
            hka_obs::global().counter("union.memo_hits").incr();
            return set.len().min(limit);
        }
        if let Some(&hit) = self.count_memo.get(&(key, limit)) {
            hka_obs::global().counter("union.memo_hits").incr();
            return hit;
        }
        let out = self.index.count_users_crossing(b, limit);
        self.count_memo.insert((key, limit), out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexSnapshot;
    use hka_geo::TimeSec;

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn partitioned(points: &[(UserId, StPoint)], shards: usize) -> Vec<TrajectoryStore> {
        let mut stores: Vec<TrajectoryStore> =
            (0..shards).map(|_| TrajectoryStore::new()).collect();
        for (u, p) in points {
            stores[(u.0 % shards as u64) as usize].record(*u, *p);
        }
        stores
    }

    #[test]
    fn starts_invalid_and_rebuilds_lazily() {
        let mut union = UnionIndex::new(IndexBackend::Grid, GridIndexConfig::default(), 4);
        assert!(!union.is_live());
        assert_eq!(union.generation(), 0);
        let stores = partitioned(&[(UserId(1), sp(5.0, 5.0, 10))], 4);
        union.rebuild(stores.iter(), 4);
        assert!(union.is_live());
        assert_eq!(union.len(), 1);
        assert_eq!(
            union.k_nearest_users(&sp(0.0, 0.0, 0), 1, None),
            vec![(UserId(1), sp(5.0, 5.0, 10))]
        );
    }

    #[test]
    fn deltas_keep_the_union_equal_to_a_fresh_snapshot_merge() {
        let cfg = GridIndexConfig::default();
        let mut s: u64 = 7;
        let mut next = |m: f64| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 % m
        };
        let shards = 3usize;
        let mut stores: Vec<TrajectoryStore> =
            (0..shards).map(|_| TrajectoryStore::new()).collect();
        let mut indices: Vec<Box<dyn SpatialIndex>> =
            (0..shards).map(|_| IndexBackend::Grid.make(cfg)).collect();
        let mut union = UnionIndex::new(IndexBackend::Grid, cfg, shards);
        union.rebuild(stores.iter(), shards);

        let mut pending: Vec<IndexDelta> = Vec::new();
        for pos in 0..120u64 {
            let user = UserId(next(15.0) as u64 + 1);
            let sid = (user.0 % shards as u64) as usize;
            let last_t = stores[sid]
                .phl(user)
                .and_then(|p| p.last())
                .map_or(0, |p| p.t.0);
            let p = sp(next(800.0), next(800.0), last_t + next(90.0) as i64);
            stores[sid].record(user, p);
            indices[sid].insert(user, p);
            pending.push(IndexDelta {
                pos,
                user,
                point: p,
            });

            // Epoch barrier every 7 events: drain + apply, then compare
            // against a fresh re-union of the shard indices.
            if pos % 7 == 6 {
                union.apply_epoch(&mut pending);
                let snap = IndexSnapshot::new(indices.iter().map(|i| i.as_ref()).collect());
                let seed = sp(next(800.0), next(800.0), next(3600.0) as i64);
                for k in [1usize, 4, 9] {
                    assert_eq!(
                        union.k_nearest_users(&seed, k, Some(user)),
                        snap.k_nearest_users(&seed, k, Some(user)),
                        "pos={pos} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn memo_serves_only_within_one_generation() {
        let mut union = UnionIndex::new(IndexBackend::Grid, GridIndexConfig::default(), 1);
        let mut store = TrajectoryStore::new();
        store.record(UserId(1), sp(10.0, 0.0, 0));
        union.rebuild([&store], 1);
        let seed = sp(0.0, 0.0, 0);
        let first = union.k_nearest_users(&seed, 2, None);
        assert_eq!(union.k_nearest_users(&seed, 2, None), first); // memo hit
                                                                  // A mutation bumps the generation: the same query must see the
                                                                  // new point, not the memoized answer.
        union.apply(&IndexDelta {
            pos: 1,
            user: UserId(2),
            point: sp(1.0, 0.0, 0),
        });
        let after = union.k_nearest_users(&seed, 2, None);
        assert_eq!(after.len(), 2);
        assert_eq!(after[0].0, UserId(2));
    }

    #[test]
    fn window_memo_serves_only_within_one_generation() {
        let mut union = UnionIndex::new(IndexBackend::Grid, GridIndexConfig::default(), 1);
        let mut store = TrajectoryStore::new();
        store.record(UserId(1), sp(10.0, 10.0, 5));
        union.rebuild([&store], 1);
        let b = StBox::new(
            hka_geo::Rect::from_bounds(6.0, 6.0, 14.0, 14.0),
            hka_geo::TimeInterval::new(TimeSec(0), TimeSec(20)),
        );
        let first = union.users_crossing(&b);
        assert_eq!(first.len(), 1);
        assert_eq!(union.users_crossing(&b), first); // memo hit
                                                     // A memoized full set answers any limited count.
        assert_eq!(union.count_users_crossing(&b, usize::MAX), 1);
        assert_eq!(union.count_users_crossing(&b, 0), 0);
        // A mutation bumps the generation: the same window must see the
        // new user, not the memoized answer.
        union.apply(&IndexDelta {
            pos: 1,
            user: UserId(2),
            point: sp(11.0, 11.0, 6),
        });
        let after = union.users_crossing(&b);
        assert_eq!(after.len(), 2);
        assert!(after.contains(&UserId(2)));
        assert_eq!(union.count_users_crossing(&b, usize::MAX), 2);
        // Count-only path (no prior set query at this generation) also
        // respects the fence and the limit cap.
        union.apply(&IndexDelta {
            pos: 2,
            user: UserId(3),
            point: sp(9.0, 9.0, 7),
        });
        assert_eq!(union.count_users_crossing(&b, 2), 2);
        assert_eq!(union.count_users_crossing(&b, 2), 2); // memo hit
        assert_eq!(union.count_users_crossing(&b, usize::MAX), 3);
    }

    #[test]
    fn invalidation_drops_state_and_applies_become_noops() {
        let mut union = UnionIndex::new(IndexBackend::RTree, GridIndexConfig::default(), 2);
        let mut store = TrajectoryStore::new();
        store.record(UserId(1), sp(1.0, 1.0, 0));
        union.rebuild([&store], 2);
        assert_eq!(union.len(), 1);
        let g = union.generation();
        union.invalidate();
        assert!(!union.is_live());
        assert!(union.generation() > g);
        assert_eq!(union.len(), 0);
        // Deltas against an invalid union are dropped, not queued: the
        // rebuild reads the authoritative store instead.
        union.apply(&IndexDelta {
            pos: 9,
            user: UserId(2),
            point: sp(2.0, 2.0, 0),
        });
        store.record(UserId(2), sp(2.0, 2.0, 0));
        union.rebuild([&store], 2);
        assert_eq!(union.len(), 2);
    }
}
