//! A uniform space–time grid index over the trajectory store.
//!
//! The paper notes that the expensive step of Algorithm 1 — finding "the
//! smallest 3D space (2D area + time) containing ⟨x,y,t⟩ and crossed by k
//! trajectories" — costs O(k·n) by brute force, and that "optimizations
//! may be inspired by the work on indexing moving objects". This module is
//! that optimization: location updates are hashed into uniform
//! `cell_size × cell_size × cell_duration` buckets, and the k-nearest-user
//! query expands outward from the query cell in Chebyshev rings, pruning
//! once the ring's lower-bound distance exceeds the current k-th best.

use crate::{TrajectoryStore, UserId};
use hka_geo::{Rect, SpaceTimeScale, StBox, StPoint, TimeInterval, TimeSec};
use std::collections::{BTreeSet, HashMap};

/// Sizing parameters for the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridIndexConfig {
    /// Spatial cell side, meters.
    pub cell_size: f64,
    /// Temporal cell length, seconds.
    pub cell_duration: i64,
    /// Metric used by nearest-neighbour queries.
    pub scale: SpaceTimeScale,
}

impl Default for GridIndexConfig {
    fn default() -> Self {
        // 250 m × 5 min cells with a walking-speed metric: tuned for the
        // urban scenarios of the experiments (block ≈ 100 m, updates every
        // 30-120 s).
        GridIndexConfig {
            cell_size: 250.0,
            cell_duration: 300,
            scale: SpaceTimeScale::walking(),
        }
    }
}

/// A grid cell key `(x, y, t)` in cell units.
type CellKey = (i64, i64, i64);

/// A spatio-temporal grid index mapping cells to the user observations
/// they contain.
#[derive(Debug, Clone)]
pub struct GridIndex {
    config: GridIndexConfig,
    cells: HashMap<CellKey, Vec<(UserId, StPoint)>>,
    /// Time slab → the (x, y) cells occupied within it. Lets the
    /// nearest-neighbour search expand outward in time and skip empty
    /// regions entirely.
    by_time: std::collections::BTreeMap<i64, Vec<(i64, i64)>>,
    points: usize,
}

impl GridIndex {
    /// Creates an empty index.
    pub fn new(config: GridIndexConfig) -> Self {
        assert!(config.cell_size > 0.0, "cell_size must be positive");
        assert!(config.cell_duration > 0, "cell_duration must be positive");
        GridIndex {
            config,
            cells: HashMap::new(),
            by_time: std::collections::BTreeMap::new(),
            points: 0,
        }
    }

    /// Builds an index over every point currently in the store.
    pub fn build(store: &TrajectoryStore, config: GridIndexConfig) -> Self {
        let mut idx = GridIndex::new(config);
        for (user, phl) in store.iter() {
            for p in phl.points() {
                idx.insert(user, *p);
            }
        }
        idx
    }

    /// The index configuration.
    pub fn config(&self) -> &GridIndexConfig {
        &self.config
    }

    /// Number of indexed observations.
    pub fn len(&self) -> usize {
        self.points
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points == 0
    }

    /// Inserts one observation (called by the TS on every location update,
    /// keeping the index incremental).
    pub fn insert(&mut self, user: UserId, p: StPoint) {
        let key = self.cell_of(&p);
        let bucket = self.cells.entry(key).or_default();
        if bucket.is_empty() {
            // Freshly occupied cell: register it in its time slab.
            self.by_time.entry(key.2).or_default().push((key.0, key.1));
        }
        bucket.push((user, p));
        self.points += 1;
    }

    fn cell_of(&self, p: &StPoint) -> CellKey {
        (
            (p.pos.x / self.config.cell_size).floor() as i64,
            (p.pos.y / self.config.cell_size).floor() as i64,
            p.t.0.div_euclid(self.config.cell_duration),
        )
    }

    /// The space–time box covered by a cell.
    fn cell_box(&self, key: CellKey) -> StBox {
        let cs = self.config.cell_size;
        let cd = self.config.cell_duration;
        StBox::new(
            Rect::from_bounds(
                key.0 as f64 * cs,
                key.1 as f64 * cs,
                (key.0 + 1) as f64 * cs,
                (key.1 + 1) as f64 * cs,
            ),
            TimeInterval::new(TimeSec(key.2 * cd), TimeSec((key.2 + 1) * cd - 1)),
        )
    }

    /// Distinct users with at least one observation inside `b`.
    pub fn users_crossing(&self, b: &StBox) -> BTreeSet<UserId> {
        let mut out = BTreeSet::new();
        self.for_each_in_box(b, |user, _| {
            out.insert(user);
        });
        out
    }

    /// Counts distinct users crossing `b`, stopping early at `limit`
    /// (enough for "are there ≥ k potential senders?" checks).
    pub fn count_users_crossing(&self, b: &StBox, limit: usize) -> usize {
        if limit == 0 {
            return 0;
        }
        let _span = hka_obs::span("index.query");
        let mut probes = 0u64;
        let mut seen = BTreeSet::new();
        let lo = self.cell_of(&StPoint::new(b.rect.min(), b.span.start()));
        let hi = self.cell_of(&StPoint::new(b.rect.max(), b.span.end()));
        'scan: for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                for ct in lo.2..=hi.2 {
                    if let Some(entries) = self.cells.get(&(cx, cy, ct)) {
                        probes += 1;
                        for (user, p) in entries {
                            if b.contains(p) && seen.insert(*user) && seen.len() >= limit {
                                break 'scan;
                            }
                        }
                    }
                }
            }
        }
        hka_obs::global().counter("index.probes").add(probes);
        seen.len()
    }

    fn for_each_in_box<F: FnMut(UserId, &StPoint)>(&self, b: &StBox, mut f: F) {
        let _span = hka_obs::span("index.query");
        let mut probes = 0u64;
        let lo = self.cell_of(&StPoint::new(b.rect.min(), b.span.start()));
        let hi = self.cell_of(&StPoint::new(b.rect.max(), b.span.end()));
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                for ct in lo.2..=hi.2 {
                    if let Some(entries) = self.cells.get(&(cx, cy, ct)) {
                        probes += 1;
                        for (user, p) in entries {
                            if b.contains(p) {
                                f(*user, p);
                            }
                        }
                    }
                }
            }
        }
        hka_obs::global().counter("index.probes").add(probes);
    }

    /// For each of the `k` users (other than `exclude`) whose PHL comes
    /// closest to the seed point, the closest observation — the indexed
    /// version of Algorithm 1's "smallest 3D space … crossed by k
    /// trajectories", realized exactly as the paper's brute force does
    /// ("the nearest neighbor in the PHL of each user, … then taking the
    /// closest k points").
    ///
    /// Search order: time slabs expand outward from the seed's slab; the
    /// occupied cells of each slab are scanned nearest-lower-bound first.
    /// The search stops once the *temporal* lower bound of the next slab
    /// ring alone exceeds the current k-th best per-user distance, so the
    /// cost scales with the data near the query, not with the database.
    ///
    /// Returns fewer than `k` entries when the index does not contain
    /// enough distinct users. Results are sorted by distance (ties by
    /// user id).
    pub fn k_nearest_users(
        &self,
        seed: &StPoint,
        k: usize,
        exclude: Option<UserId>,
    ) -> Vec<(UserId, StPoint)> {
        let _span = hka_obs::span("index.query");
        if k == 0 || self.points == 0 {
            return Vec::new();
        }
        let mut probes = 0u64;
        let scale = &self.config.scale;
        let mps = scale.meters_per_second;
        let seed_slab = seed.t.0.div_euclid(self.config.cell_duration);
        let (slab_min, slab_max) =
            match (self.by_time.keys().next(), self.by_time.keys().next_back()) {
                (Some(a), Some(b)) => (*a, *b),
                _ => return Vec::new(),
            };

        // Best (distance², point) per user, plus a max-heap of the current
        // k best distances for pruning.
        let mut best: HashMap<UserId, (f64, StPoint)> = HashMap::new();
        let mut topk: std::collections::BinaryHeap<OrdF64> = std::collections::BinaryHeap::new();

        let update = |user: UserId,
                      d: f64,
                      p: StPoint,
                      best: &mut HashMap<UserId, (f64, StPoint)>,
                      topk: &mut std::collections::BinaryHeap<OrdF64>| {
            match best.get_mut(&user) {
                Some(cur) if cur.0 < d => {}
                Some(cur) if cur.0 == d => {
                    // Exact tie: keep the canonical smallest-(t, x, y)
                    // representative regardless of cell scan order. The
                    // distance set is unchanged, so the heap stands.
                    if crate::spatial::obs_cmp(&p, &cur.1).is_lt() {
                        cur.1 = p;
                    }
                }
                Some(cur) => {
                    *cur = (d, p);
                    // Rebuild the small heap after improving a user's best.
                    topk.clear();
                    let mut ds: Vec<f64> = best.values().map(|(d, _)| *d).collect();
                    ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    ds.truncate(k);
                    topk.extend(ds.into_iter().map(OrdF64));
                }
                None => {
                    best.insert(user, (d, p));
                    if topk.len() < k {
                        topk.push(OrdF64(d));
                    } else if d < topk.peek().expect("non-empty").0 {
                        topk.pop();
                        topk.push(OrdF64(d));
                    }
                }
            }
        };

        let mut ring = 0i64;
        loop {
            let lo = seed_slab - ring;
            let hi = seed_slab + ring;
            if lo < slab_min && hi > slab_max {
                break; // every occupied slab has been visited
            }
            // Temporal lower bound for cells in this ring (they are at
            // least (ring − 1) whole slabs away in time).
            if topk.len() >= k && mps > 0.0 {
                let kth = topk.peek().expect("non-empty").0;
                let lb = mps * ((ring - 1).max(0) * self.config.cell_duration) as f64;
                if lb * lb > kth {
                    break;
                }
            }
            let mut slabs = vec![lo];
            if hi != lo {
                slabs.push(hi);
            }
            for slab in slabs {
                let Some(cols) = self.by_time.get(&slab) else {
                    continue;
                };
                // Scan this slab's occupied cells nearest-first.
                let mut order: Vec<(f64, CellKey)> = cols
                    .iter()
                    .map(|(x, y)| {
                        let key = (*x, *y, slab);
                        (scale.dist_sq_to_box(seed, &self.cell_box(key)), key)
                    })
                    .collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for (lb, key) in order {
                    if topk.len() >= k && lb > topk.peek().expect("non-empty").0 {
                        break;
                    }
                    probes += 1;
                    for (user, p) in &self.cells[&key] {
                        if Some(*user) == exclude {
                            continue;
                        }
                        update(*user, scale.dist_sq(seed, p), *p, &mut best, &mut topk);
                    }
                }
            }
            ring += 1;
        }
        hka_obs::global().counter("index.probes").add(probes);

        let mut out: Vec<(UserId, f64, StPoint)> =
            best.into_iter().map(|(u, (d, p))| (u, d, p)).collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        out.truncate(k);
        out.into_iter().map(|(u, _, p)| (u, p)).collect()
    }
}

/// An `f64` with a total order (no NaNs enter the index: geometry is
/// finite), usable in a `BinaryHeap`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN distances")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn small_config() -> GridIndexConfig {
        GridIndexConfig {
            cell_size: 10.0,
            cell_duration: 10,
            scale: SpaceTimeScale::new(1.0),
        }
    }

    fn sample_index() -> GridIndex {
        let mut store = TrajectoryStore::new();
        // Users at increasing distance from the origin.
        store.record(UserId(1), sp(1.0, 0.0, 0));
        store.record(UserId(2), sp(5.0, 0.0, 0));
        store.record(UserId(3), sp(0.0, 12.0, 0));
        store.record(UserId(4), sp(0.0, 0.0, 30));
        store.record(UserId(5), sp(100.0, 100.0, 500));
        // User 1 also has a far point (must not shadow its near one).
        store.record(UserId(1), sp(300.0, 300.0, 600));
        GridIndex::build(&store, small_config())
    }

    #[test]
    fn build_counts_points() {
        let idx = sample_index();
        assert_eq!(idx.len(), 6);
        assert!(!idx.is_empty());
    }

    #[test]
    fn users_crossing_box() {
        let idx = sample_index();
        let b = StBox::new(
            Rect::from_bounds(-1.0, -1.0, 6.0, 1.0),
            TimeInterval::new(TimeSec(0), TimeSec(40)),
        );
        let users: Vec<UserId> = idx.users_crossing(&b).into_iter().collect();
        assert_eq!(users, vec![UserId(1), UserId(2), UserId(4)]);
    }

    #[test]
    fn count_users_early_exit() {
        let idx = sample_index();
        let b = StBox::new(
            Rect::from_bounds(-200.0, -200.0, 400.0, 400.0),
            TimeInterval::new(TimeSec(0), TimeSec(1000)),
        );
        assert_eq!(idx.count_users_crossing(&b, 2), 2);
        assert_eq!(idx.count_users_crossing(&b, 100), 5);
    }

    #[test]
    fn k_nearest_orders_by_distance() {
        let idx = sample_index();
        let got = idx.k_nearest_users(&sp(0.0, 0.0, 0), 3, None);
        let ids: Vec<u64> = got.iter().map(|(u, _)| u.raw()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // Each user contributes its nearest point.
        assert_eq!(got[0].1, sp(1.0, 0.0, 0));
    }

    #[test]
    fn k_nearest_excludes_requester() {
        let idx = sample_index();
        let got = idx.k_nearest_users(&sp(0.0, 0.0, 0), 3, Some(UserId(1)));
        let ids: Vec<u64> = got.iter().map(|(u, _)| u.raw()).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn k_nearest_handles_scarcity() {
        let idx = sample_index();
        let got = idx.k_nearest_users(&sp(0.0, 0.0, 0), 50, None);
        assert_eq!(got.len(), 5, "only five distinct users exist");
        let empty = GridIndex::new(small_config());
        assert!(empty.k_nearest_users(&sp(0.0, 0.0, 0), 3, None).is_empty());
        assert!(idx.k_nearest_users(&sp(0.0, 0.0, 0), 0, None).is_empty());
    }

    #[test]
    fn k_nearest_uses_per_user_best_point() {
        let idx = sample_index();
        // User 1's nearest point to (300,300,600) is its far point.
        let got = idx.k_nearest_users(&sp(300.0, 300.0, 600), 1, None);
        assert_eq!(got[0].0, UserId(1));
        assert_eq!(got[0].1, sp(300.0, 300.0, 600));
    }

    #[test]
    fn negative_coordinates_hash_correctly() {
        let mut idx = GridIndex::new(small_config());
        idx.insert(UserId(1), sp(-5.0, -5.0, -5));
        idx.insert(UserId(2), sp(-15.0, -15.0, -15));
        let b = StBox::new(
            Rect::from_bounds(-20.0, -20.0, 0.0, 0.0),
            TimeInterval::new(TimeSec(-20), TimeSec(0)),
        );
        assert_eq!(idx.users_crossing(&b).len(), 2);
        let got = idx.k_nearest_users(&sp(-6.0, -6.0, -6), 2, None);
        assert_eq!(got[0].0, UserId(1));
        assert_eq!(got[1].0, UserId(2));
    }

    #[test]
    #[should_panic(expected = "cell_size")]
    fn zero_cell_size_rejected() {
        let _ = GridIndex::new(GridIndexConfig {
            cell_size: 0.0,
            cell_duration: 10,
            scale: SpaceTimeScale::new(1.0),
        });
    }
}
