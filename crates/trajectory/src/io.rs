//! Plain-text import/export of trajectory databases.
//!
//! Real deployments of the trusted server ingest operator location feeds;
//! research use means loading published mobility traces. This module
//! defines a minimal, diff-friendly text format and total (never panics
//! on malformed input) readers/writers for it:
//!
//! ```text
//! # hka-trace v1
//! # user_id,x_meters,y_meters,t_seconds
//! 42,103.5,2210.0,25200
//! 42,110.2,2208.9,25260
//! 7,1900.0,55.1,25200
//! ```
//!
//! Lines starting with `#` (and blank lines) are ignored. Points may
//! appear in any order; they are sorted per user on load (PHLs are
//! time-ordered by construction).

use crate::{Phl, TrajectoryStore, UserId};
use hka_geo::{StPoint, TimeSec};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};

/// A parse failure, with the 1-based line number.
#[derive(Debug)]
pub struct TraceFormatError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceFormatError {}

/// Errors from [`read_store`].
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content.
    Format(TraceFormatError),
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Format(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for TraceReadError {}

impl From<std::io::Error> for TraceReadError {
    fn from(e: std::io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Writes every observation of the store in the v1 text format.
pub fn write_store<W: Write>(store: &TrajectoryStore, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# hka-trace v1")?;
    writeln!(out, "# user_id,x_meters,y_meters,t_seconds")?;
    for (user, phl) in store.iter() {
        for p in phl.points() {
            writeln!(out, "{},{},{},{}", user.raw(), p.pos.x, p.pos.y, p.t.0)?;
        }
    }
    Ok(())
}

/// Reads a store from the v1 text format. Points are grouped per user and
/// time-sorted; malformed lines abort with the offending line number.
pub fn read_store<R: BufRead>(input: R) -> Result<TrajectoryStore, TraceReadError> {
    let mut by_user: BTreeMap<u64, Vec<StPoint>> = BTreeMap::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(',');
        let err = |message: String| {
            TraceReadError::Format(TraceFormatError {
                line: lineno,
                message,
            })
        };
        let mut next = |name: &str| {
            fields
                .next()
                .map(str::trim)
                .filter(|f| !f.is_empty())
                .ok_or_else(|| err(format!("missing field '{name}'")))
        };
        let user: u64 = next("user_id")?
            .parse()
            .map_err(|e| err(format!("bad user_id: {e}")))?;
        let x: f64 = next("x")?.parse().map_err(|e| err(format!("bad x: {e}")))?;
        let y: f64 = next("y")?.parse().map_err(|e| err(format!("bad y: {e}")))?;
        let t: i64 = next("t")?.parse().map_err(|e| err(format!("bad t: {e}")))?;
        if !(x.is_finite() && y.is_finite()) {
            return Err(err("coordinates must be finite".into()));
        }
        if fields.next().is_some() {
            return Err(err("trailing fields".into()));
        }
        by_user
            .entry(user)
            .or_default()
            .push(StPoint::xyt(x, y, TimeSec(t)));
    }
    let mut store = TrajectoryStore::new();
    for (user, pts) in by_user {
        let phl = Phl::from_points(pts);
        for p in phl.points() {
            store.record(UserId(user), *p);
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.record(UserId(42), StPoint::xyt(103.5, 2_210.0, TimeSec(25_200)));
        s.record(UserId(42), StPoint::xyt(110.25, 2_208.9, TimeSec(25_260)));
        s.record(UserId(7), StPoint::xyt(1_900.0, 55.125, TimeSec(25_200)));
        s
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let back = read_store(buf.as_slice()).unwrap();
        assert_eq!(back.user_count(), store.user_count());
        assert_eq!(back.total_points(), store.total_points());
        for (u, phl) in store.iter() {
            assert_eq!(back.phl(u).unwrap().points(), phl.points());
        }
    }

    #[test]
    fn unordered_input_is_sorted_per_user() {
        let text = "5,1.0,2.0,300\n5,0.0,0.0,100\n5,0.5,1.0,200\n";
        let store = read_store(text.as_bytes()).unwrap();
        let ts: Vec<i64> = store
            .phl(UserId(5))
            .unwrap()
            .points()
            .iter()
            .map(|p| p.t.0)
            .collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n  \n1,0,0,0\n# trailing\n";
        let store = read_store(text.as_bytes()).unwrap();
        assert_eq!(store.total_points(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("1,2,3\n", 1, "missing field 't'"),
            ("# ok\nx,2,3,4\n", 2, "bad user_id"),
            ("1,nope,3,4\n", 1, "bad x"),
            ("1,2,3,4,5\n", 1, "trailing fields"),
            ("1,inf,3,4\n", 1, "finite"),
            ("1,2,3,4.5\n", 1, "bad t"),
        ];
        for (text, line, needle) in cases {
            match read_store(text.as_bytes()) {
                Err(TraceReadError::Format(e)) => {
                    assert_eq!(e.line, line, "{text:?}");
                    assert!(
                        e.to_string().contains(needle),
                        "{text:?}: {e} should mention {needle:?}"
                    );
                }
                other => panic!("{text:?}: expected format error, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_input_is_an_empty_store() {
        let store = read_store("".as_bytes()).unwrap();
        assert_eq!(store.user_count(), 0);
    }

    #[test]
    fn negative_coordinates_and_times_round_trip() {
        let mut s = TrajectoryStore::new();
        s.record(UserId(1), StPoint::xyt(-10.5, -0.25, TimeSec(-3_600)));
        let mut buf = Vec::new();
        write_store(&s, &mut buf).unwrap();
        let back = read_store(buf.as_slice()).unwrap();
        assert_eq!(
            back.phl(UserId(1)).unwrap().points()[0],
            StPoint::xyt(-10.5, -0.25, TimeSec(-3_600))
        );
    }
}
