//! # hka-trajectory
//!
//! The moving-object-database substrate assumed by the paper's trusted
//! server: the TS "has the usual functionalities of a location server
//! (i.e., a moving object database storing precise data for all of its
//! users and the capability to efficiently perform spatio-temporal
//! queries)".
//!
//! * [`Phl`] — a **Personal History of Locations** (paper Definition 6): the
//!   time-ordered sequence of `⟨x, y, t⟩` observations for one user.
//! * [`TrajectoryStore`] — all users' PHLs, with append-time ordering
//!   enforcement.
//! * [`GridIndex`] — a uniform space–time grid over the store supporting
//!   the two queries Algorithm 1 needs:
//!   * *"the smallest 3D space … crossed by k trajectories (each one for a
//!     different user)"* — realized as a k-nearest-users search
//!     ([`GridIndex::k_nearest_users`]) exactly mirroring the paper's own
//!     brute-force formulation ("considering the nearest neighbor in the
//!     PHL of each user and then taking the closest k points");
//!   * the set of users crossing a given box
//!     ([`GridIndex::users_crossing`]), which also yields per-request
//!     anonymity sets.
//! * [`RTreeIndex`] — a classic Guttman R-tree over the same geometry,
//!   the second "indexing moving objects" option; answers identically to
//!   the grid (differentially tested) with different scaling behaviour.
//! * [`brute`] — reference implementations by exhaustive scan, used for
//!   differential testing and as the O(k·n) baseline of experiment T3.
//! * [`CompactionPolicy`] — granularity-aware folding of old PHL points
//!   into per-granule representatives (bounded memory over unbounded
//!   feeds; see the `compact` module docs for the exact invariants), and
//!   [`state`] — the exact canonical-JSON codec checkpoint snapshots use
//!   to persist and restore the store.
//! * [`SpatialIndex`] — the backend-agnostic seam over all of the above:
//!   [`GridIndex`], [`RTreeIndex`], and [`BruteIndex`] implement it and
//!   must answer identically; [`IndexBackend`] selects one at run time
//!   and [`IndexSnapshot`] unions partitions of any mix of backends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod brute;
mod compact;
pub mod delta;
mod index;
pub mod io;
mod phl;
mod rtree;
mod snapshot;
mod spatial;
pub mod state;
mod store;
mod user;

pub use arena::SoaIndex;
pub use brute::BruteIndex;
pub use compact::{CompactionPolicy, CompactionStats};
pub use delta::{IndexDelta, UnionIndex};
pub use index::{GridIndex, GridIndexConfig};
pub use phl::Phl;
pub use rtree::RTreeIndex;
pub use snapshot::IndexSnapshot;
pub use spatial::{IndexBackend, SpatialIndex};
pub use store::TrajectoryStore;
pub use user::UserId;
