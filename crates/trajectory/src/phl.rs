//! Personal Histories of Locations (paper Definition 6).

use hka_geo::{Point, SpaceTimeScale, StBox, StPoint, TimeInterval, TimeSec};

/// A Personal History of Locations: "the sequence of spatio-temporal data
/// associated with a certain user in the TS database … represented as a
/// sequence of 3D points ⟨x1,y1,t1⟩, …, ⟨xm,ym,tm⟩" (Definition 6).
///
/// Points are kept sorted by time; [`Phl::push`] enforces non-decreasing
/// timestamps (location updates arrive in order from the positioning
/// infrastructure). Note that, per the paper, "a location update may be
/// received by the TS even if the user did not make a request when being
/// at that location" — the PHL is a superset of the user's request points.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Phl {
    points: Vec<StPoint>,
}

impl Phl {
    /// An empty history.
    pub fn new() -> Self {
        Phl { points: Vec::new() }
    }

    /// Builds a history from unordered points (sorts by time).
    pub fn from_points(mut points: Vec<StPoint>) -> Self {
        points.sort_by_key(|p| p.t);
        Phl { points }
    }

    /// Appends an observation.
    ///
    /// # Panics
    /// If `p.t` precedes the last recorded timestamp.
    pub fn push(&mut self, p: StPoint) {
        if let Some(last) = self.points.last() {
            assert!(
                p.t >= last.t,
                "PHL updates must be time-ordered: {} after {}",
                p.t,
                last.t
            );
        }
        self.points.push(p);
    }

    /// Appends an observation, tolerating out-of-order arrival: a
    /// timestamp that regresses behind the last recorded one is clamped
    /// forward onto it (equal timestamps are legal) instead of
    /// panicking. Returns `true` when the timestamp was clamped.
    ///
    /// This is the ingestion path for positioning feeds that may
    /// deliver updates slightly out of order; [`Phl::push`] remains the
    /// strict variant for callers that already guarantee ordering.
    pub fn push_clamped(&mut self, mut p: StPoint) -> bool {
        let clamped = match self.points.last() {
            Some(last) if p.t < last.t => {
                p.t = last.t;
                true
            }
            _ => false,
        };
        self.points.push(p);
        clamped
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All observations, oldest first.
    pub fn points(&self) -> &[StPoint] {
        &self.points
    }

    /// First observation, if any.
    pub fn first(&self) -> Option<&StPoint> {
        self.points.first()
    }

    /// Most recent observation, if any.
    pub fn last(&self) -> Option<&StPoint> {
        self.points.last()
    }

    /// Index of the first observation with `t >= t0`.
    fn lower_bound(&self, t0: TimeSec) -> usize {
        self.points.partition_point(|p| p.t < t0)
    }

    /// The observations with timestamps inside `iv`, as a sub-slice.
    pub fn in_interval(&self, iv: &TimeInterval) -> &[StPoint] {
        let lo = self.lower_bound(iv.start());
        let hi = self.points.partition_point(|p| p.t <= iv.end());
        &self.points[lo..hi]
    }

    /// Whether some observation falls inside the space–time box — i.e.
    /// whether this PHL "crosses" the box. This is the per-request core of
    /// LT-consistency (Definition 7).
    pub fn crosses(&self, b: &StBox) -> bool {
        self.in_interval(&b.span)
            .iter()
            .any(|p| b.rect.contains(&p.pos))
    }

    /// The user's interpolated position at time `t`, if `t` lies within
    /// the recorded span. Linear interpolation between the surrounding
    /// observations (the standard moving-object-database assumption).
    pub fn position_at(&self, t: TimeSec) -> Option<Point> {
        if self.points.is_empty() {
            return None;
        }
        let first = self.points[0];
        let last = self.points[self.points.len() - 1];
        if t < first.t || t > last.t {
            return None;
        }
        let i = self.lower_bound(t);
        if i < self.points.len() && self.points[i].t == t {
            return Some(self.points[i].pos);
        }
        // t lies strictly between points[i-1] and points[i].
        let a = self.points[i - 1];
        let b = self.points[i];
        let span = (b.t - a.t) as f64;
        if span == 0.0 {
            return Some(a.pos);
        }
        let f = (t - a.t) as f64 / span;
        Some(a.pos.lerp(&b.pos, f))
    }

    /// The observation closest to `q` under the space–time metric
    /// (Algorithm 1 line 2: "find the 3D point in its PHL closest to
    /// ⟨x,y,t⟩"). Exploits time-ordering: scans outward from the
    /// temporal insertion point and stops once the *temporal* component
    /// alone exceeds the best distance found.
    pub fn nearest_point(&self, q: &StPoint, scale: &SpaceTimeScale) -> Option<StPoint> {
        if self.points.is_empty() {
            return None;
        }
        let mid = self.lower_bound(q.t);
        let mut best: Option<(f64, StPoint)> = None;
        let mps = scale.meters_per_second;

        let consider = |p: &StPoint, best: &mut Option<(f64, StPoint)>| {
            let d = scale.dist_sq(q, p);
            // Exact ties resolve to the canonical smallest-(t, x, y)
            // observation, not the first one the walk happens to visit,
            // so every backend (and every insertion order) reports the
            // same representative point.
            let wins = match best {
                None => true,
                Some((bd, bp)) => d < *bd || (d == *bd && crate::spatial::obs_cmp(p, bp).is_lt()),
            };
            if wins {
                *best = Some((d, *p));
            }
        };

        // Walk right (later points) and left (earlier points) in lockstep,
        // pruning each side once its time displacement alone is too large.
        let mut r = mid;
        let mut l = mid;
        loop {
            let mut advanced = false;
            if r < self.points.len() {
                let p = self.points[r];
                let tdist = mps * (p.t - q.t) as f64;
                if best.is_none() || tdist * tdist <= best.unwrap().0 || mps == 0.0 {
                    consider(&p, &mut best);
                    r += 1;
                    advanced = true;
                } else {
                    r = self.points.len(); // prune the rest
                }
            }
            if l > 0 {
                let p = self.points[l - 1];
                let tdist = mps * (q.t - p.t) as f64;
                if best.is_none() || tdist * tdist <= best.unwrap().0 || mps == 0.0 {
                    consider(&p, &mut best);
                    l -= 1;
                    advanced = true;
                } else {
                    l = 0; // prune the rest
                }
            }
            if (r >= self.points.len() && l == 0) || (!advanced && mps > 0.0) {
                break;
            }
            if !advanced {
                break;
            }
        }
        best.map(|(_, p)| p)
    }

    /// Swaps in a new point vector. Callers must keep the time-ordering
    /// invariant; compaction does (it only removes points).
    pub(crate) fn replace_points(&mut self, points: Vec<StPoint>) {
        debug_assert!(points.windows(2).all(|w| w[0].t <= w[1].t));
        self.points = points;
    }

    /// Total time covered by the history (0 for fewer than two points).
    pub fn time_span(&self) -> i64 {
        match (self.first(), self.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::Rect;

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn walk() -> Phl {
        // A user walking east 1 m/s, one update per 10 s.
        Phl::from_points((0..=10).map(|i| sp(10.0 * i as f64, 0.0, 10 * i)).collect())
    }

    #[test]
    fn push_enforces_ordering() {
        let mut phl = Phl::new();
        phl.push(sp(0.0, 0.0, 10));
        phl.push(sp(1.0, 0.0, 10)); // equal timestamps allowed
        phl.push(sp(2.0, 0.0, 20));
        assert_eq!(phl.len(), 3);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn push_rejects_regression() {
        let mut phl = Phl::new();
        phl.push(sp(0.0, 0.0, 10));
        phl.push(sp(1.0, 0.0, 5));
    }

    #[test]
    fn push_clamped_normalizes_regressions() {
        let mut phl = Phl::new();
        assert!(!phl.push_clamped(sp(0.0, 0.0, 10)));
        // A regressed timestamp lands at the last recorded time.
        assert!(phl.push_clamped(sp(1.0, 0.0, 5)));
        assert_eq!(phl.last().unwrap().t, TimeSec(10));
        // In-order points are untouched.
        assert!(!phl.push_clamped(sp(2.0, 0.0, 20)));
        assert_eq!(phl.len(), 3);
        // The history stays legal for the strict API afterwards.
        phl.push(sp(3.0, 0.0, 20));
    }

    #[test]
    fn from_points_sorts() {
        let phl = Phl::from_points(vec![sp(2.0, 0.0, 20), sp(0.0, 0.0, 0), sp(1.0, 0.0, 10)]);
        let ts: Vec<i64> = phl.points().iter().map(|p| p.t.0).collect();
        assert_eq!(ts, vec![0, 10, 20]);
    }

    #[test]
    fn in_interval_is_inclusive() {
        let phl = walk();
        let iv = TimeInterval::new(TimeSec(20), TimeSec(40));
        let pts = phl.in_interval(&iv);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].t, TimeSec(20));
        assert_eq!(pts[2].t, TimeSec(40));
        let empty = phl.in_interval(&TimeInterval::new(TimeSec(101), TimeSec(200)));
        assert!(empty.is_empty());
    }

    #[test]
    fn crosses_requires_space_and_time() {
        let phl = walk();
        let hit = StBox::new(
            Rect::from_bounds(15.0, -1.0, 35.0, 1.0),
            TimeInterval::new(TimeSec(15), TimeSec(35)),
        );
        assert!(phl.crosses(&hit));
        // Right place, wrong time.
        let wrong_time = StBox::new(
            Rect::from_bounds(15.0, -1.0, 35.0, 1.0),
            TimeInterval::new(TimeSec(80), TimeSec(90)),
        );
        assert!(!phl.crosses(&wrong_time));
        // Right time, wrong place.
        let wrong_place = StBox::new(
            Rect::from_bounds(500.0, -1.0, 600.0, 1.0),
            TimeInterval::new(TimeSec(15), TimeSec(35)),
        );
        assert!(!phl.crosses(&wrong_place));
    }

    #[test]
    fn position_interpolates_linearly() {
        let phl = walk();
        assert_eq!(phl.position_at(TimeSec(15)), Some(Point::new(15.0, 0.0)));
        assert_eq!(phl.position_at(TimeSec(0)), Some(Point::new(0.0, 0.0)));
        assert_eq!(phl.position_at(TimeSec(100)), Some(Point::new(100.0, 0.0)));
        assert_eq!(phl.position_at(TimeSec(-1)), None);
        assert_eq!(phl.position_at(TimeSec(101)), None);
        assert_eq!(Phl::new().position_at(TimeSec(0)), None);
    }

    #[test]
    fn position_with_duplicate_timestamps() {
        let phl = Phl::from_points(vec![sp(0.0, 0.0, 10), sp(5.0, 5.0, 10)]);
        // Either observation is acceptable; implementation returns the
        // first at the exact timestamp.
        assert_eq!(phl.position_at(TimeSec(10)), Some(Point::new(0.0, 0.0)));
    }

    #[test]
    fn nearest_point_exact_and_pruned() {
        let phl = walk();
        let scale = SpaceTimeScale::new(1.0);
        // Query exactly on a sample.
        let q = sp(50.0, 0.0, 50);
        assert_eq!(phl.nearest_point(&q, &scale), Some(sp(50.0, 0.0, 50)));
        // Query off to the north at t=33: candidates are t=30 (d²=9+3²... )
        let q = sp(30.0, 4.0, 33);
        let near = phl.nearest_point(&q, &scale).unwrap();
        assert_eq!(near, sp(30.0, 0.0, 30));
        // Empty history.
        assert_eq!(Phl::new().nearest_point(&q, &scale), None);
    }

    #[test]
    fn nearest_point_matches_linear_scan() {
        let phl = walk();
        for scale in [
            SpaceTimeScale::new(0.0),
            SpaceTimeScale::new(0.5),
            SpaceTimeScale::new(10.0),
        ] {
            for q in [sp(-5.0, 3.0, -7), sp(33.0, -2.0, 95), sp(200.0, 0.0, 400)] {
                let fast = phl.nearest_point(&q, &scale).unwrap();
                let slow = phl
                    .points()
                    .iter()
                    .min_by(|a, b| {
                        scale
                            .dist_sq(&q, a)
                            .partial_cmp(&scale.dist_sq(&q, b))
                            .unwrap()
                    })
                    .unwrap();
                assert_eq!(scale.dist_sq(&q, &fast), scale.dist_sq(&q, slow));
            }
        }
    }

    #[test]
    fn time_span() {
        assert_eq!(walk().time_span(), 100);
        assert_eq!(Phl::new().time_span(), 0);
    }
}
