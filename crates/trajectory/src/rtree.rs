//! A 3-D R-tree over spatio-temporal observations — the classic
//! "indexing moving objects" structure the paper points at as the
//! optimization for Algorithm 1's expensive step.
//!
//! This is a textbook Guttman R-tree (quadratic split) whose bounding
//! volumes are [`StBox`]es: 2-D rectangles extended with closed time
//! intervals, exactly the geometry the rest of the framework speaks.
//! Entries are `(UserId, StPoint)` observations.
//!
//! Supported queries mirror [`crate::GridIndex`]:
//!
//! * [`RTreeIndex::users_crossing`] — distinct users with an observation
//!   inside a box (range query);
//! * [`RTreeIndex::k_nearest_users`] — per-user nearest observations for
//!   Algorithm 1's first branch, via best-first traversal with the
//!   space–time metric.
//!
//! Differential property tests (`tests/props.rs`) hold all three
//! implementations — brute force, grid, R-tree — to identical answers.

use crate::{TrajectoryStore, UserId};
use hka_geo::{SpaceTimeScale, StBox, StPoint};
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// Maximum entries per node before it splits.
const MAX_ENTRIES: usize = 16;
/// Minimum entries assigned to each side of a split.
const MIN_ENTRIES: usize = 6;

/// A bounded child subtree of an inner node.
type Child = (StBox, Box<Node>);

#[derive(Debug, Clone)]
enum Node {
    Leaf { entries: Vec<(UserId, StPoint)> },
    Inner { children: Vec<Child> },
}

/// An R-tree over `(UserId, StPoint)` observations.
#[derive(Debug, Clone)]
pub struct RTreeIndex {
    root: Node,
    bounds: Option<StBox>,
    scale: SpaceTimeScale,
    len: usize,
}

/// Space–time "volume" used to drive insertion heuristics: the box's
/// spatial area plus its scaled temporal extent, mixed so degenerate
/// boxes still order sensibly.
fn measure(b: &StBox, scale: &SpaceTimeScale) -> f64 {
    let t = scale.meters_per_second * b.duration() as f64;
    let w = b.rect.width();
    let h = b.rect.height();
    // Half-perimeter style measure over the three extents: cheap,
    // monotone under enlargement, non-zero only when extents are.
    w + h + t + w * h + w * t + h * t
}

fn enlargement(current: &StBox, add: &StBox, scale: &SpaceTimeScale) -> f64 {
    measure(&current.union(add), scale) - measure(current, scale)
}

impl RTreeIndex {
    /// An empty tree using the given metric for nearest queries.
    pub fn new(scale: SpaceTimeScale) -> Self {
        RTreeIndex {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            bounds: None,
            scale,
            len: 0,
        }
    }

    /// Bulk-builds from a store.
    pub fn build(store: &TrajectoryStore, scale: SpaceTimeScale) -> Self {
        let mut t = RTreeIndex::new(scale);
        for (user, phl) in store.iter() {
            for p in phl.points() {
                t.insert(user, *p);
            }
        }
        t
    }

    /// Number of indexed observations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The metric used by nearest queries.
    pub fn scale(&self) -> &SpaceTimeScale {
        &self.scale
    }

    /// Inserts one observation.
    pub fn insert(&mut self, user: UserId, p: StPoint) {
        let pb = StBox::point(p);
        self.bounds = Some(match self.bounds {
            Some(b) => b.union(&pb),
            None => pb,
        });
        self.len += 1;
        let scale = self.scale;
        if let Some((left, right)) = Self::insert_rec(&mut self.root, user, p, &scale) {
            // Root split: grow the tree.
            let old = std::mem::replace(
                &mut self.root,
                Node::Inner {
                    children: Vec::new(),
                },
            );
            drop(old);
            self.root = Node::Inner {
                children: vec![left, right],
            };
        }
    }

    /// Recursive insert; returns the two replacement children when the
    /// visited node split.
    fn insert_rec(
        node: &mut Node,
        user: UserId,
        p: StPoint,
        scale: &SpaceTimeScale,
    ) -> Option<(Child, Child)> {
        match node {
            Node::Leaf { entries } => {
                entries.push((user, p));
                if entries.len() > MAX_ENTRIES {
                    let (a, b) = split_leaf(std::mem::take(entries), scale);
                    return Some((a, b));
                }
                None
            }
            Node::Inner { children } => {
                // Choose the child needing least enlargement.
                let pb = StBox::point(p);
                let (idx, _) = children
                    .iter()
                    .enumerate()
                    .map(|(i, (b, _))| (i, enlargement(b, &pb, scale)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite measures"))
                    .expect("inner nodes are non-empty");
                children[idx].0 = children[idx].0.union(&pb);
                let split = Self::insert_rec(&mut children[idx].1, user, p, scale);
                if let Some((a, b)) = split {
                    children.swap_remove(idx);
                    children.push(a);
                    children.push(b);
                    if children.len() > MAX_ENTRIES {
                        let (a, b) = split_inner(std::mem::take(children), scale);
                        return Some((a, b));
                    }
                }
                None
            }
        }
    }

    /// Distinct users with at least one observation inside `q`.
    pub fn users_crossing(&self, q: &StBox) -> BTreeSet<UserId> {
        let _span = hka_obs::span("rtree.query");
        let mut probes = 0u64;
        let mut out = BTreeSet::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            probes += 1;
            match node {
                Node::Leaf { entries } => {
                    for (u, p) in entries {
                        if q.contains(p) {
                            out.insert(*u);
                        }
                    }
                }
                Node::Inner { children } => {
                    for (b, child) in children {
                        if b.intersects(q) {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        hka_obs::global().counter("rtree.probes").add(probes);
        out
    }

    /// Counts distinct users crossing `q`, stopping the traversal as
    /// soon as `limit` distinct users are found (the "are there ≥ k
    /// potential senders?" fast path the grid backend already had; the
    /// trait default would materialize the full crossing set first).
    /// By the [`crate::SpatialIndex`] contract the result equals
    /// `users_crossing(q).len().min(limit)`.
    pub fn count_users_crossing(&self, q: &StBox, limit: usize) -> usize {
        if limit == 0 {
            return 0;
        }
        let _span = hka_obs::span("rtree.query");
        let mut probes = 0u64;
        let mut seen = BTreeSet::new();
        let mut stack = vec![&self.root];
        'walk: while let Some(node) = stack.pop() {
            probes += 1;
            match node {
                Node::Leaf { entries } => {
                    for (u, p) in entries {
                        if q.contains(p) && seen.insert(*u) && seen.len() >= limit {
                            break 'walk;
                        }
                    }
                }
                Node::Inner { children } => {
                    for (b, child) in children {
                        if b.intersects(q) {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        hka_obs::global().counter("rtree.probes").add(probes);
        seen.len()
    }

    /// For each of the `k` users (other than `exclude`) whose history
    /// comes closest to `seed`, the closest observation — best-first over
    /// the tree with box lower bounds, matching [`crate::GridIndex`] and
    /// [`crate::brute`] exactly on distances.
    pub fn k_nearest_users(
        &self,
        seed: &StPoint,
        k: usize,
        exclude: Option<UserId>,
    ) -> Vec<(UserId, StPoint)> {
        let _span = hka_obs::span("rtree.query");
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let mut probes = 0u64;
        let scale = &self.scale;
        let mut best: HashMap<UserId, (f64, StPoint)> = HashMap::new();
        let mut topk: BinaryHeap<NotNan> = BinaryHeap::new();

        // Best-first frontier over nodes, keyed by lower-bound distance.
        let mut frontier: BinaryHeap<std::cmp::Reverse<(NotNan, usize)>> = BinaryHeap::new();
        let mut arena: Vec<&Node> = vec![&self.root];
        frontier.push(std::cmp::Reverse((NotNan(0.0), 0)));

        while let Some(std::cmp::Reverse((lb, id))) = frontier.pop() {
            if topk.len() >= k && lb.0 > topk.peek().expect("non-empty").0 {
                break;
            }
            probes += 1;
            match arena[id] {
                Node::Leaf { entries } => {
                    for (u, p) in entries {
                        if Some(*u) == exclude {
                            continue;
                        }
                        let d = scale.dist_sq(seed, p);
                        match best.get_mut(u) {
                            Some(cur) if cur.0 < d => {}
                            Some(cur) if cur.0 == d => {
                                // Exact tie: canonical smallest-(t, x, y)
                                // representative, independent of node
                                // visit order (see `spatial::obs_cmp`).
                                if crate::spatial::obs_cmp(p, &cur.1).is_lt() {
                                    cur.1 = *p;
                                }
                            }
                            Some(cur) => {
                                *cur = (d, *p);
                                let mut ds: Vec<f64> = best.values().map(|(d, _)| *d).collect();
                                ds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                                ds.truncate(k);
                                topk.clear();
                                topk.extend(ds.into_iter().map(NotNan));
                            }
                            None => {
                                best.insert(*u, (d, *p));
                                if topk.len() < k {
                                    topk.push(NotNan(d));
                                } else if d < topk.peek().expect("non-empty").0 {
                                    topk.pop();
                                    topk.push(NotNan(d));
                                }
                            }
                        }
                    }
                }
                Node::Inner { children } => {
                    for (b, child) in children {
                        let lb = scale.dist_sq_to_box(seed, b);
                        if topk.len() >= k && lb > topk.peek().expect("non-empty").0 {
                            continue;
                        }
                        arena.push(child);
                        frontier.push(std::cmp::Reverse((NotNan(lb), arena.len() - 1)));
                    }
                }
            }
        }

        hka_obs::global().counter("rtree.probes").add(probes);

        let mut out: Vec<(UserId, f64, StPoint)> =
            best.into_iter().map(|(u, (d, p))| (u, d, p)).collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        out.truncate(k);
        out.into_iter().map(|(u, _, p)| (u, p)).collect()
    }

    /// Tree height (1 for a single leaf) — exposed for tests.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner { children } = node {
            h += 1;
            node = &children.first().expect("inner non-empty").1;
        }
        h
    }

    /// Validates R-tree invariants (bounding containment, entry counts);
    /// used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn bbox(node: &Node) -> Option<StBox> {
            match node {
                Node::Leaf { entries } => StBox::mbb(entries.iter().map(|(_, p)| p)),
                Node::Inner { children } => {
                    children.iter().map(|(b, _)| *b).reduce(|a, b| a.union(&b))
                }
            }
        }
        fn walk(node: &Node, depth: usize, leaf_depth: &mut Option<usize>) -> Result<(), String> {
            match node {
                Node::Leaf { entries } => {
                    if entries.len() > MAX_ENTRIES {
                        return Err(format!("leaf overflow: {}", entries.len()));
                    }
                    match leaf_depth {
                        Some(d) if *d != depth => return Err("leaves at different depths".into()),
                        None => *leaf_depth = Some(depth),
                        _ => {}
                    }
                    Ok(())
                }
                Node::Inner { children } => {
                    if children.is_empty() {
                        return Err("empty inner node".into());
                    }
                    if children.len() > MAX_ENTRIES + 1 {
                        return Err(format!("inner overflow: {}", children.len()));
                    }
                    for (b, child) in children {
                        let actual = bbox(child).ok_or("empty child")?;
                        if !b.contains_box(&actual) {
                            return Err(format!("bounding box {b} !⊇ {actual}"));
                        }
                        walk(child, depth + 1, leaf_depth)?;
                    }
                    Ok(())
                }
            }
        }
        let mut leaf_depth = None;
        walk(&self.root, 0, &mut leaf_depth)
    }
}

/// Total-order f64 for heaps (geometry is finite, NaN cannot occur).
#[derive(Debug, Clone, Copy, PartialEq)]
struct NotNan(f64);
impl Eq for NotNan {}
impl PartialOrd for NotNan {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NotNan {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN")
    }
}

/// Guttman quadratic split over leaf entries.
fn split_leaf(
    entries: Vec<(UserId, StPoint)>,
    scale: &SpaceTimeScale,
) -> ((StBox, Box<Node>), (StBox, Box<Node>)) {
    let boxes: Vec<StBox> = entries.iter().map(|(_, p)| StBox::point(*p)).collect();
    let (ga, gb, assign) = quadratic_split(&boxes, scale);
    let (mut ea, mut eb) = (Vec::new(), Vec::new());
    for (i, e) in entries.into_iter().enumerate() {
        if assign[i] {
            ea.push(e);
        } else {
            eb.push(e);
        }
    }
    (
        (ga, Box::new(Node::Leaf { entries: ea })),
        (gb, Box::new(Node::Leaf { entries: eb })),
    )
}

/// Guttman quadratic split over inner children.
fn split_inner(
    children: Vec<(StBox, Box<Node>)>,
    scale: &SpaceTimeScale,
) -> ((StBox, Box<Node>), (StBox, Box<Node>)) {
    let boxes: Vec<StBox> = children.iter().map(|(b, _)| *b).collect();
    let (ga, gb, assign) = quadratic_split(&boxes, scale);
    let (mut ca, mut cb) = (Vec::new(), Vec::new());
    for (i, c) in children.into_iter().enumerate() {
        if assign[i] {
            ca.push(c);
        } else {
            cb.push(c);
        }
    }
    (
        (ga, Box::new(Node::Inner { children: ca })),
        (gb, Box::new(Node::Inner { children: cb })),
    )
}

/// Returns the two group bounding boxes and, per input index, whether it
/// belongs to group A.
fn quadratic_split(boxes: &[StBox], scale: &SpaceTimeScale) -> (StBox, StBox, Vec<bool>) {
    let n = boxes.len();
    debug_assert!(n >= 2);
    // Pick seeds: the pair whose union wastes the most volume.
    let (mut sa, mut sb, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = measure(&boxes[i].union(&boxes[j]), scale)
                - measure(&boxes[i], scale)
                - measure(&boxes[j], scale);
            if waste > worst {
                worst = waste;
                sa = i;
                sb = j;
            }
        }
    }
    let mut group_a = boxes[sa];
    let mut group_b = boxes[sb];
    let mut assign = vec![None::<bool>; n];
    assign[sa] = Some(true);
    assign[sb] = Some(false);
    let mut na = 1usize;
    let mut nb = 1usize;

    // Assign the rest, most-decided first.
    loop {
        let remaining: Vec<usize> = (0..n).filter(|i| assign[*i].is_none()).collect();
        if remaining.is_empty() {
            break;
        }
        // Force-assign when one group must take everything left to reach
        // the minimum.
        if na + remaining.len() <= MIN_ENTRIES {
            for i in remaining {
                assign[i] = Some(true);
                group_a = group_a.union(&boxes[i]);
            }
            break;
        }
        if nb + remaining.len() <= MIN_ENTRIES {
            for i in remaining {
                assign[i] = Some(false);
                group_b = group_b.union(&boxes[i]);
            }
            break;
        }
        // Pick the entry with the largest preference difference.
        let (i, prefer_a) = remaining
            .iter()
            .map(|&i| {
                let da = enlargement(&group_a, &boxes[i], scale);
                let db = enlargement(&group_b, &boxes[i], scale);
                (i, da, db)
            })
            .max_by(|a, b| {
                (a.1 - a.2)
                    .abs()
                    .partial_cmp(&(b.1 - b.2).abs())
                    .expect("finite")
            })
            .map(|(i, da, db)| (i, da < db))
            .expect("non-empty remaining");
        if prefer_a {
            assign[i] = Some(true);
            group_a = group_a.union(&boxes[i]);
            na += 1;
        } else {
            assign[i] = Some(false);
            group_b = group_b.union(&boxes[i]);
            nb += 1;
        }
    }
    (
        group_a,
        group_b,
        assign
            .into_iter()
            .map(|a| a.expect("all assigned"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Rect, TimeInterval, TimeSec};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn random_tree(n: usize, seed: u64) -> (RTreeIndex, Vec<(UserId, StPoint)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RTreeIndex::new(SpaceTimeScale::new(1.0));
        let mut pts = Vec::new();
        for i in 0..n {
            let p = sp(
                rng.random_range(0.0..2_000.0),
                rng.random_range(0.0..2_000.0),
                rng.random_range(0..7_200),
            );
            let u = UserId((i % 20) as u64);
            tree.insert(u, p);
            pts.push((u, p));
        }
        (tree, pts)
    }

    #[test]
    fn empty_tree_answers_trivially() {
        let t = RTreeIndex::new(SpaceTimeScale::new(1.0));
        assert!(t.is_empty());
        assert!(t.k_nearest_users(&sp(0.0, 0.0, 0), 3, None).is_empty());
        let q = StBox::new(
            Rect::from_bounds(0.0, 0.0, 10.0, 10.0),
            TimeInterval::new(TimeSec(0), TimeSec(10)),
        );
        assert!(t.users_crossing(&q).is_empty());
    }

    #[test]
    fn invariants_hold_through_growth() {
        let (tree, _) = random_tree(2_000, 1);
        assert_eq!(tree.len(), 2_000);
        tree.check_invariants().unwrap();
        assert!(
            tree.height() >= 3,
            "2000 entries must split: h={}",
            tree.height()
        );
    }

    #[test]
    fn range_query_matches_scan() {
        let (tree, pts) = random_tree(800, 2);
        let q = StBox::new(
            Rect::from_bounds(300.0, 300.0, 1_200.0, 900.0),
            TimeInterval::new(TimeSec(1_000), TimeSec(5_000)),
        );
        let expected: BTreeSet<UserId> = pts
            .iter()
            .filter(|(_, p)| q.contains(p))
            .map(|(u, _)| *u)
            .collect();
        assert_eq!(tree.users_crossing(&q), expected);
    }

    #[test]
    fn knn_matches_brute_force_scan() {
        let (tree, pts) = random_tree(800, 3);
        let scale = SpaceTimeScale::new(1.0);
        for seed_pt in [
            sp(0.0, 0.0, 0),
            sp(1_000.0, 1_000.0, 3_600),
            sp(1_999.0, 5.0, 7_000),
        ] {
            for k in [1usize, 5, 19] {
                let got = tree.k_nearest_users(&seed_pt, k, Some(UserId(0)));
                // Scan: best per user, excluding user 0.
                let mut best: HashMap<UserId, f64> = HashMap::new();
                for (u, p) in &pts {
                    if *u == UserId(0) {
                        continue;
                    }
                    let d = scale.dist_sq(&seed_pt, p);
                    let e = best.entry(*u).or_insert(f64::INFINITY);
                    if d < *e {
                        *e = d;
                    }
                }
                let mut ds: Vec<f64> = best.values().copied().collect();
                ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                ds.truncate(k);
                let got_ds: Vec<f64> = got
                    .iter()
                    .map(|(_, p)| scale.dist_sq(&seed_pt, p))
                    .collect();
                assert_eq!(got_ds.len(), ds.len());
                for (a, b) in got_ds.iter().zip(ds.iter()) {
                    assert!((a - b).abs() <= 1e-9 * b.max(1.0), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn duplicate_points_and_users_are_fine() {
        let mut tree = RTreeIndex::new(SpaceTimeScale::new(1.0));
        for _ in 0..100 {
            tree.insert(UserId(1), sp(5.0, 5.0, 5));
        }
        tree.check_invariants().unwrap();
        let got = tree.k_nearest_users(&sp(0.0, 0.0, 0), 3, None);
        assert_eq!(got.len(), 1, "one distinct user");
    }
}
