//! Read-only snapshot over partitioned spatial indices.
//!
//! The sharded trusted server partitions users across workers, each
//! owning a [`SpatialIndex`] over its own slice of the trajectory
//! store. Algorithm 1's k-nearest-users query, however, is global: the
//! paper asks for "the closest k points **considering … each user**",
//! not each user on one shard. [`IndexSnapshot`] answers that global
//! query exactly by merging the per-partition answers.
//!
//! **Exactness.** Partitions are disjoint by user, and each partition's
//! [`SpatialIndex::k_nearest_users`] returns that partition's k closest
//! per-user-nearest points. Every member of the global top-k belongs to
//! some partition and is, within it, among that partition's top-k — so
//! the concatenation of per-partition answers is a superset of the
//! global answer, and re-ranking by the same `(distance, user id)` key
//! then truncating to k reproduces the single-index result bit for bit.
//! Because all backends share the [`SpatialIndex`] answer contract,
//! the partitions may even mix backends (say, grid next to R-tree) and
//! the merge stays exact — the per-partition answers are re-scored
//! here under each partition's own scale.
//!
//! The snapshot borrows the indices immutably: workers query a published
//! (quiescent) set of partitions while new ingests accumulate elsewhere,
//! which is what makes the epoch-snapshot read path of the sharded
//! server safe without locks.

use crate::{SpatialIndex, UserId};
use hka_geo::StPoint;

/// An immutable merged view over disjoint per-shard [`SpatialIndex`]
/// partitions, answering global queries with single-index semantics.
#[derive(Debug, Clone)]
pub struct IndexSnapshot<'a> {
    parts: Vec<&'a dyn SpatialIndex>,
}

impl<'a> IndexSnapshot<'a> {
    /// A snapshot over the given partitions. The caller guarantees the
    /// partitions are user-disjoint (each user's PHL lives in exactly
    /// one); the merge is only exact under that invariant.
    pub fn new(parts: Vec<&'a dyn SpatialIndex>) -> Self {
        IndexSnapshot { parts }
    }

    /// How many partitions back this snapshot.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The k users (other than `exclude`) whose nearest PHL point to
    /// `seed` is closest, with that point — the global query of paper
    /// Algorithm 1's first branch, merged across partitions.
    ///
    /// Ordering matches [`SpatialIndex::k_nearest_users`]: ascending
    /// scaled distance, ties broken by user id. Distances are
    /// recomputed here under each partition's own scale (all partitions
    /// of one server share a scale), using a total order so a NaN
    /// distance cannot panic the merge.
    pub fn k_nearest_users(
        &self,
        seed: &StPoint,
        k: usize,
        exclude: Option<UserId>,
    ) -> Vec<(UserId, StPoint)> {
        if k == 0 {
            return Vec::new();
        }
        let mut scored: Vec<(UserId, f64, StPoint)> = Vec::new();
        for part in &self.parts {
            let scale = part.scale();
            for (user, p) in part.k_nearest_users(seed, k, exclude) {
                scored.push((user, scale.dist_sq(seed, &p), p));
            }
        }
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored.into_iter().map(|(u, _, p)| (u, p)).collect()
    }

    /// The distinct users whose PHL crosses `b`, merged across
    /// partitions. User-disjointness makes this a plain set union.
    pub fn users_crossing(&self, b: &hka_geo::StBox) -> std::collections::BTreeSet<UserId> {
        let mut out = std::collections::BTreeSet::new();
        for part in &self.parts {
            out.append(&mut part.users_crossing(b));
        }
        out
    }

    /// Early-exit crossing count across partitions, capped at `limit`.
    ///
    /// Each partition is asked for at most the *remaining* budget
    /// (`limit - acc`), not the full `limit`: the budgets are
    /// independent because no user appears in two partitions, so the
    /// sum can neither double-count a user nor stop short of `limit`
    /// while crossings remain. Summing full-`limit` per-partition
    /// counts and clamping would visit (and probe) more than needed;
    /// forgetting the clamp entirely would report a count exceeding
    /// `limit` — the count/query mismatch the differential suite pins.
    pub fn count_users_crossing(&self, b: &hka_geo::StBox, limit: usize) -> usize {
        let mut acc = 0usize;
        for part in &self.parts {
            if acc >= limit {
                break;
            }
            acc += part.count_users_crossing(b, limit - acc);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridIndex, GridIndexConfig, TrajectoryStore};
    use hka_geo::StPoint;

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, hka_geo::TimeSec(t))
    }

    fn seeded_points(n: usize) -> Vec<(UserId, StPoint)> {
        // Small deterministic LCG scatter; several points per user.
        let mut s: u64 = 0x9e37_79b9;
        let mut out = Vec::new();
        for i in 0..n {
            for step in 0..3i64 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (s >> 33) as f64 % 1000.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = (s >> 33) as f64 % 1000.0;
                out.push((UserId(i as u64 + 1), sp(x, y, 100 * step + i as i64)));
            }
        }
        out
    }

    #[test]
    fn merged_partitions_match_single_index() {
        let cfg = GridIndexConfig::default();
        let points = seeded_points(23);

        let mut whole_store = TrajectoryStore::new();
        let mut whole = GridIndex::new(cfg);
        for (u, p) in &points {
            whole_store.record(*u, *p);
            whole.insert(*u, *p);
        }

        for shards in [1usize, 2, 3, 4, 8] {
            let mut parts: Vec<GridIndex> = (0..shards).map(|_| GridIndex::new(cfg)).collect();
            for (u, p) in &points {
                parts[(u.0 as usize) % shards].insert(*u, *p);
            }
            let snap = IndexSnapshot::new(parts.iter().map(|p| p as &dyn SpatialIndex).collect());
            for k in [1usize, 3, 7, 23, 40] {
                for (seed, excl) in [
                    (sp(10.0, 20.0, 50), None),
                    (sp(500.0, 500.0, 150), Some(UserId(5))),
                    (sp(999.0, 1.0, 0), Some(UserId(1))),
                ] {
                    assert_eq!(
                        snap.k_nearest_users(&seed, k, excl),
                        whole.k_nearest_users(&seed, k, excl),
                        "shards={shards} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_k_and_empty_partitions() {
        let snap = IndexSnapshot::new(Vec::new());
        assert!(snap.k_nearest_users(&sp(0.0, 0.0, 0), 3, None).is_empty());
        let idx = GridIndex::new(GridIndexConfig::default());
        let snap = IndexSnapshot::new(vec![&idx as &dyn SpatialIndex]);
        assert_eq!(snap.partitions(), 1);
        assert!(snap.k_nearest_users(&sp(0.0, 0.0, 0), 0, None).is_empty());
    }

    #[test]
    fn equidistant_ties_straddling_shard_boundaries_merge_canonically() {
        // Users 1..=6 each have one observation exactly 10m from the
        // seed (distance ties across every user), scattered so that
        // consecutive tied users land on *different* shards. The global
        // answer must be the k smallest user ids regardless of how the
        // tie group straddles partitions — and each user's tied pair of
        // equidistant observations must resolve to the canonical
        // smallest-(t, x, y) point on every backend.
        let cfg = GridIndexConfig {
            scale: hka_geo::SpaceTimeScale::new(0.0), // time costs nothing
            ..GridIndexConfig::default()
        };
        let seed = sp(0.0, 0.0, 50);
        let mut store = TrajectoryStore::new();
        for u in 1..=6u64 {
            // Two equidistant observations per user; smaller t first
            // (stores require time order), canonical winner is (t=10).
            store.record(UserId(u), sp(10.0, 0.0, 10));
            store.record(UserId(u), sp(-10.0, 0.0, 20));
        }
        let oracle = crate::BruteIndex::build(&store, cfg.scale);
        for shards in [1usize, 2, 3, 4] {
            let mut parts: Vec<Box<dyn SpatialIndex>> = (0..shards)
                .map(|_| crate::IndexBackend::Grid.make(cfg))
                .collect();
            for (u, phl) in store.iter() {
                for p in phl.points() {
                    parts[(u.0 as usize) % shards].insert(u, *p);
                }
            }
            let snap = IndexSnapshot::new(parts.iter().map(|p| p.as_ref()).collect());
            for k in [0usize, 1, 3, 6, 9] {
                let got = snap.k_nearest_users(&seed, k, None);
                assert_eq!(
                    got,
                    oracle.k_nearest_users(&seed, k, None),
                    "shards={shards} k={k}"
                );
                assert_eq!(got.len(), k.min(6));
                for (i, (u, p)) in got.iter().enumerate() {
                    assert_eq!(u.0, i as u64 + 1, "tie order is ascending user id");
                    assert_eq!(*p, sp(10.0, 0.0, 10), "canonical equidistant observation");
                }
            }
        }
    }

    #[test]
    fn crossing_queries_match_brute_across_partition_counts() {
        let cfg = GridIndexConfig::default();
        let points = seeded_points(23);
        let mut store = TrajectoryStore::new();
        for (u, p) in &points {
            store.record(*u, *p);
        }
        let oracle = crate::BruteIndex::build(&store, cfg.scale);
        let boxes = [
            hka_geo::StBox::new(
                hka_geo::Rect::from_bounds(0.0, 0.0, 1000.0, 1000.0),
                hka_geo::TimeInterval::new(hka_geo::TimeSec(0), hka_geo::TimeSec(400)),
            ),
            hka_geo::StBox::new(
                hka_geo::Rect::from_bounds(200.0, 200.0, 600.0, 600.0),
                hka_geo::TimeInterval::new(hka_geo::TimeSec(50), hka_geo::TimeSec(150)),
            ),
            hka_geo::StBox::new(
                hka_geo::Rect::from_bounds(-5.0, -5.0, -1.0, -1.0),
                hka_geo::TimeInterval::new(hka_geo::TimeSec(0), hka_geo::TimeSec(10)),
            ),
        ];
        for shards in [1usize, 2, 4, 8] {
            let mut parts: Vec<Box<dyn SpatialIndex>> = (0..shards)
                .map(|i| crate::IndexBackend::ALL[i % crate::IndexBackend::ALL.len()].make(cfg))
                .collect();
            for (u, p) in &points {
                parts[(u.0 as usize) % shards].insert(*u, *p);
            }
            let snap = IndexSnapshot::new(parts.iter().map(|p| p.as_ref()).collect());
            for b in &boxes {
                let want = oracle.users_crossing(b);
                assert_eq!(snap.users_crossing(b), want, "shards={shards}");
                // limit==0, exact hit, straddling, and limit>n edges.
                for limit in [0usize, 1, 2, want.len(), want.len() + 1, 1000] {
                    assert_eq!(
                        snap.count_users_crossing(b, limit),
                        limit.min(want.len()),
                        "shards={shards} limit={limit}"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_backend_partitions_match_single_index() {
        // One grid partition next to one R-tree and one brute partition:
        // the union must still reproduce the single-index answer, which
        // is exactly what lets a sharded run mix-and-match backends.
        let cfg = GridIndexConfig::default();
        let points = seeded_points(17);

        let mut whole = GridIndex::new(cfg);
        for (u, p) in &points {
            whole.insert(*u, *p);
        }

        let mut parts: Vec<Box<dyn SpatialIndex>> = crate::IndexBackend::ALL
            .iter()
            .map(|b| b.make(cfg))
            .collect();
        let shards = parts.len();
        for (u, p) in &points {
            parts[(u.0 as usize) % shards].insert(*u, *p);
        }
        let snap = IndexSnapshot::new(parts.iter().map(|p| p.as_ref()).collect());
        for k in [1usize, 4, 17, 30] {
            for excl in [None, Some(UserId(3))] {
                assert_eq!(
                    snap.k_nearest_users(&sp(250.0, 750.0, 120), k, excl),
                    whole.k_nearest_users(&sp(250.0, 750.0, 120), k, excl),
                    "k={k} excl={excl:?}"
                );
            }
        }
    }
}
