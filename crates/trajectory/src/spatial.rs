//! The [`SpatialIndex`] trait: one seam for every index backend.
//!
//! Algorithm 1's anonymity-set search is the hottest path in the
//! paper's preservation strategy, and the stack above this crate — the
//! trusted server, the sharded frontend, the baselines, and the bench
//! binaries — should not care *which* moving-object index answers it.
//! This module defines the contract all backends share:
//!
//! * incremental [`SpatialIndex::insert`] (the TS ingests location
//!   updates online);
//! * the window / co-location query [`SpatialIndex::users_crossing`]
//!   (plus an early-exit counting variant);
//! * the k-nearest-**users** query [`SpatialIndex::k_nearest_users`]
//!   mirroring the paper's "nearest neighbor in the PHL of each user,
//!   then the closest k points".
//!
//! Three backends implement it: [`GridIndex`] (uniform space–time
//! grid), [`RTreeIndex`] (Guttman R-tree), and [`BruteIndex`]
//! (exhaustive scan — the differential oracle). All three are required
//! to return *identical* answers, including tie-breaks: ascending
//! scaled distance under the backend's [`SpaceTimeScale`], ties broken
//! by ascending user id. That equivalence is enforced by property tests
//! and is what lets [`crate::IndexSnapshot`] union partitions of
//! different backends exactly.
//!
//! The trait is object-safe on purpose — servers hold a
//! `Box<dyn SpatialIndex>` chosen at run time via [`IndexBackend`] —
//! and requires `Send + Sync` because the sharded frontend moves
//! per-shard indices across scoped worker threads.

use crate::arena::SoaIndex;
use crate::brute::BruteIndex;
use crate::{GridIndex, GridIndexConfig, RTreeIndex, TrajectoryStore, UserId};
use hka_geo::{SpaceTimeScale, StBox, StPoint};
use std::collections::BTreeSet;

/// Canonical order on a user's equidistant observations.
///
/// When two of a user's points are *exactly* equidistant from a query
/// seed, every backend must report the same representative point or the
/// answer would depend on scan order — a grid index visits cells
/// nearest-lower-bound first, an R-tree visits nodes best-first, and
/// the brute scan walks the PHL outward from the temporal insertion
/// point, so "first one wins" diverges between them (and between two
/// insertion orders of the *same* backend). The contract is therefore:
/// among equidistant candidates, the smallest `(t, x, y)` wins. All
/// pruning bounds in the backends are strict (`> kth`), so an
/// equal-distance candidate is never pruned before this rule sees it.
pub(crate) fn obs_cmp(a: &StPoint, b: &StPoint) -> std::cmp::Ordering {
    a.t.0
        .cmp(&b.t.0)
        .then(a.pos.x.total_cmp(&b.pos.x))
        .then(a.pos.y.total_cmp(&b.pos.y))
}

/// A spatio-temporal index over users' PHLs answering the two queries
/// Algorithm 1 needs, behind one backend-agnostic seam.
///
/// # Contract
///
/// Implementations must agree bit-for-bit on every query: for any
/// sequence of [`insert`](SpatialIndex::insert)s, two backends built
/// over the same points and the same [`SpaceTimeScale`] return equal
/// results from [`users_crossing`](SpatialIndex::users_crossing) and
/// [`k_nearest_users`](SpatialIndex::k_nearest_users). The brute
/// backend ([`BruteIndex`]) is the executable specification; the
/// differential property suite checks the others against it.
pub trait SpatialIndex: std::fmt::Debug + Send + Sync {
    /// Which backend this is (for logs, reports, and journal metadata).
    fn backend(&self) -> IndexBackend;

    /// The space–time metric scale all distance queries use.
    fn scale(&self) -> &SpaceTimeScale;

    /// Number of indexed observations.
    fn len(&self) -> usize;

    /// Whether the index holds no observations.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indexes one observation for `user`.
    fn insert(&mut self, user: UserId, p: StPoint);

    /// Distinct users with at least one observation inside `b`.
    fn users_crossing(&self, b: &StBox) -> BTreeSet<UserId>;

    /// Number of distinct users crossing `b`, stopping early once
    /// `limit` distinct users are found. Backends may override this
    /// with a cheaper early-exit scan; the result must equal
    /// `users_crossing(b).len().min(limit)`.
    fn count_users_crossing(&self, b: &StBox, limit: usize) -> usize {
        self.users_crossing(b).len().min(limit)
    }

    /// For each of the `k` users (other than `exclude`) whose PHL comes
    /// closest to `seed`, that user's closest observation — sorted by
    /// ascending scaled distance, ties broken by ascending user id.
    fn k_nearest_users(
        &self,
        seed: &StPoint,
        k: usize,
        exclude: Option<UserId>,
    ) -> Vec<(UserId, StPoint)>;
}

impl SpatialIndex for GridIndex {
    fn backend(&self) -> IndexBackend {
        IndexBackend::Grid
    }

    fn scale(&self) -> &SpaceTimeScale {
        &self.config().scale
    }

    fn len(&self) -> usize {
        GridIndex::len(self)
    }

    fn insert(&mut self, user: UserId, p: StPoint) {
        GridIndex::insert(self, user, p);
    }

    fn users_crossing(&self, b: &StBox) -> BTreeSet<UserId> {
        GridIndex::users_crossing(self, b)
    }

    fn count_users_crossing(&self, b: &StBox, limit: usize) -> usize {
        GridIndex::count_users_crossing(self, b, limit)
    }

    fn k_nearest_users(
        &self,
        seed: &StPoint,
        k: usize,
        exclude: Option<UserId>,
    ) -> Vec<(UserId, StPoint)> {
        GridIndex::k_nearest_users(self, seed, k, exclude)
    }
}

impl SpatialIndex for RTreeIndex {
    fn backend(&self) -> IndexBackend {
        IndexBackend::RTree
    }

    fn scale(&self) -> &SpaceTimeScale {
        RTreeIndex::scale(self)
    }

    fn len(&self) -> usize {
        RTreeIndex::len(self)
    }

    fn insert(&mut self, user: UserId, p: StPoint) {
        RTreeIndex::insert(self, user, p);
    }

    fn users_crossing(&self, b: &StBox) -> BTreeSet<UserId> {
        RTreeIndex::users_crossing(self, b)
    }

    fn count_users_crossing(&self, b: &StBox, limit: usize) -> usize {
        RTreeIndex::count_users_crossing(self, b, limit)
    }

    fn k_nearest_users(
        &self,
        seed: &StPoint,
        k: usize,
        exclude: Option<UserId>,
    ) -> Vec<(UserId, StPoint)> {
        RTreeIndex::k_nearest_users(self, seed, k, exclude)
    }
}

/// Which [`SpatialIndex`] implementation to instantiate.
///
/// The enum — rather than a generic parameter — is what keeps the
/// trait object-safe and lets run-time configuration (`hka-sim
/// --index rtree`, `TsConfig::backend`) pick a backend without
/// monomorphizing the whole server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexBackend {
    /// Uniform space–time grid ([`GridIndex`]) — the default.
    #[default]
    Grid,
    /// Guttman R-tree ([`RTreeIndex`]).
    RTree,
    /// Structure-of-arrays scan ([`SoaIndex`]) — per-user columnar
    /// tracks, time-pruned like the brute scan but cache-friendly.
    Soa,
    /// Exhaustive scan ([`BruteIndex`]) — the O(k·n) differential
    /// oracle; never pick this for anything but testing and baselines.
    Brute,
}

impl IndexBackend {
    /// All backends, in oracle-last order — handy for differential
    /// sweeps.
    pub const ALL: [IndexBackend; 4] = [
        IndexBackend::Grid,
        IndexBackend::RTree,
        IndexBackend::Soa,
        IndexBackend::Brute,
    ];

    /// Whether this backend answers k-nearest by scanning every user
    /// (O(users) per query) rather than through a spatial structure.
    /// Bench gates compare tree/grid backends against the scan class.
    pub fn is_scan(&self) -> bool {
        matches!(self, IndexBackend::Soa | IndexBackend::Brute)
    }

    /// Parses a CLI-style name (`grid`, `rtree`, `soa`, `brute`).
    pub fn parse(s: &str) -> Option<IndexBackend> {
        match s.to_ascii_lowercase().as_str() {
            "grid" => Some(IndexBackend::Grid),
            "rtree" | "r-tree" => Some(IndexBackend::RTree),
            "soa" => Some(IndexBackend::Soa),
            "brute" => Some(IndexBackend::Brute),
            _ => None,
        }
    }

    /// The CLI-style name (`grid`, `rtree`, `soa`, `brute`).
    pub fn name(&self) -> &'static str {
        match self {
            IndexBackend::Grid => "grid",
            IndexBackend::RTree => "rtree",
            IndexBackend::Soa => "soa",
            IndexBackend::Brute => "brute",
        }
    }

    /// An empty index of this backend. Grid uses the full `config`;
    /// the R-tree, SoA, and brute backends only need its `scale`.
    pub fn make(&self, config: GridIndexConfig) -> Box<dyn SpatialIndex> {
        match self {
            IndexBackend::Grid => Box::new(GridIndex::new(config)),
            IndexBackend::RTree => Box::new(RTreeIndex::new(config.scale)),
            IndexBackend::Soa => Box::new(SoaIndex::new(config.scale)),
            IndexBackend::Brute => Box::new(BruteIndex::new(config.scale)),
        }
    }

    /// An index of this backend bulk-loaded from `store`.
    pub fn build(&self, store: &TrajectoryStore, config: GridIndexConfig) -> Box<dyn SpatialIndex> {
        match self {
            IndexBackend::Grid => Box::new(GridIndex::build(store, config)),
            IndexBackend::RTree => Box::new(RTreeIndex::build(store, config.scale)),
            IndexBackend::Soa => Box::new(SoaIndex::build(store, config.scale)),
            IndexBackend::Brute => Box::new(BruteIndex::build(store, config.scale)),
        }
    }
}

impl std::fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Rect, TimeInterval, TimeSec};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    #[test]
    fn parse_and_name_round_trip() {
        for b in IndexBackend::ALL {
            assert_eq!(IndexBackend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(IndexBackend::parse("R-Tree"), Some(IndexBackend::RTree));
        assert_eq!(IndexBackend::parse("hashmap"), None);
        assert_eq!(IndexBackend::default(), IndexBackend::Grid);
    }

    #[test]
    fn boxed_backends_agree_on_a_tiny_world() {
        let cfg = GridIndexConfig::default();
        let points = [
            (UserId(1), sp(10.0, 10.0, 0)),
            (UserId(2), sp(20.0, 10.0, 30)),
            (UserId(3), sp(400.0, 400.0, 60)),
            (UserId(1), sp(12.0, 11.0, 90)),
        ];
        let mut boxed: Vec<Box<dyn SpatialIndex>> =
            IndexBackend::ALL.iter().map(|b| b.make(cfg)).collect();
        for idx in &mut boxed {
            for (u, p) in &points {
                idx.insert(*u, *p);
            }
            assert_eq!(idx.len(), points.len());
            assert!(!idx.is_empty());
        }
        let seed = sp(0.0, 0.0, 10);
        let window = StBox::new(
            Rect::from_bounds(0.0, 0.0, 50.0, 50.0),
            TimeInterval::new(TimeSec(0), TimeSec(100)),
        );
        let oracle = boxed.last().expect("oracle is last");
        for idx in &boxed[..boxed.len() - 1] {
            assert_eq!(
                idx.k_nearest_users(&seed, 2, Some(UserId(2))),
                oracle.k_nearest_users(&seed, 2, Some(UserId(2))),
                "{} vs oracle",
                idx.backend()
            );
            assert_eq!(idx.users_crossing(&window), oracle.users_crossing(&window));
            assert_eq!(
                idx.count_users_crossing(&window, 1),
                oracle.count_users_crossing(&window, 1)
            );
        }
    }

    #[test]
    fn build_matches_incremental_insert() {
        let mut store = TrajectoryStore::new();
        for i in 0..10u64 {
            store.record(
                UserId(i % 4 + 1),
                sp(i as f64 * 7.0, i as f64 * 3.0, i as i64 * 20),
            );
        }
        let cfg = GridIndexConfig::default();
        let seed = sp(5.0, 5.0, 40);
        for b in IndexBackend::ALL {
            let built = b.build(&store, cfg);
            let mut incr = b.make(cfg);
            for (u, phl) in store.iter() {
                for p in phl.points() {
                    incr.insert(u, *p);
                }
            }
            assert_eq!(built.len(), incr.len(), "{b}");
            assert_eq!(built.backend(), b);
            assert_eq!(
                built.k_nearest_users(&seed, 3, None),
                incr.k_nearest_users(&seed, 3, None),
                "{b}"
            );
        }
    }
}
