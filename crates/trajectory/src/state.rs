//! Canonical JSON codec for trajectory state — the `store` section of a
//! checkpoint snapshot.
//!
//! The encoding must be *deterministic* (checkpoint snapshots are
//! content-hashed and chained into the journal) and *exact* (a restored
//! store must answer every query identically, so coordinates round-trip
//! bit-for-bit through [`hka_obs::Json`]'s canonical float printing).
//! Points are encoded as compact `[x, y, t]` triples; users appear in
//! ascending id order because the store iterates a `BTreeMap`.

use hka_geo::{StPoint, TimeSec};
use hka_obs::Json;

use crate::{Phl, TrajectoryStore, UserId};

fn point_to_json(p: &StPoint) -> Json {
    Json::Arr(vec![
        Json::Num(p.pos.x),
        Json::Num(p.pos.y),
        Json::Int(p.t.0),
    ])
}

fn point_of_json(j: &Json) -> Result<StPoint, String> {
    let Json::Arr(items) = j else {
        return Err("point is not an [x, y, t] array".into());
    };
    let [x, y, t] = items.as_slice() else {
        return Err(format!("point has {} elements, expected 3", items.len()));
    };
    let x = x.as_f64().ok_or("point x is not a number")?;
    let y = y.as_f64().ok_or("point y is not a number")?;
    let t = t.as_int().ok_or("point t is not an integer")?;
    if !(x.is_finite() && y.is_finite()) {
        return Err("point coordinates must be finite".into());
    }
    Ok(StPoint::xyt(x, y, TimeSec(t)))
}

/// Encodes one history as an array of `[x, y, t]` triples.
pub fn phl_to_json(phl: &Phl) -> Json {
    Json::Arr(phl.points().iter().map(point_to_json).collect())
}

/// Decodes a history; points must already be time-ordered (snapshots
/// are written from time-ordered PHLs, so disorder means corruption and
/// is rejected rather than silently re-sorted).
pub fn phl_of_json(j: &Json) -> Result<Phl, String> {
    let Json::Arr(items) = j else {
        return Err("phl is not an array".into());
    };
    let mut points = Vec::with_capacity(items.len());
    for item in items {
        points.push(point_of_json(item)?);
    }
    if !points.windows(2).all(|w| w[0].t <= w[1].t) {
        return Err("phl points are not time-ordered".into());
    }
    let mut phl = Phl::new();
    phl.replace_points(points);
    Ok(phl)
}

/// Encodes the whole store: `{"users": [{"phl": [...], "user": N}]}`.
pub fn store_to_json(store: &TrajectoryStore) -> Json {
    Json::obj([(
        "users",
        Json::Arr(
            store
                .iter()
                .map(|(user, phl)| {
                    Json::obj([("user", Json::from(user.raw())), ("phl", phl_to_json(phl))])
                })
                .collect(),
        ),
    )])
}

/// Decodes a store encoded by [`store_to_json`], restoring users (empty
/// histories included) and point accounting exactly.
pub fn store_of_json(j: &Json) -> Result<TrajectoryStore, String> {
    let Some(Json::Arr(users)) = j.get("users") else {
        return Err("store: missing 'users' array".into());
    };
    let mut store = TrajectoryStore::new();
    for entry in users {
        let user = entry
            .get("user")
            .and_then(Json::as_int)
            .and_then(|v| u64::try_from(v).ok())
            .ok_or("store user: missing or mistyped 'user'")?;
        let phl = phl_of_json(entry.get("phl").ok_or("store user: missing 'phl'")?)
            .map_err(|e| format!("user {user}: {e}"))?;
        store.ensure_user(UserId(user));
        for p in phl.points() {
            store.record(UserId(user), *p);
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn sample() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.record(UserId(7), sp(1_900.0, 55.125, 25_200));
        s.record(UserId(42), sp(103.5, 2_210.0, 25_200));
        s.record(UserId(42), sp(110.25, 2_208.9, 25_260));
        s.ensure_user(UserId(99)); // registered, no points yet
        s
    }

    #[test]
    fn store_round_trips_exactly_including_empty_users() {
        let store = sample();
        let json = store_to_json(&store);
        let text = json.to_string();
        let reparsed = hka_obs::json::parse(&text).unwrap();
        assert_eq!(reparsed.to_string(), text, "canonical encoding");
        let back = store_of_json(&reparsed).unwrap();
        assert_eq!(back.user_count(), store.user_count());
        assert_eq!(back.total_points(), store.total_points());
        for (u, phl) in store.iter() {
            assert_eq!(back.phl(u).unwrap().points(), phl.points());
        }
        // And the round trip is a fixed point byte-for-byte.
        assert_eq!(store_to_json(&back).to_string(), text);
    }

    #[test]
    fn decode_rejects_disorder_and_junk() {
        let disordered =
            hka_obs::json::parse(r#"{"users":[{"phl":[[0.0,0.0,10],[1.0,0.0,5]],"user":1}]}"#)
                .unwrap();
        assert!(store_of_json(&disordered)
            .unwrap_err()
            .contains("time-ordered"));

        let junk = hka_obs::json::parse(r#"{"users":[{"phl":[[0.0,0.0]],"user":1}]}"#).unwrap();
        assert!(store_of_json(&junk).unwrap_err().contains("elements"));

        let no_users = hka_obs::json::parse(r#"{}"#).unwrap();
        assert!(store_of_json(&no_users).unwrap_err().contains("users"));
    }

    #[test]
    fn negative_and_fractional_values_survive() {
        let mut s = TrajectoryStore::new();
        s.record(UserId(1), sp(-10.5, -0.25, -3_600));
        s.record(UserId(1), sp(0.1 + 0.2, 1e-9, 0)); // awkward floats
        let back = store_of_json(&store_to_json(&s)).unwrap();
        assert_eq!(
            back.phl(UserId(1)).unwrap().points(),
            s.phl(UserId(1)).unwrap().points()
        );
    }
}
