//! The trusted server's trajectory database.

use crate::{Phl, UserId};
use hka_geo::{StBox, StPoint};
use std::collections::BTreeMap;

/// All users' Personal Histories of Locations.
///
/// This is the database behind the paper's trusted server: "user sensitive
/// information, including user location at specific times … is collected
/// and handled by a Trusted Server". Iteration order is deterministic
/// (keyed by [`UserId`]) so that experiments are reproducible.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryStore {
    phls: BTreeMap<UserId, Phl>,
    total_points: usize,
}

impl TrajectoryStore {
    /// An empty store.
    pub fn new() -> Self {
        TrajectoryStore::default()
    }

    /// Records a location update for `user`.
    ///
    /// # Panics
    /// If the update is older than the user's latest recorded point.
    pub fn record(&mut self, user: UserId, p: StPoint) {
        self.phls.entry(user).or_default().push(p);
        self.total_points += 1;
    }

    /// Records a location update, clamping an out-of-order timestamp
    /// forward onto the user's latest recorded one instead of
    /// panicking (see [`Phl::push_clamped`]). Returns `true` when the
    /// timestamp was clamped.
    pub fn record_clamped(&mut self, user: UserId, p: StPoint) -> bool {
        let clamped = self.phls.entry(user).or_default().push_clamped(p);
        self.total_points += 1;
        clamped
    }

    /// Registers a user with an empty history (idempotent).
    pub fn ensure_user(&mut self, user: UserId) {
        self.phls.entry(user).or_default();
    }

    /// The PHL of `user`, if registered.
    pub fn phl(&self, user: UserId) -> Option<&Phl> {
        self.phls.get(&user)
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.phls.len()
    }

    /// Total number of location points across all users ("n" in the
    /// paper's O(k·n) complexity discussion).
    pub fn total_points(&self) -> usize {
        self.total_points
    }

    /// A store holding every PHL from the given user-disjoint
    /// partitions — the global view behind a sharded server, used when
    /// an audit or introspection query needs all users at once.
    ///
    /// # Panics
    /// If two partitions claim the same user (they are not disjoint).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a TrajectoryStore>) -> TrajectoryStore {
        let mut out = TrajectoryStore::new();
        for part in parts {
            for (user, phl) in part.iter() {
                let clash = out.phls.insert(user, phl.clone()).is_some();
                assert!(!clash, "user {user:?} present in two partitions");
                out.total_points += phl.len();
            }
        }
        out
    }

    /// Runs `f` over every PHL mutably, in user order (compaction's
    /// access path; point accounting is the caller's job).
    pub(crate) fn for_each_phl(&mut self, mut f: impl FnMut(&mut Phl)) {
        for phl in self.phls.values_mut() {
            f(phl);
        }
    }

    /// Overwrites the cached total point count (used after bulk edits
    /// that bypass [`record`](TrajectoryStore::record)).
    pub(crate) fn set_total_points(&mut self, n: usize) {
        self.total_points = n;
    }

    /// Iterates `(user, phl)` pairs in user order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &Phl)> + '_ {
        self.phls.iter().map(|(u, p)| (*u, p))
    }

    /// All registered users, ascending.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.phls.keys().copied()
    }

    /// Users whose PHL crosses the box (the anonymity set of a request
    /// with that generalized context — Section 5.1).
    pub fn users_crossing(&self, b: &StBox) -> Vec<UserId> {
        self.iter()
            .filter(|(_, phl)| phl.crosses(b))
            .map(|(u, _)| u)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Rect, TimeInterval, TimeSec};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    #[test]
    fn record_and_lookup() {
        let mut s = TrajectoryStore::new();
        s.record(UserId(1), sp(0.0, 0.0, 0));
        s.record(UserId(1), sp(1.0, 0.0, 10));
        s.record(UserId(2), sp(5.0, 5.0, 3));
        assert_eq!(s.user_count(), 2);
        assert_eq!(s.total_points(), 3);
        assert_eq!(s.phl(UserId(1)).unwrap().len(), 2);
        assert!(s.phl(UserId(9)).is_none());
    }

    #[test]
    fn record_clamped_tolerates_reordered_updates() {
        let mut s = TrajectoryStore::new();
        assert!(!s.record_clamped(UserId(1), sp(0.0, 0.0, 100)));
        assert!(s.record_clamped(UserId(1), sp(1.0, 0.0, 50)));
        assert_eq!(s.phl(UserId(1)).unwrap().last().unwrap().t, TimeSec(100));
        assert_eq!(s.total_points(), 2);
    }

    #[test]
    fn ensure_user_registers_empty() {
        let mut s = TrajectoryStore::new();
        s.ensure_user(UserId(7));
        assert_eq!(s.user_count(), 1);
        assert!(s.phl(UserId(7)).unwrap().is_empty());
        assert_eq!(s.total_points(), 0);
    }

    #[test]
    fn users_crossing_filters_by_box() {
        let mut s = TrajectoryStore::new();
        s.record(UserId(1), sp(0.0, 0.0, 0));
        s.record(UserId(2), sp(100.0, 100.0, 0));
        s.record(UserId(3), sp(1.0, 1.0, 50));
        let b = StBox::new(
            Rect::from_bounds(-5.0, -5.0, 5.0, 5.0),
            TimeInterval::new(TimeSec(0), TimeSec(10)),
        );
        assert_eq!(s.users_crossing(&b), vec![UserId(1)]);
    }

    #[test]
    fn iteration_is_ordered() {
        let mut s = TrajectoryStore::new();
        for id in [5u64, 1, 3] {
            s.record(UserId(id), sp(0.0, 0.0, 0));
        }
        let order: Vec<u64> = s.users().map(|u| u.raw()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }
}
