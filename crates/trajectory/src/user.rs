//! User identifiers.

use std::fmt;

/// An opaque identifier for a registered user of the trusted server.
///
/// The TS knows real identities; service providers only ever see
/// pseudonyms (`hka-anonymity::Pseudonym`). Keeping the two as distinct
/// types makes it impossible to leak a `UserId` into an outgoing request
/// by accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl UserId {
    /// The raw numeric id.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_raw() {
        let u = UserId(42);
        assert_eq!(u.to_string(), "u42");
        assert_eq!(u.raw(), 42);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(UserId(2) < UserId(10));
    }
}
