//! Differential and property tests: the grid index must agree with the
//! brute-force reference on every query.

use hka_geo::{Rect, SpaceTimeScale, StBox, StPoint, TimeInterval, TimeSec};
use hka_granules::Granularity;
use hka_trajectory::{
    brute, CompactionPolicy, GridIndex, GridIndexConfig, IndexBackend, IndexDelta, IndexSnapshot,
    Phl, RTreeIndex, TrajectoryStore, UnionIndex, UserId,
};
use proptest::prelude::*;

/// A compact world so that collisions and ties are common.
fn arb_stpoint() -> impl Strategy<Value = StPoint> {
    (0.0f64..1000.0, 0.0f64..1000.0, 0i64..3600)
        .prop_map(|(x, y, t)| StPoint::xyt(x, y, TimeSec(t)))
}

fn arb_store(max_users: usize, max_pts: usize) -> impl Strategy<Value = TrajectoryStore> {
    prop::collection::vec(
        (
            0u64..max_users as u64,
            prop::collection::vec(arb_stpoint(), 1..max_pts),
        ),
        1..max_users,
    )
    .prop_map(|users| {
        // Duplicate user ids are possible: merge their points first so
        // that the store's time-ordering invariant holds.
        let mut merged: std::collections::BTreeMap<u64, Vec<StPoint>> =
            std::collections::BTreeMap::new();
        for (uid, pts) in users {
            merged.entry(uid).or_default().extend(pts);
        }
        let mut store = TrajectoryStore::new();
        for (uid, pts) in merged {
            let phl = Phl::from_points(pts);
            for p in phl.points() {
                store.record(UserId(uid), *p);
            }
        }
        store
    })
}

fn configs() -> impl Strategy<Value = GridIndexConfig> {
    (10.0f64..400.0, 10i64..1200, 0.1f64..20.0).prop_map(|(cs, cd, v)| GridIndexConfig {
        cell_size: cs,
        cell_duration: cd,
        scale: SpaceTimeScale::new(v),
    })
}

fn arb_box() -> impl Strategy<Value = StBox> {
    (arb_stpoint(), arb_stpoint())
        .prop_map(|(a, b)| StBox::new(Rect::new(a.pos, b.pos), TimeInterval::new(a.t, b.t)))
}

/// One step of the sharded ingest lifecycle, as seen by the union index.
#[derive(Debug, Clone)]
enum UnionOp {
    /// An in-order location update on the owning shard.
    Record { u: u64, x: f64, y: f64, dt: i64 },
    /// An out-of-order update whose timestamp the ingest path clamps
    /// forward onto the user's latest observation (`record_clamped`).
    Regress { u: u64, x: f64, y: f64, back: i64 },
    /// An epoch barrier: every buffered delta drains into the union.
    Epoch,
    /// History compaction: barrier, per-shard compact + rebuild, and
    /// union invalidation — exactly the sharded `compact_history` order.
    Compact { keep: i64 },
}

fn arb_union_op() -> impl Strategy<Value = UnionOp> {
    // Weighted mix: mostly records, a sprinkle of clamped regressions
    // and barriers, occasional compaction.
    (0u32..11, 0u64..8, 0.0f64..1000.0, 0.0f64..1000.0, 1i64..600).prop_map(|(kind, u, x, y, a)| {
        match kind {
            0..=4 => UnionOp::Record {
                u,
                x,
                y,
                dt: a % 120,
            },
            5 | 6 => UnionOp::Regress { u, x, y, back: a },
            7..=9 => UnionOp::Epoch,
            _ => UnionOp::Compact { keep: 60 + a % 540 },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn users_crossing_matches_brute(store in arb_store(12, 15), cfg in configs(), b in arb_box()) {
        let idx = GridIndex::build(&store, cfg);
        let fast = idx.users_crossing(&b);
        let slow = brute::users_crossing(&store, &b);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn count_users_matches_cardinality(store in arb_store(12, 15), cfg in configs(), b in arb_box()) {
        let idx = GridIndex::build(&store, cfg);
        let n = idx.users_crossing(&b).len();
        prop_assert_eq!(idx.count_users_crossing(&b, usize::MAX), n);
        // The limited variant saturates at the limit.
        if n >= 2 {
            prop_assert_eq!(idx.count_users_crossing(&b, 2), 2);
        }
    }

    #[test]
    fn k_nearest_matches_brute_distances(
        store in arb_store(12, 15),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..8,
    ) {
        let idx = GridIndex::build(&store, cfg);
        let fast = idx.k_nearest_users(&seed, k, None);
        let slow = brute::k_nearest_users(&store, &seed, k, None, &cfg.scale);
        prop_assert_eq!(fast.len(), slow.len());
        // Distances must agree (the identity of equidistant users may not).
        for (f, s) in fast.iter().zip(slow.iter()) {
            let df = cfg.scale.dist_sq(&seed, &f.1);
            let ds = cfg.scale.dist_sq(&seed, &s.1);
            prop_assert!((df - ds).abs() <= 1e-6 * ds.max(1.0),
                "index dist {} vs brute dist {}", df, ds);
        }
        // Distinct users only.
        let mut ids: Vec<UserId> = fast.iter().map(|(u, _)| *u).collect();
        ids.dedup();
        prop_assert_eq!(ids.len(), fast.len());
    }

    #[test]
    fn k_nearest_respects_exclusion(
        store in arb_store(8, 10),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..6,
        excl in 0u64..8,
    ) {
        let idx = GridIndex::build(&store, cfg);
        let got = idx.k_nearest_users(&seed, k, Some(UserId(excl)));
        prop_assert!(got.iter().all(|(u, _)| *u != UserId(excl)));
    }

    #[test]
    fn rtree_matches_brute_on_all_queries(
        store in arb_store(12, 15),
        v in 0.1f64..20.0,
        b in arb_box(),
        seed in arb_stpoint(),
        k in 1usize..8,
    ) {
        let scale = SpaceTimeScale::new(v);
        let tree = RTreeIndex::build(&store, scale);
        tree.check_invariants().unwrap();
        // Range query.
        prop_assert_eq!(tree.users_crossing(&b), brute::users_crossing(&store, &b));
        // kNN distances.
        let fast = tree.k_nearest_users(&seed, k, None);
        let slow = brute::k_nearest_users(&store, &seed, k, None, &scale);
        prop_assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(slow.iter()) {
            let df = scale.dist_sq(&seed, &f.1);
            let ds = scale.dist_sq(&seed, &s.1);
            prop_assert!((df - ds).abs() <= 1e-6 * ds.max(1.0), "rtree {} vs brute {}", df, ds);
        }
        // Exclusion honored.
        let excl = tree.k_nearest_users(&seed, k, Some(UserId(0)));
        prop_assert!(excl.iter().all(|(u, _)| *u != UserId(0)));
    }

    #[test]
    fn grid_and_rtree_agree(
        store in arb_store(10, 12),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..6,
    ) {
        let grid = GridIndex::build(&store, cfg);
        let tree = RTreeIndex::build(&store, cfg.scale);
        let a = grid.k_nearest_users(&seed, k, None);
        let b = tree.k_nearest_users(&seed, k, None);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            let dx = cfg.scale.dist_sq(&seed, &x.1);
            let dy = cfg.scale.dist_sq(&seed, &y.1);
            prop_assert!((dx - dy).abs() <= 1e-6 * dy.max(1.0));
        }
    }

    /// The tentpole contract: every backend, driven purely through the
    /// `SpatialIndex` trait, returns identical anonymity sets
    /// (`users_crossing`), co-location counts (including the early-exit
    /// variant), and k-nearest rankings. The brute backend is the
    /// oracle. Answers must match **exactly** — users, and the
    /// representative points themselves: the canonical equal-distance
    /// tie rule (smallest `(t, x, y)` among a user's exactly
    /// equidistant observations) makes the representative point
    /// scan-order-independent, so byte equality holds across backends,
    /// insertion orders, and partition layouts.
    #[test]
    fn backends_agree_through_the_trait(
        store in arb_store(12, 15),
        cfg in configs(),
        b in arb_box(),
        seed in arb_stpoint(),
        k in 1usize..8,
    ) {
        let oracle = IndexBackend::Brute.build(&store, cfg);
        let want_set = oracle.users_crossing(&b);
        let want_knn = oracle.k_nearest_users(&seed, k, None);
        for backend in [IndexBackend::Grid, IndexBackend::RTree, IndexBackend::Soa] {
            let idx = backend.build(&store, cfg);
            prop_assert_eq!(idx.backend(), backend);
            prop_assert_eq!(idx.len(), store.total_points());
            prop_assert_eq!(idx.users_crossing(&b), want_set.clone(),
                "{} anonymity set", backend);
            for limit in [0usize, 1, 3, usize::MAX] {
                prop_assert_eq!(
                    idx.count_users_crossing(&b, limit),
                    oracle.count_users_crossing(&b, limit),
                    "{} co-location count at limit {}", backend, limit
                );
            }
            prop_assert_eq!(
                idx.k_nearest_users(&seed, k, None),
                want_knn.clone(),
                "{} kNN answer", backend
            );
        }
    }

    /// Bulk build and incremental insert are interchangeable for every
    /// backend — the TS ingests online, benches bulk-load.
    #[test]
    fn incremental_insert_matches_bulk_build(
        store in arb_store(10, 12),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..6,
    ) {
        for backend in IndexBackend::ALL {
            let built = backend.build(&store, cfg);
            let mut incr = backend.make(cfg);
            for (u, phl) in store.iter() {
                for p in phl.points() {
                    incr.insert(u, *p);
                }
            }
            prop_assert_eq!(built.len(), incr.len(), "{}", backend);
            let a = built.k_nearest_users(&seed, k, None);
            let b = incr.k_nearest_users(&seed, k, None);
            prop_assert_eq!(a.len(), b.len(), "{}", backend);
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.0, y.0, "{}", backend);
                prop_assert_eq!(
                    cfg.scale.dist_sq(&seed, &x.1).to_bits(),
                    cfg.scale.dist_sq(&seed, &y.1).to_bits(),
                    "{}", backend
                );
            }
        }
    }

    /// A partition-union snapshot over a random mix of backends answers
    /// the global k-nearest query exactly like one whole-store oracle —
    /// the property that lets a sharded run mix-and-match backends.
    #[test]
    fn mixed_backend_snapshot_matches_oracle(
        store in arb_store(10, 12),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..6,
        shards in 1usize..5,
        picks in prop::collection::vec(0usize..3, 4),
    ) {
        let oracle = IndexBackend::Brute.build(&store, cfg);
        let mut parts: Vec<_> = (0..shards)
            .map(|i| IndexBackend::ALL[picks[i % picks.len()]].make(cfg))
            .collect();
        for (u, phl) in store.iter() {
            for p in phl.points() {
                parts[(u.raw() as usize) % shards].insert(u, *p);
            }
        }
        let snap = IndexSnapshot::new(parts.iter().map(|p| p.as_ref()).collect());
        let got = snap.k_nearest_users(&seed, k, None);
        let want = oracle.k_nearest_users(&seed, k, None);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert_eq!(g.0, w.0);
            prop_assert_eq!(
                cfg.scale.dist_sq(&seed, &g.1).to_bits(),
                cfg.scale.dist_sq(&seed, &w.1).to_bits()
            );
        }
    }

    /// The incremental union survives any interleaving of in-order
    /// inserts, clamped re-timestamps, epoch rollovers, and history
    /// compaction: at every epoch boundary (the only instants protected
    /// requests can observe it) its answers are byte-identical to a
    /// fresh partition-union built from the shard stores.
    #[test]
    fn incremental_union_equals_fresh_union_under_interleaving(
        ops in prop::collection::vec(arb_union_op(), 1..60),
        cfg in configs(),
        shards in 1usize..5,
        seed in arb_stpoint(),
        k in 1usize..8,
        b in arb_box(),
    ) {
        let mut stores: Vec<TrajectoryStore> =
            (0..shards).map(|_| TrajectoryStore::new()).collect();
        let mut union = UnionIndex::new(IndexBackend::Grid, cfg, shards);
        let mut pending: Vec<IndexDelta> = Vec::new();
        let mut pos = 0u64;
        let mut clock = 0i64;
        let mut last: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();

        // Re-derive per-user clamp floors from the stores (needed after
        // compaction rewrites old observations into granule medoids).
        fn reset_floors(
            stores: &[TrajectoryStore],
            last: &mut std::collections::HashMap<u64, i64>,
        ) {
            last.clear();
            for s in stores {
                for (u, phl) in s.iter() {
                    if let Some(p) = phl.last() {
                        last.insert(u.raw(), p.t.0);
                    }
                }
            }
        }

        for op in &ops {
            match op {
                UnionOp::Record { u, x, y, dt } => {
                    clock += dt;
                    let t = clock.max(last.get(u).copied().unwrap_or(i64::MIN));
                    let p = StPoint::xyt(*x, *y, TimeSec(t));
                    stores[(*u as usize) % shards].record(UserId(*u), p);
                    pending.push(IndexDelta { pos, user: UserId(*u), point: p });
                    pos += 1;
                    last.insert(*u, t);
                }
                UnionOp::Regress { u, x, y, back } => {
                    let raw = clock - back;
                    let floor = last.get(u).copied().unwrap_or(i64::MIN);
                    let eff = raw.max(floor);
                    let clamped = stores[(*u as usize) % shards]
                        .record_clamped(UserId(*u), StPoint::xyt(*x, *y, TimeSec(raw)));
                    prop_assert_eq!(clamped, raw < floor, "clamp detection");
                    // The delta carries the post-clamp timestamp, just as
                    // the ingest path normalizes before recording.
                    let p = StPoint::xyt(*x, *y, TimeSec(eff));
                    pending.push(IndexDelta { pos, user: UserId(*u), point: p });
                    pos += 1;
                    last.insert(*u, eff);
                }
                UnionOp::Epoch => {
                    union.apply_epoch(&mut pending);
                    prop_assert!(pending.is_empty());
                    if !union.is_live() {
                        union.rebuild(stores.iter(), shards);
                    }
                    // Oracle: a fresh per-shard build merged through the
                    // snapshot union.
                    let parts: Vec<_> = stores
                        .iter()
                        .map(|s| IndexBackend::Grid.build(s, cfg))
                        .collect();
                    let snap = IndexSnapshot::new(parts.iter().map(|p| p.as_ref()).collect());
                    prop_assert_eq!(
                        union.k_nearest_users(&seed, k, None),
                        snap.k_nearest_users(&seed, k, None),
                        "kNN after epoch"
                    );
                    prop_assert_eq!(
                        union.k_nearest_users(&seed, k, Some(UserId(0))),
                        snap.k_nearest_users(&seed, k, Some(UserId(0))),
                        "excluding kNN after epoch"
                    );
                    // Each window query runs twice: the first answer is
                    // computed against the index, the second is a memo
                    // hit — both must equal the fresh snapshot oracle.
                    let crossing = union.users_crossing(&b);
                    prop_assert_eq!(&crossing, &snap.users_crossing(&b));
                    prop_assert_eq!(&union.users_crossing(&b), &crossing, "memoized set");
                    for limit in [0usize, 1, usize::MAX] {
                        let n = union.count_users_crossing(&b, limit);
                        prop_assert_eq!(n, snap.count_users_crossing(&b, limit));
                        prop_assert_eq!(union.count_users_crossing(&b, limit), n, "memoized count");
                    }
                    let total: usize = stores.iter().map(|s| s.total_points()).sum();
                    prop_assert_eq!(union.len(), total);
                }
                UnionOp::Compact { keep } => {
                    // Sharded compact_history order: flush (drain the
                    // epoch), compact every shard, invalidate the union.
                    union.apply_epoch(&mut pending);
                    let policy = CompactionPolicy::new(*keep, Granularity::Minutes);
                    for s in stores.iter_mut() {
                        s.compact(TimeSec(clock), &policy);
                    }
                    union.invalidate();
                    prop_assert!(!union.is_live());
                    reset_floors(&stores, &mut last);
                }
            }
        }

        // A final barrier: whatever state the schedule left behind must
        // still converge to the fresh union.
        union.apply_epoch(&mut pending);
        if !union.is_live() {
            union.rebuild(stores.iter(), shards);
        }
        let parts: Vec<_> = stores.iter().map(|s| IndexBackend::Grid.build(s, cfg)).collect();
        let snap = IndexSnapshot::new(parts.iter().map(|p| p.as_ref()).collect());
        prop_assert_eq!(
            union.k_nearest_users(&seed, k, None),
            snap.k_nearest_users(&seed, k, None),
            "kNN at the final barrier"
        );
    }

    #[test]
    fn trace_io_round_trips(store in arb_store(10, 12)) {
        let mut buf = Vec::new();
        hka_trajectory::io::write_store(&store, &mut buf).unwrap();
        let back = hka_trajectory::io::read_store(buf.as_slice()).unwrap();
        prop_assert_eq!(back.user_count(), store.user_count());
        prop_assert_eq!(back.total_points(), store.total_points());
        for (u, phl) in store.iter() {
            prop_assert_eq!(back.phl(u).unwrap().points(), phl.points());
        }
    }

    #[test]
    fn phl_nearest_matches_scan(pts in prop::collection::vec(arb_stpoint(), 1..40), q in arb_stpoint(), v in 0.0f64..20.0) {
        let phl = Phl::from_points(pts);
        let scale = SpaceTimeScale::new(v);
        let fast = phl.nearest_point(&q, &scale).unwrap();
        let best = phl
            .points()
            .iter()
            .map(|p| scale.dist_sq(&q, p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((scale.dist_sq(&q, &fast) - best).abs() <= 1e-9 * best.max(1.0));
    }

    #[test]
    fn phl_crosses_iff_some_point_inside(pts in prop::collection::vec(arb_stpoint(), 1..40), b in arb_box()) {
        let phl = Phl::from_points(pts);
        let expected = phl.points().iter().any(|p| b.contains(p));
        prop_assert_eq!(phl.crosses(&b), expected);
    }

    #[test]
    fn position_at_stays_in_mbr(pts in prop::collection::vec(arb_stpoint(), 2..20), f in 0.0f64..1.0) {
        let phl = Phl::from_points(pts);
        let t0 = phl.first().unwrap().t;
        let t1 = phl.last().unwrap().t;
        let t = t0 + ((t1 - t0) as f64 * f) as i64;
        let pos = phl.position_at(t).unwrap();
        let mbr = Rect::mbr(phl.points().iter().map(|p| &p.pos)).unwrap().buffer(1e-9);
        prop_assert!(mbr.contains(&pos));
    }
}
