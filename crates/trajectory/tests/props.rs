//! Differential and property tests: the grid index must agree with the
//! brute-force reference on every query.

use hka_geo::{Rect, SpaceTimeScale, StBox, StPoint, TimeInterval, TimeSec};
use hka_trajectory::{
    brute, GridIndex, GridIndexConfig, IndexBackend, IndexSnapshot, Phl, RTreeIndex,
    TrajectoryStore, UserId,
};
use proptest::prelude::*;

/// A compact world so that collisions and ties are common.
fn arb_stpoint() -> impl Strategy<Value = StPoint> {
    (0.0f64..1000.0, 0.0f64..1000.0, 0i64..3600)
        .prop_map(|(x, y, t)| StPoint::xyt(x, y, TimeSec(t)))
}

fn arb_store(max_users: usize, max_pts: usize) -> impl Strategy<Value = TrajectoryStore> {
    prop::collection::vec(
        (
            0u64..max_users as u64,
            prop::collection::vec(arb_stpoint(), 1..max_pts),
        ),
        1..max_users,
    )
    .prop_map(|users| {
        // Duplicate user ids are possible: merge their points first so
        // that the store's time-ordering invariant holds.
        let mut merged: std::collections::BTreeMap<u64, Vec<StPoint>> =
            std::collections::BTreeMap::new();
        for (uid, pts) in users {
            merged.entry(uid).or_default().extend(pts);
        }
        let mut store = TrajectoryStore::new();
        for (uid, pts) in merged {
            let phl = Phl::from_points(pts);
            for p in phl.points() {
                store.record(UserId(uid), *p);
            }
        }
        store
    })
}

fn configs() -> impl Strategy<Value = GridIndexConfig> {
    (10.0f64..400.0, 10i64..1200, 0.1f64..20.0).prop_map(|(cs, cd, v)| GridIndexConfig {
        cell_size: cs,
        cell_duration: cd,
        scale: SpaceTimeScale::new(v),
    })
}

fn arb_box() -> impl Strategy<Value = StBox> {
    (arb_stpoint(), arb_stpoint())
        .prop_map(|(a, b)| StBox::new(Rect::new(a.pos, b.pos), TimeInterval::new(a.t, b.t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn users_crossing_matches_brute(store in arb_store(12, 15), cfg in configs(), b in arb_box()) {
        let idx = GridIndex::build(&store, cfg);
        let fast = idx.users_crossing(&b);
        let slow = brute::users_crossing(&store, &b);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn count_users_matches_cardinality(store in arb_store(12, 15), cfg in configs(), b in arb_box()) {
        let idx = GridIndex::build(&store, cfg);
        let n = idx.users_crossing(&b).len();
        prop_assert_eq!(idx.count_users_crossing(&b, usize::MAX), n);
        // The limited variant saturates at the limit.
        if n >= 2 {
            prop_assert_eq!(idx.count_users_crossing(&b, 2), 2);
        }
    }

    #[test]
    fn k_nearest_matches_brute_distances(
        store in arb_store(12, 15),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..8,
    ) {
        let idx = GridIndex::build(&store, cfg);
        let fast = idx.k_nearest_users(&seed, k, None);
        let slow = brute::k_nearest_users(&store, &seed, k, None, &cfg.scale);
        prop_assert_eq!(fast.len(), slow.len());
        // Distances must agree (the identity of equidistant users may not).
        for (f, s) in fast.iter().zip(slow.iter()) {
            let df = cfg.scale.dist_sq(&seed, &f.1);
            let ds = cfg.scale.dist_sq(&seed, &s.1);
            prop_assert!((df - ds).abs() <= 1e-6 * ds.max(1.0),
                "index dist {} vs brute dist {}", df, ds);
        }
        // Distinct users only.
        let mut ids: Vec<UserId> = fast.iter().map(|(u, _)| *u).collect();
        ids.dedup();
        prop_assert_eq!(ids.len(), fast.len());
    }

    #[test]
    fn k_nearest_respects_exclusion(
        store in arb_store(8, 10),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..6,
        excl in 0u64..8,
    ) {
        let idx = GridIndex::build(&store, cfg);
        let got = idx.k_nearest_users(&seed, k, Some(UserId(excl)));
        prop_assert!(got.iter().all(|(u, _)| *u != UserId(excl)));
    }

    #[test]
    fn rtree_matches_brute_on_all_queries(
        store in arb_store(12, 15),
        v in 0.1f64..20.0,
        b in arb_box(),
        seed in arb_stpoint(),
        k in 1usize..8,
    ) {
        let scale = SpaceTimeScale::new(v);
        let tree = RTreeIndex::build(&store, scale);
        tree.check_invariants().unwrap();
        // Range query.
        prop_assert_eq!(tree.users_crossing(&b), brute::users_crossing(&store, &b));
        // kNN distances.
        let fast = tree.k_nearest_users(&seed, k, None);
        let slow = brute::k_nearest_users(&store, &seed, k, None, &scale);
        prop_assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(slow.iter()) {
            let df = scale.dist_sq(&seed, &f.1);
            let ds = scale.dist_sq(&seed, &s.1);
            prop_assert!((df - ds).abs() <= 1e-6 * ds.max(1.0), "rtree {} vs brute {}", df, ds);
        }
        // Exclusion honored.
        let excl = tree.k_nearest_users(&seed, k, Some(UserId(0)));
        prop_assert!(excl.iter().all(|(u, _)| *u != UserId(0)));
    }

    #[test]
    fn grid_and_rtree_agree(
        store in arb_store(10, 12),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..6,
    ) {
        let grid = GridIndex::build(&store, cfg);
        let tree = RTreeIndex::build(&store, cfg.scale);
        let a = grid.k_nearest_users(&seed, k, None);
        let b = tree.k_nearest_users(&seed, k, None);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            let dx = cfg.scale.dist_sq(&seed, &x.1);
            let dy = cfg.scale.dist_sq(&seed, &y.1);
            prop_assert!((dx - dy).abs() <= 1e-6 * dy.max(1.0));
        }
    }

    /// The tentpole contract: every backend, driven purely through the
    /// `SpatialIndex` trait, returns identical anonymity sets
    /// (`users_crossing`), co-location counts (including the early-exit
    /// variant), and k-nearest rankings. The brute backend is the
    /// oracle. Users and their scaled distances must match bit for bit
    /// — per-user minimum distances are computed from the same point
    /// multiset by the same formula in every backend, and user-level
    /// ties break by ascending id everywhere. (Only the *representative
    /// point* of one user may differ among its exact-equidistant
    /// observations, so points are compared by distance, not identity.)
    #[test]
    fn backends_agree_through_the_trait(
        store in arb_store(12, 15),
        cfg in configs(),
        b in arb_box(),
        seed in arb_stpoint(),
        k in 1usize..8,
    ) {
        let oracle = IndexBackend::Brute.build(&store, cfg);
        let want_set = oracle.users_crossing(&b);
        let want_knn = oracle.k_nearest_users(&seed, k, None);
        for backend in [IndexBackend::Grid, IndexBackend::RTree] {
            let idx = backend.build(&store, cfg);
            prop_assert_eq!(idx.backend(), backend);
            prop_assert_eq!(idx.len(), store.total_points());
            prop_assert_eq!(idx.users_crossing(&b), want_set.clone(),
                "{} anonymity set", backend);
            for limit in [0usize, 1, 3, usize::MAX] {
                prop_assert_eq!(
                    idx.count_users_crossing(&b, limit),
                    oracle.count_users_crossing(&b, limit),
                    "{} co-location count at limit {}", backend, limit
                );
            }
            let fast = idx.k_nearest_users(&seed, k, None);
            prop_assert_eq!(fast.len(), want_knn.len(), "{} kNN length", backend);
            for (f, s) in fast.iter().zip(want_knn.iter()) {
                prop_assert_eq!(f.0, s.0, "{} kNN user ranking", backend);
                prop_assert_eq!(
                    cfg.scale.dist_sq(&seed, &f.1).to_bits(),
                    cfg.scale.dist_sq(&seed, &s.1).to_bits(),
                    "{} kNN distance for {}", backend, f.0
                );
            }
        }
    }

    /// Bulk build and incremental insert are interchangeable for every
    /// backend — the TS ingests online, benches bulk-load.
    #[test]
    fn incremental_insert_matches_bulk_build(
        store in arb_store(10, 12),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..6,
    ) {
        for backend in IndexBackend::ALL {
            let built = backend.build(&store, cfg);
            let mut incr = backend.make(cfg);
            for (u, phl) in store.iter() {
                for p in phl.points() {
                    incr.insert(u, *p);
                }
            }
            prop_assert_eq!(built.len(), incr.len(), "{}", backend);
            let a = built.k_nearest_users(&seed, k, None);
            let b = incr.k_nearest_users(&seed, k, None);
            prop_assert_eq!(a.len(), b.len(), "{}", backend);
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.0, y.0, "{}", backend);
                prop_assert_eq!(
                    cfg.scale.dist_sq(&seed, &x.1).to_bits(),
                    cfg.scale.dist_sq(&seed, &y.1).to_bits(),
                    "{}", backend
                );
            }
        }
    }

    /// A partition-union snapshot over a random mix of backends answers
    /// the global k-nearest query exactly like one whole-store oracle —
    /// the property that lets a sharded run mix-and-match backends.
    #[test]
    fn mixed_backend_snapshot_matches_oracle(
        store in arb_store(10, 12),
        cfg in configs(),
        seed in arb_stpoint(),
        k in 1usize..6,
        shards in 1usize..5,
        picks in prop::collection::vec(0usize..3, 4),
    ) {
        let oracle = IndexBackend::Brute.build(&store, cfg);
        let mut parts: Vec<_> = (0..shards)
            .map(|i| IndexBackend::ALL[picks[i % picks.len()]].make(cfg))
            .collect();
        for (u, phl) in store.iter() {
            for p in phl.points() {
                parts[(u.raw() as usize) % shards].insert(u, *p);
            }
        }
        let snap = IndexSnapshot::new(parts.iter().map(|p| p.as_ref()).collect());
        let got = snap.k_nearest_users(&seed, k, None);
        let want = oracle.k_nearest_users(&seed, k, None);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert_eq!(g.0, w.0);
            prop_assert_eq!(
                cfg.scale.dist_sq(&seed, &g.1).to_bits(),
                cfg.scale.dist_sq(&seed, &w.1).to_bits()
            );
        }
    }

    #[test]
    fn trace_io_round_trips(store in arb_store(10, 12)) {
        let mut buf = Vec::new();
        hka_trajectory::io::write_store(&store, &mut buf).unwrap();
        let back = hka_trajectory::io::read_store(buf.as_slice()).unwrap();
        prop_assert_eq!(back.user_count(), store.user_count());
        prop_assert_eq!(back.total_points(), store.total_points());
        for (u, phl) in store.iter() {
            prop_assert_eq!(back.phl(u).unwrap().points(), phl.points());
        }
    }

    #[test]
    fn phl_nearest_matches_scan(pts in prop::collection::vec(arb_stpoint(), 1..40), q in arb_stpoint(), v in 0.0f64..20.0) {
        let phl = Phl::from_points(pts);
        let scale = SpaceTimeScale::new(v);
        let fast = phl.nearest_point(&q, &scale).unwrap();
        let best = phl
            .points()
            .iter()
            .map(|p| scale.dist_sq(&q, p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((scale.dist_sq(&q, &fast) - best).abs() <= 1e-9 * best.max(1.0));
    }

    #[test]
    fn phl_crosses_iff_some_point_inside(pts in prop::collection::vec(arb_stpoint(), 1..40), b in arb_box()) {
        let phl = Phl::from_points(pts);
        let expected = phl.points().iter().any(|p| b.contains(p));
        prop_assert_eq!(phl.crosses(&b), expected);
    }

    #[test]
    fn position_at_stays_in_mbr(pts in prop::collection::vec(arb_stpoint(), 2..20), f in 0.0f64..1.0) {
        let phl = Phl::from_points(pts);
        let t0 = phl.first().unwrap().t;
        let t1 = phl.last().unwrap().t;
        let t = t0 + ((t1 - t0) as f64 * f) as i64;
        let pos = phl.position_at(t).unwrap();
        let mbr = Rect::mbr(phl.points().iter().map(|p| &p.pos)).unwrap().buffer(1e-9);
        prop_assert!(mbr.contains(&pos));
    }
}
