//! The Section-1 attack, measured: a malicious provider with a phone
//! book re-identifies users from their request streams.
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```
//!
//! "a service request containing as location information the exact
//! coordinates of a private house provides sufficient information to
//! personally identify the house's owner … a simple look up in a phone
//! book (or similar sources) can reveal the people who live there."
//!
//! Three runs of the same city under privacy Off / Medium / High; the
//! adversary links requests (pseudonyms + trajectory tracking at Θ) and
//! claims identities via the home registry. Protection should collapse
//! the re-identification rate.

use hka::prelude::*;

fn run(level: PrivacyLevel, label: &str) {
    let world = World::generate(&WorldConfig {
        seed: 31,
        days: 10,
        n_commuters: 12,
        n_roamers: 60,
        n_poi_regulars: 8,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        background_request_rate: 0.3,
        ..WorldConfig::default()
    });

    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));

    // Commuters and POI regulars are the attack targets (they have
    // registered homes); they adopt the privacy level under test. Each
    // gets an all-hours home LBQID — "requests from my home identify me"
    // — in addition to commuters' commute patterns.
    let mut registry = HomeRegistry::new();
    let mut targets: Vec<UserId> = Vec::new();
    for agent in &world.agents {
        let home = world.home_of(agent.user);
        let protected = home.is_some();
        ts.register_user(
            agent.user,
            if protected { level } else { PrivacyLevel::Off },
        );
        if let Some(home) = home {
            registry.add(home, agent.user);
            targets.push(agent.user);
            let h = home;
            let dsl = format!(
                "lbqid at_home {{ element area({}, {}, {}, {}) window(00:00, 23:59); recur 2.Days; }}",
                h.min().x, h.min().y, h.max().x, h.max().y
            );
            ts.add_lbqid(agent.user, parse_lbqid(&dsl).unwrap());
            if let Some(office) = world.office_of(agent.user) {
                ts.add_lbqid(agent.user, Lbqid::example_commute(home, office));
            }
        }
    }

    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let _ = ts.handle_request(e.user, e.at, ServiceId(service));
            }
        }
    }

    // The provider's view, attacked with the standard composite linker.
    let (truth, requests): (Vec<UserId>, Vec<SpRequest>) = ts.outbox().iter().cloned().unzip();
    // Pseudonyms are the reliable link: every request carries one, and
    // the paper assumes "pseudonyms are not shared by different
    // individuals". (Tracker-based chaining across pseudonym changes is
    // explored, with a Θ sweep, in experiment F4.)
    let linker = PseudonymLinker;
    let adv = Adversary::new(&linker, 0.9, &registry);
    let report = adv.attack(&requests, &truth);

    let identified_targets = report.users_identified;
    println!(
        "{label:<8} requests {:>6}  clusters {:>5}  claims {:>4}  precision {:>5.1}%  targets identified {:>2}/{}",
        requests.len(),
        report.clusters,
        report.claims.len(),
        100.0 * report.precision(),
        identified_targets,
        targets.len(),
    );
}

fn main() {
    println!("adversary: pseudonym linking + phone-book lookup\n");
    run(PrivacyLevel::Off, "Off");
    run(PrivacyLevel::Medium, "Medium");
    run(PrivacyLevel::High, "High");
    println!("\nOff exposes exact home coordinates; Medium/High cloak pattern");
    println!("requests against k co-located histories and rotate pseudonyms at");
    println!("mix-zones, so home evidence becomes ambiguous and clusters shatter.");
}
