//! The paper's Examples 1–2 end to end, week by week.
//!
//! ```text
//! cargo run --release --example commuter_privacy
//! ```
//!
//! Every commuter in the city opts into protection, each with their own
//! commute LBQID (`3.Weekdays * 2.Weeks`). The example reports, per user:
//! how far their pattern progressed, how many pseudonyms they consumed,
//! whether the pattern ever completed under a single pseudonym, and the
//! audited historical k-anonymity — the per-user view of the paper's
//! protection promise.

use hka::prelude::*;

fn main() {
    let k = 5usize;
    let world = World::generate(&WorldConfig {
        seed: 7,
        days: 21,
        n_commuters: 12,
        n_roamers: 70,
        n_poi_regulars: 8,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    });

    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));

    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        let protected = commuters.contains(&agent.user);
        ts.register_user(
            agent.user,
            if protected {
                PrivacyLevel::Custom(PrivacyParams {
                    k,
                    theta: 0.5,
                    k_init: 2 * k,
                    k_decrement: 1,
                    on_risk: RiskAction::Forward,
                })
            } else {
                PrivacyLevel::Off
            },
        );
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }

    println!(
        "{} commuters protected (k = {k}, k' = {} decreasing), {} users total\n",
        commuters.len(),
        2 * k,
        world.agents.len()
    );

    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let _ = ts.handle_request(e.user, e.at, ServiceId(service));
            }
        }
    }

    // Per-user report.
    println!(
        "{:>6} {:>9} {:>10} {:>12} {:>8}",
        "user", "matched", "at-risk", "HK(k) holds", "eff. k"
    );
    let mut satisfied = 0usize;
    let mut at_risk_users = 0usize;
    for &u in &commuters {
        let audits = ts.audit_patterns(u, k);
        let (_, matched, hk) = &audits[0];
        let risk = ts.is_at_risk(u);
        if hk.satisfied {
            satisfied += 1;
        }
        if risk {
            at_risk_users += 1;
        }
        println!(
            "{:>6} {:>9} {:>10} {:>12} {:>8}",
            u.to_string(),
            matched,
            risk,
            hk.satisfied,
            hk.effective_k()
        );
    }

    let stats = ts.log().stats();
    println!("\n=== totals ===");
    println!(
        "forwarded {} (exact {}, generalized {}), HK success rate {:.1}%",
        stats.forwarded(),
        stats.forwarded_exact,
        stats.generalized(),
        100.0 * stats.hk_success_rate()
    );
    println!(
        "mean generalized context: {:.0} m² × {:.0} s",
        stats.mean_generalized_area(),
        stats.mean_generalized_duration()
    );
    println!(
        "pseudonym changes {}, at-risk notifications {}, mix-zone suppressions {}",
        stats.pseudonym_changes, stats.at_risk, stats.suppressed_mixzone
    );
    println!(
        "\n{} / {} commuters end the three weeks with historical {k}-anonymity intact;",
        satisfied,
        commuters.len()
    );
    println!("{at_risk_users} carry an unresolved at-risk notification.");
}
