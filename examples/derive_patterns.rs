//! LBQID derivation: the TS mines a user's history for the patterns that
//! could identify them, verifies them statistically, and registers the
//! dangerous ones for protection.
//!
//! ```text
//! cargo run --release --example derive_patterns
//! ```
//!
//! Section 4: "the derivation process will have to be based on
//! statistical analysis of the data about users movement history";
//! Conclusions: "very simple tools should be provided to define LBQIDs
//! and verify them based on statistical data."

use hka::prelude::*;

fn main() {
    // Two weeks of city life, no request noise needed — derivation works
    // on the location histories alone.
    let world = World::generate(&WorldConfig {
        seed: 77,
        days: 14,
        n_commuters: 15,
        n_roamers: 50,
        n_poi_regulars: 10,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        background_request_rate: 0.0,
        ..WorldConfig::default()
    });
    let store = world.store();

    let cfg = DerivationConfig::default();
    println!(
        "mining LBQIDs (cell {} m, dwell ≥ {} min, support ≥ {} days, population cap {})\n",
        cfg.cell,
        cfg.min_dwell / 60,
        cfg.min_days,
        cfg.max_population
    );

    let mut protected = 0usize;
    let mut none_found = 0usize;
    for agent in world.agents.iter().take(12) {
        let derived = derive_lbqids(&store, agent.user, &cfg);
        let kind = match &agent.role {
            Role::Commuter { .. } => "commuter",
            Role::Roamer { .. } => "roamer",
            Role::PoiRegular { .. } => "poi-regular",
        };
        if derived.is_empty() {
            none_found += 1;
            println!(
                "{:>5} ({kind:<11}) — no identifying recurring pattern found",
                agent.user.to_string()
            );
            continue;
        }
        protected += 1;
        let best = &derived[0];
        println!(
            "{:>5} ({kind:<11}) — {} candidate(s); most identifying: population {}, support {} days",
            agent.user.to_string(),
            derived.len(),
            best.matching_population,
            best.support_days
        );
        println!("        {}", best.lbqid);
    }

    println!("\n{protected} of the first 12 users have an identifying routine worth");
    println!("registering with the trusted server; {none_found} (mostly roamers) do not —");
    println!("their movements are already statistically anonymous.");

    // Close the loop: register the derived patterns and verify the TS
    // protects exactly those users.
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    for agent in &world.agents {
        ts.register_user(agent.user, PrivacyLevel::Medium);
    }
    let mut registered = 0;
    for agent in world.agents.iter().take(20) {
        for d in derive_lbqids(&store, agent.user, &cfg) {
            ts.add_lbqid(agent.user, d.lbqid);
            registered += 1;
        }
    }
    println!("\nregistered {registered} derived LBQIDs (first 20 users) with the trusted");
    println!("server — the monitors now generalize exactly the movements that would");
    println!("identify.");
}
