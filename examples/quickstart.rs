//! Quickstart: protect one commuter's home↔office routine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small synthetic city, registers one privacy-conscious
//! commuter (with the paper's Example-2 LBQID, written in the DSL) and a
//! background crowd, runs two simulated weeks through the trusted
//! server, and prints what the server did and what the provider saw.

use hka::prelude::*;

fn main() {
    // 1. A synthetic city with commuters and a background crowd.
    let world = World::generate(&WorldConfig {
        seed: 2024,
        days: 14,
        n_commuters: 15,
        n_roamers: 60,
        n_poi_regulars: 10,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    });
    let alice = world.commuters().next().expect("a commuter exists");
    let home = world.home_of(alice).unwrap();
    let office = world.office_of(alice).unwrap();

    // 2. Alice's commute is a quasi-identifier: state it in the DSL,
    //    exactly as the paper's Example 2 does.
    let dsl = format!(
        "lbqid commute {{
            element AreaCondominium area({}, {}, {}, {}) window(07:00, 08:00);
            element AreaOfficeBldg  area({}, {}, {}, {}) window(08:00, 09:00);
            element AreaOfficeBldg  area({}, {}, {}, {}) window(16:00, 18:00);
            element AreaCondominium area({}, {}, {}, {}) window(17:00, 19:00);
            recur 3.Weekdays * 2.Weeks;
        }}",
        home.min().x,
        home.min().y,
        home.max().x,
        home.max().y,
        office.min().x,
        office.min().y,
        office.max().x,
        office.max().y,
        office.min().x,
        office.min().y,
        office.max().x,
        office.max().y,
        home.min().x,
        home.min().y,
        home.max().x,
        home.max().y,
    );
    let commute = parse_lbqid(&dsl).expect("valid DSL");
    println!("LBQID under protection:\n  {commute}\n");

    // 3. A trusted server: Alice at Medium privacy, everyone else Off.
    let mut ts = TrustedServer::new(TsConfig::default());
    // Per-service tolerance constraints (Section 6.1): the background
    // navigation service needs tight contexts; the routine requests are
    // news-like and tolerate city-scale cloaks.
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    for agent in &world.agents {
        let level = if agent.user == alice {
            PrivacyLevel::Medium
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(agent.user, level);
    }
    ts.add_lbqid(alice, commute);

    // 4. Run the event stream.
    let mut alice_forwards = 0u32;
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let outcome = ts.handle_request(e.user, e.at, ServiceId(service));
                if e.user == alice {
                    if let RequestOutcome::Forwarded(req) = &outcome {
                        alice_forwards += 1;
                        if req.context.area() > 0.0 {
                            println!(
                                "generalized: {} → area {:>10.0} m², interval {:>5} s",
                                e.at.t,
                                req.context.area(),
                                req.context.duration()
                            );
                        }
                    }
                }
            }
        }
    }

    // 5. What happened?
    let stats = ts.log().stats();
    println!("\n=== server totals over {} days ===", 14);
    println!("forwarded requests:        {}", stats.forwarded());
    println!("  … of Alice's:            {alice_forwards}");
    println!("generalized (pattern):     {}", stats.generalized());
    println!("  HK-anonymity preserved:  {}", stats.forwarded_hk_ok);
    println!("  clamped by tolerance:    {}", stats.forwarded_hk_failed);
    println!("pseudonym changes:         {}", stats.pseudonym_changes);
    println!("at-risk notifications:     {}", stats.at_risk);

    // 6. Audit Alice's pattern against Definition 8.
    for (name, matched, hk) in ts.audit_patterns(alice, 5) {
        println!("\naudit '{name}': fully matched under current pseudonym = {matched}");
        println!(
            "historical {}-anonymity: {} (effective k = {}, witnesses: {:?})",
            hk.k,
            if hk.satisfied {
                "SATISFIED"
            } else {
                "VIOLATED"
            },
            hk.effective_k(),
            hk.witnesses.iter().take(8).collect::<Vec<_>>()
        );
        if !hk.satisfied {
            assert!(
                ts.is_at_risk(alice),
                "per Theorem 1, a violation can only follow at-risk requests"
            );
            println!(
                "  (expected: Alice ignored her at-risk notifications and kept\n   \
                 using the service — Theorem 1 assumes unlinking is always\n   \
                 available, which this crowd could not provide every time)"
            );
        }
    }
}
