//! Purpose (b) of the paper's framework: deployability analysis.
//!
//! ```text
//! cargo run --release --example service_planning
//! ```
//!
//! "to evaluate if the privacy policies that a location-based service
//! guarantees are sufficient to deploy the service in a certain area …
//! considering, for example, the typical density of users, their movement
//! patterns, their concerns about privacy, as well as the spatio-temporal
//! tolerance constraints of the service and the presence of natural
//! mix-zones in the area" (Conclusions).
//!
//! Three districts (downtown, suburb, rural) × two services
//! (hospital-finder with tight tolerances, localized news with loose
//! ones) × k ∈ {5, 10}: for each combination the operator gets the
//! Algorithm-1 success rate, expected context size, unlink fallback
//! availability and the residual at-risk rate.

use hka::prelude::*;

struct District {
    name: &'static str,
    world: World,
}

fn district(name: &'static str, n_roamers: usize, n_commuters: usize, seed: u64) -> District {
    District {
        name,
        world: World::generate(&WorldConfig {
            seed,
            days: 3,
            n_commuters,
            n_roamers,
            n_poi_regulars: n_roamers / 10,
            city: CityConfig {
                width: 2_500.0,
                height: 2_500.0,
                ..CityConfig::default()
            },
            background_request_rate: 0.0, // planning uses movement only
            ..WorldConfig::default()
        }),
    }
}

fn main() {
    let districts = vec![
        district("downtown", 150, 40, 11),
        district("suburb", 40, 15, 12),
        district("rural", 8, 2, 13),
    ];
    let services = [
        ("hospital-finder", Tolerance::navigation()),
        ("localized-news", Tolerance::news()),
    ];

    println!(
        "{:<10} {:<16} {:>3} {:>9} {:>12} {:>10} {:>10} {:>9}",
        "district", "service", "k", "HK-ok %", "mean m²", "mean s", "unlink %", "risk %"
    );
    for d in &districts {
        let store = d.world.store();
        let index = GridIndex::build(&store, GridIndexConfig::default());
        let mz = MixZoneManager::new(MixZoneConfig::default());
        for (svc, tolerance) in &services {
            for k in [5usize, 10] {
                let report = evaluate_deployment(
                    &store,
                    &index,
                    &mz,
                    &PlanningConfig {
                        k,
                        tolerance: *tolerance,
                        samples: 400,
                        seed: 99,
                    },
                );
                println!(
                    "{:<10} {:<16} {:>3} {:>8.1}% {:>12.0} {:>10.0} {:>9.1}% {:>8.1}%{}",
                    d.name,
                    svc,
                    k,
                    100.0 * report.hk_success_rate,
                    report.mean_area,
                    report.mean_duration,
                    100.0 * report.unlink_fallback_rate,
                    100.0 * report.at_risk_rate,
                    if report.deployable(0.05) {
                        ""
                    } else {
                        "   ← DO NOT DEPLOY"
                    }
                );
            }
        }
        println!();
    }
    println!("deployability bar: at most 5% of requests may end up unprotected");
}
