#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally.
#
#   scripts/tier1.sh            # build + tests + lint
#
# Matches the ROADMAP.md tier-1 contract (`cargo build --release &&
# cargo test -q`) and adds the workspace test suite and a warning-free
# clippy pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all -- --check

echo "== build (release) =="
cargo build --release

echo "== build (examples) =="
cargo build --release --workspace --examples

echo "== tier-1 tests (root package) =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== chaos (fixed seeds, fail-closed invariant) =="
cargo run --release -q --bin hka-sim -- chaos --seeds 8 --seed 1 --days 1

echo "== audit (journal replay smoke: simulate, then verify + audit) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q --bin hka-sim -- simulate --days 2 --commuters 4 \
    --roamers 20 --trace-out "$tmp/ts.journal" > /dev/null
cargo run --release -q -p hka-audit --bin hka-audit -- --journal "$tmp/ts.journal" \
    --json "$tmp/audit.json" --quiet
cargo run --release -q --bin hka-sim -- audit --journal "$tmp/ts.journal" --quiet

echo "== watch (live-tail smoke: report byte-identical to offline audit) =="
cargo run --release -q --bin hka-sim -- watch "$tmp/ts.journal" \
    --idle-exit 2 --interval-ms 50 --report "$tmp/watch.json" > /dev/null
cmp "$tmp/watch.json" "$tmp/audit.json"

echo "== shard union (incremental index + batched requests: bytes invariant) =="
cargo run --release -q --bin hka-sim -- simulate --days 2 --commuters 4 \
    --roamers 20 --shards 4 --trace-out "$tmp/union-on.journal" > /dev/null
cargo run --release -q --bin hka-sim -- simulate --days 2 --commuters 4 \
    --roamers 20 --shards 4 --no-incremental-index \
    --trace-out "$tmp/union-off.journal" > /dev/null
cmp "$tmp/union-on.journal" "$tmp/union-off.journal"

echo "== gateway (TCP differential + chaos drill + open-loop smoke) =="
cargo test --release -q --test gateway
cargo run --release -q -p hka-bench --bin bench_gateway -- --smoke \
    --out "$tmp" > /dev/null

echo "== checkpoint (drill with checkpoints, then snapshot+suffix == genesis) =="
cargo run --release -q --bin hka-sim -- serve-drill --journal "$tmp/drill.journal" \
    --days 1 --commuters 4 --roamers 20 --checkpoint-every 100 > /dev/null
snap="$(ls "$tmp/drill.journal.ckpt"/checkpoint-*.snap | sort | tail -1)"
cargo run --release -q --bin hka-sim -- audit --journal "$tmp/drill.journal" \
    --snapshot "$snap" --json "$tmp/resume.json" --quiet
cargo run --release -q --bin hka-sim -- audit --journal "$tmp/drill.journal" \
    --json "$tmp/genesis.json" --quiet
cmp "$tmp/resume.json" "$tmp/genesis.json"

echo "tier-1: OK"
