//! `hka-sim` — a small command-line front end to the library.
//!
//! ```text
//! hka-sim simulate [--seed N] [--days N] [--commuters N] [--roamers N] [--k N]
//!                  [--trace-out FILE] [--metrics] [--shards N]
//!                  [--no-incremental-index]
//!                  [--index grid|rtree] [--trace-export FILE]
//!                  [--trace-clock logical|wall] [--trace-capacity N] [--slo]
//! hka-sim plan     [--seed N] [--population N] [--k N] [--samples N]
//!                  [--index grid|rtree]
//! hka-sim derive   [--seed N] [--user N] [--days N]
//! hka-sim attack   [--seed N] [--level off|low|medium|high]
//! hka-sim export   [--seed N] [--days N] --out FILE     # write a trace file
//! hka-sim chaos    [--seeds N] [--seed N] [--days N] [--commuters N]
//!                  [--roamers N] [--k N] [--shards N] [--index grid|rtree]
//! hka-sim audit    --journal FILE [--snapshot FILE] [--json FILE] [--quiet]
//!                  [--space-tol M2] [--time-tol SECS]
//! hka-sim trace    JOURNAL [--out FILE] [--validate FILE]
//! hka-sim watch    JOURNAL [--snapshot FILE] [--interval-ms N]
//!                  [--idle-exit N] [--json] [--report FILE]
//!                  [--space-tol M2] [--time-tol SECS] [--sample-cap N]
//! hka-sim serve    [--addr HOST:PORT] [--seed N] [--days N] [--commuters N]
//!                  [--roamers N] [--k N] [--shards N] [--index grid|rtree]
//!                  [--journal FILE] [--inflight N] [--slo] [--gw-stats]
//! hka-sim serve-drill [--journal FILE] [--audit-tail] [--chaos SEED]
//!                  [--checkpoint-every N] [--truncate]
//!                  [--checkpoint-chaos SEED]
//!                  [--segments N] [--seed N] [--days N] [--commuters N]
//!                  [--roamers N] [--k N] [--interval-ms N] [--pace-us N]
//!                  [--report FILE] [--index grid|rtree]
//! ```
//!
//! `chaos` drives the simulation under `--seeds` randomized fault
//! schedules (deterministic per seed: dropped PHL writes, journal I/O
//! errors and torn writes, unavailable index/mix-zone, perturbed request
//! arrival) and checks the fail-closed invariant on every request: a
//! faulted or degraded request is suppressed, never forwarded exact or
//! under-generalized. Exits non-zero on any violation. `--shards N`
//! (also accepted by `simulate`) runs the workload through the sharded
//! frontend (`hka::shard::ShardedTs`) instead of the sequential server;
//! `--no-incremental-index` makes that frontend re-union the shard
//! indexes per protected request instead of maintaining the incremental
//! union — decisions and journal bytes are identical either way.
//! `--index grid|rtree` (accepted by `simulate`, `plan`, and `chaos`)
//! selects the spatial-index backend behind Algorithm 1; the default
//! `grid` is byte-identical to runs before the flag existed, and every
//! backend produces the same decisions (differentially tested).
//!
//! `audit` replays a journal written with `--trace-out` (see
//! `hka::audit`): it verifies the hash chain, reconstructs per-user
//! anonymity timelines and the QoS/k/unlink trade-off tables, and exits
//! non-zero on chain failures or Theorem-1 / fail-closed violations.
//! `--json FILE` additionally writes the canonical JSON report.
//! `--snapshot FILE` resumes the replay from a checkpoint snapshot
//! (see `hka::core::checkpoint`) instead of genesis — the report is
//! byte-identical either way, just cheaper; `watch` accepts the same
//! flag to start its tail at the anchor.
//!
//! `watch` is the live audit: it tails a journal that another process
//! is still appending to, verifying the hash chain record by record and
//! feeding an incremental auditor. It prints a status frame whenever
//! the journal grows (`--json` for JSON frames), reports violations
//! with their byte offsets the moment they appear, tolerates torn tails
//! (an incomplete final record is re-polled, never a chain failure),
//! and exits 2 on the first violation, 1 on a chain failure, or 0 after
//! `--idle-exit N` consecutive quiet polls. `--report FILE` writes the
//! canonical JSON report on exit — for a completed journal it is
//! byte-identical to `audit --json` on the same file.
//!
//! `serve` exposes a protected world over TCP through the
//! `hka-gateway` frontend (line-delimited JSON envelopes; see
//! DESIGN.md §16 for the wire format). `--addr 127.0.0.1:0` (the
//! default) binds an ephemeral port and prints the bound address.
//! The process serves until a client sends the wire `shutdown` op,
//! then drains gracefully, flushes the journal, and exits 0; exit 1
//! is a bind/journal/flush failure and exit 2 a usage error. With
//! neither `--gw-stats` (per-drain `gw.stats` liveness records) nor
//! `--slo` (gateway p999-latency + queue-depth watchdog) the journal
//! written by `--journal FILE` is *byte-identical* to an in-process
//! `simulate --trace-out` run of the same traffic — the differential
//! suite pins this.
//!
//! `serve-drill` runs a simulation and a tailing auditor *at the same
//! time* (`--audit-tail`), in separate threads over one journal file —
//! the always-on verification drill. `--segments N` splits the workload
//! into N segments with a simulated crash between them (a torn
//! half-record is left behind, `Journal::recover` truncates it, and the
//! writer re-chains) and `--chaos SEED` injects a request-path fault
//! schedule (`tail_chaos_plan`; journal I/O faults are excluded so a
//! live tail must report zero violations). On exit the tail's final
//! report is compared byte-for-byte against the offline audit of the
//! same journal; any mismatch, chain error, or violation is a non-zero
//! exit.
//!
//! `--checkpoint-every N` additionally writes a crash-safe checkpoint
//! whenever the journal has grown by at least N records since the last
//! one (snapshots under `JOURNAL.ckpt/`), verifying after
//! each one that a server restored from the snapshot is identical to
//! the live one, and on exit that the audit resumed from the last
//! snapshot is byte-identical to the genesis replay. `--truncate`
//! archives the journal prefix behind each checkpoint (incompatible
//! with `--audit-tail`: truncation swaps the journal inode, which a
//! live byte-offset tail cannot follow). `--checkpoint-chaos SEED`
//! faults the checkpoint path itself (`checkpoint_chaos_plan`:
//! snapshot write/rename tears, anchor-append and truncation failures)
//! — failed checkpoints are counted and recovery falls back to the
//! previous valid one, never a half-written snapshot.
//!
//! `simulate` is the default subcommand: `hka-sim --trace-out t.jsonl
//! --metrics` simulates with defaults. `--trace-out FILE` streams every
//! server decision into a hash-chained JSONL journal (verifiable with
//! `hka::obs::verify_chain`); `--metrics` prints the metrics snapshot —
//! counters and per-stage latency histograms — after the run.
//!
//! `--trace-export FILE` turns on causal request tracing
//! (`hka::obs::trace`) for the run and writes the collected spans as
//! Chrome trace-event JSON, loadable in Perfetto or `chrome://tracing`.
//! `--trace-clock logical` (the default) stamps deterministic per-track
//! ticks — the artifact is byte-stable for a fixed seed — while `wall`
//! stamps real microseconds. `--trace-capacity N` bounds the per-track
//! span ring (drop-oldest; counted in `obs.trace_dropped`). `--slo`
//! arms the continuous SLO watchdog: rolling-window latency
//! p99 / suppression-rate / mode-residency / flush-lag objectives whose
//! breach/recovery transitions land in the journal as `ts.slo_breach` /
//! `ts.slo_recovered` and light up `watch` frames. Tracing never writes
//! to the journal: bytes are identical with tracing on and off.
//!
//! `trace JOURNAL --out FILE` reconstructs a *coarse* trace from a
//! decision journal after the fact — one complete event per journaled
//! decision, sequence-numbered ticks — for runs that never had live
//! tracing on. `trace --validate FILE` schema-checks any trace artifact
//! (required fields, unique span ids, acyclic parent linkage) and exits
//! non-zero on the first defect; CI runs it on the exported artifact.
//!
//! `plan` accepts `--trace FILE` to analyze an imported trace (the
//! `hka-trace v1` text format, see `hka::trajectory::io`) instead of a
//! generated world.
//!
//! Everything is seeded and deterministic; run with `--release` for
//! realistic timings. Argument parsing is deliberately dependency-free.

use hka::prelude::*;
use std::collections::HashMap;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                out.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            eprintln!("unexpected argument '{}'", args[i]);
            std::process::exit(2);
        }
    }
    out
}

/// Parses `--index grid|rtree` (brute is accepted for completeness; it
/// is the testing oracle and crawls on real workloads).
fn get_backend(flags: &HashMap<String, String>) -> IndexBackend {
    match flags.get("index") {
        None => IndexBackend::default(),
        Some(v) => IndexBackend::parse(v).unwrap_or_else(|| {
            eprintln!("unknown index backend '{v}' for --index (use grid|rtree|brute)");
            std::process::exit(2);
        }),
    }
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: '{v}'");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn build_world(seed: u64, days: i64, commuters: usize, roamers: usize) -> World {
    World::generate(&WorldConfig {
        seed,
        days,
        n_commuters: commuters,
        n_roamers: roamers,
        n_poi_regulars: roamers / 10,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    })
}

fn protected_server(world: &World, k: usize, backend: IndexBackend) -> TrustedServer {
    let mut ts = TrustedServer::new(TsConfig {
        backend,
        ..TsConfig::default()
    });
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        let level = if commuters.contains(&agent.user) {
            PrivacyLevel::Custom(PrivacyParams {
                k,
                theta: 0.5,
                k_init: 2 * k,
                k_decrement: 1,
                on_risk: RiskAction::Forward,
            })
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(agent.user, level);
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    ts
}

/// Mirrors [`protected_server`] on the sharded frontend.
fn protected_sharded(world: &World, k: usize, shards: usize, backend: IndexBackend) -> ShardedTs {
    let mut ts = ShardedTs::new(
        TsConfig {
            backend,
            ..TsConfig::default()
        },
        shards,
    );
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        let level = if commuters.contains(&agent.user) {
            PrivacyLevel::Custom(PrivacyParams {
                k,
                theta: 0.5,
                k_init: 2 * k,
                k_decrement: 1,
                on_risk: RiskAction::Forward,
            })
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(agent.user, level);
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    ts
}

/// The workload event stream as wire envelopes, in submission order —
/// the exact frames a remote client would send the TCP gateway.
fn world_envelopes(world: &World) -> Vec<RequestEnvelope> {
    world
        .events
        .iter()
        .enumerate()
        .map(|(i, e)| match e.kind {
            EventKind::Location => RequestEnvelope::location(i as u64, e.user, e.at),
            EventKind::Request { service } => {
                RequestEnvelope::request(i as u64, e.user, e.at, ServiceId(service))
            }
        })
        .collect()
}

/// Drives every workload event through the transport-agnostic
/// [`RequestService`] seam — the same interface the TCP gateway
/// serves, so an in-process run and a served run differ only in
/// transport. The sequential server decides each submission
/// immediately; the sharded frontend settles everything at the final
/// drain barrier. Either way a rejected request (unknown user,
/// read-only refusal) is reported and counted instead of aborting the
/// whole simulation.
fn run_events(svc: &mut dyn RequestService, world: &World) -> u64 {
    for env in &world_envelopes(world) {
        svc.submit(env);
    }
    let mut errors = 0;
    for resp in svc.drain() {
        if resp.outcome == WireOutcome::Rejected {
            if errors == 0 {
                eprintln!("request rejected: {}", resp.detail);
            }
            errors += 1;
        }
    }
    errors
}

fn open_trace_out(flags: &HashMap<String, String>) -> Option<std::fs::File> {
    let path = flags.get("trace-out")?;
    // parse_flags maps a valueless flag to "true"; a journal named
    // `true` is never what anyone meant (use `./true` to insist).
    if path == "true" {
        eprintln!("--trace-out requires a file path");
        std::process::exit(2);
    }
    Some(std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    }))
}

fn cmd_simulate(flags: HashMap<String, String>) {
    let seed = get(&flags, "seed", 1u64);
    let days = get(&flags, "days", 14i64);
    let commuters = get(&flags, "commuters", 10usize);
    let roamers = get(&flags, "roamers", 60usize);
    let k = get(&flags, "k", 5usize);
    let shards = get(&flags, "shards", 1usize);
    let backend = get_backend(&flags);
    let trace_export = flags
        .get("trace-export")
        .filter(|p| p.as_str() != "true")
        .cloned();
    let trace_clock = match flags.get("trace-clock") {
        None => hka::obs::TraceClock::Logical,
        Some(v) => hka::obs::TraceClock::parse(v).unwrap_or_else(|| {
            eprintln!("unknown clock '{v}' for --trace-clock (use logical|wall)");
            std::process::exit(2);
        }),
    };
    let slo = flags.contains_key("slo");
    if trace_export.is_some() {
        hka::obs::trace::enable(get(&flags, "trace-capacity", 1 << 16));
    }
    let world = build_world(seed, days, commuters, roamers);

    // Run through the sequential server or the sharded frontend; both
    // produce identical decisions (see tests/shard.rs), so the summary
    // below reads from either through the same shaped data.
    let (st, audit_rows, journal_info, errors, log_len, log_dropped, slo_worst);
    if shards > 1 {
        let mut ts = protected_sharded(&world, k, shards, backend);
        if flags.contains_key("no-incremental-index") {
            // Fall back to per-request IndexSnapshot re-union; decisions
            // and journal bytes are identical (differentially tested),
            // only the protected-request path gets slower.
            ts.set_incremental_index(false);
        }
        if slo {
            ts.enable_slo(hka::obs::SloConfig::default());
        }
        if let Some(file) = open_trace_out(&flags) {
            ts.attach_journal(hka::obs::Journal::new(
                Box::new(std::io::BufWriter::new(file)) as Box<dyn hka::obs::DurableSink>,
            ));
        }
        errors = run_events(&mut ts, &world);
        ts.flush_journal().unwrap_or_else(|e| {
            eprintln!("journal flush failed: {e}");
            std::process::exit(1);
        });
        st = ts.stats();
        audit_rows = collect_audit_rows(
            &world,
            k,
            |u| ts.audit_patterns(u, k),
            |u| ts.privacy_indicator(u),
        );
        log_len = ts.log().events().len() as u64;
        log_dropped = ts.log().dropped();
        journal_info = flags.get("trace-out").cloned();
        slo_worst = ts.slo_worst();
        println!("({} shards, {} epochs)", ts.shard_count(), ts.epoch());
    } else {
        let mut ts = protected_server(&world, k, backend);
        if slo {
            ts.enable_slo(hka::obs::SloConfig::default());
        }
        if let Some(file) = open_trace_out(&flags) {
            ts.attach_journal(hka::obs::Journal::new(
                Box::new(std::io::BufWriter::new(file)) as Box<dyn std::io::Write + Send + Sync>,
            ));
        }
        errors = run_events(&mut ts, &world);
        ts.flush_journal().unwrap_or_else(|e| {
            eprintln!("journal flush failed: {e}");
            std::process::exit(1);
        });
        st = ts.log().stats();
        audit_rows = collect_audit_rows(
            &world,
            k,
            |u| ts.audit_patterns(u, k),
            |u| ts.privacy_indicator(u),
        );
        log_len = ts.log().events().len() as u64;
        log_dropped = ts.log().dropped();
        journal_info = flags.get("trace-out").cloned();
        slo_worst = ts.slo_worst();
    }

    println!(
        "simulated {days} days, {} users, k = {k}",
        world.agents.len()
    );
    println!(
        "forwarded:        {} ({} exact, {} generalized)",
        st.forwarded(),
        st.forwarded_exact,
        st.generalized()
    );
    println!("HK success rate:  {:.1}%", 100.0 * st.hk_success_rate());
    println!(
        "mean cloak:       {:.0} m² × {:.0} s",
        st.mean_generalized_area(),
        st.mean_generalized_duration()
    );
    println!("pseudonym changes:{}", st.pseudonym_changes);
    println!("at-risk notices:  {}", st.at_risk);
    println!("full matches:     {}", st.lbqid_matches);
    if errors > 0 {
        println!("request errors:   {errors}");
    }
    for (u, name, matched, hk_sat, eff_k, lock) in audit_rows {
        println!("  {u} {name}: matched={matched} hk={hk_sat} (eff. k {eff_k}) lock={lock:?}");
    }
    if let Some(path) = journal_info {
        println!(
            "journal:          {path} ({} events, {} dropped from ring)",
            log_len + log_dropped,
            log_dropped
        );
    }
    if slo {
        match slo_worst {
            Some((trace, us)) => println!("slo worst:        t{trace:08x} ({us} µs)"),
            None => println!("slo worst:        - (window empty)"),
        }
    }
    if let Some(path) = trace_export {
        hka::obs::trace::disable();
        let records = hka::obs::trace::drain();
        let doc = hka::obs::chrome_trace(&records, trace_clock);
        let check = hka::obs::validate_chrome_trace(&doc).unwrap_or_else(|e| {
            eprintln!("exported trace failed validation: {e}");
            std::process::exit(1);
        });
        std::fs::write(&path, doc.to_string() + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "trace:            {path} ({} spans, {} roots, {} tracks, {} dropped)",
            check.spans,
            check.roots,
            check.tracks,
            hka::obs::global().snapshot().counter("obs.trace_dropped")
        );
    }
    if flags.contains_key("metrics") {
        println!();
        print!("{}", hka::obs::global().snapshot().render());
    }
}

type AuditRow = (UserId, String, bool, bool, usize, PrivacyIndicator);

fn collect_audit_rows(
    world: &World,
    _k: usize,
    mut audit: impl FnMut(UserId) -> Vec<(String, bool, HkOutcome)>,
    mut indicator: impl FnMut(UserId) -> Option<PrivacyIndicator>,
) -> Vec<AuditRow> {
    let mut rows = Vec::new();
    for u in world.commuters() {
        let lock = indicator(u).expect("registered");
        for (name, matched, hk) in audit(u) {
            rows.push((u, name, matched, hk.satisfied, hk.effective_k(), lock));
        }
    }
    rows
}

fn cmd_plan(flags: HashMap<String, String>) {
    let seed = get(&flags, "seed", 1u64);
    let population = get(&flags, "population", 80usize);
    let k = get(&flags, "k", 5usize);
    let samples = get(&flags, "samples", 300usize);
    let store = match flags.get("trace") {
        Some(path) => {
            let file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            read_store(std::io::BufReader::new(file)).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            })
        }
        None => build_world(seed, 3, population / 5, population * 4 / 5).store(),
    };
    let index = get_backend(&flags).build(&store, GridIndexConfig::default());
    let mz = MixZoneManager::new(MixZoneConfig::default());
    for (label, tol) in [
        ("hospital-finder", Tolerance::navigation()),
        ("localized-news", Tolerance::news()),
    ] {
        let r = evaluate_deployment(
            &store,
            index.as_ref(),
            &mz,
            &PlanningConfig {
                k,
                tolerance: tol,
                samples,
                seed,
            },
        );
        println!(
            "{label:<16} HK {:.1}%  mean {:.0} m² × {:.0} s  unlink-fallback {:.1}%  risk {:.1}%  → {}",
            100.0 * r.hk_success_rate,
            r.mean_area,
            r.mean_duration,
            100.0 * r.unlink_fallback_rate,
            100.0 * r.at_risk_rate,
            if r.deployable(0.05) { "deploy" } else { "DO NOT DEPLOY" }
        );
    }
}

fn cmd_derive(flags: HashMap<String, String>) {
    let seed = get(&flags, "seed", 1u64);
    let user = UserId(get(&flags, "user", 0u64));
    let days = get(&flags, "days", 14i64);
    let world = build_world(seed, days, 10, 40);
    let store = world.store();
    let derived = derive_lbqids(&store, user, &DerivationConfig::default());
    if derived.is_empty() {
        println!("{user}: no identifying recurring pattern found");
        return;
    }
    for d in derived {
        println!(
            "population {} | support {} days | {}",
            d.matching_population, d.support_days, d.lbqid
        );
    }
}

fn cmd_attack(flags: HashMap<String, String>) {
    let seed = get(&flags, "seed", 1u64);
    let level = match flags.get("level").map(|s| s.as_str()).unwrap_or("off") {
        "off" => PrivacyLevel::Off,
        "low" => PrivacyLevel::Low,
        "medium" => PrivacyLevel::Medium,
        "high" => PrivacyLevel::High,
        other => {
            eprintln!("unknown level '{other}' (use off|low|medium|high)");
            std::process::exit(2);
        }
    };
    let world = build_world(seed, 8, 12, 50);
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    let mut registry = HomeRegistry::new();
    let mut targets = 0;
    for agent in &world.agents {
        let home = world.home_of(agent.user);
        ts.register_user(
            agent.user,
            if home.is_some() {
                level
            } else {
                PrivacyLevel::Off
            },
        );
        if let Some(home) = home {
            registry.add(home, agent.user);
            targets += 1;
            let dsl = format!(
                "lbqid at_home {{ element area({}, {}, {}, {}) window(00:00, 23:59); recur 2.Days; }}",
                home.min().x, home.min().y, home.max().x, home.max().y
            );
            ts.add_lbqid(agent.user, parse_lbqid(&dsl).expect("valid"));
        }
    }
    run_events(&mut ts, &world);
    let (truth, requests): (Vec<UserId>, Vec<SpRequest>) = ts.outbox().iter().cloned().unzip();
    let linker = PseudonymLinker;
    let report = Adversary::new(&linker, 0.9, &registry).attack(&requests, &truth);
    println!(
        "level {:?}: {} requests, {} clusters, {} claims, {} / {targets} targets identified",
        level,
        requests.len(),
        report.clusters,
        report.claims.len(),
        report.users_identified
    );
}

fn cmd_export(flags: HashMap<String, String>) {
    let seed = get(&flags, "seed", 1u64);
    let days = get(&flags, "days", 3i64);
    let Some(out) = flags.get("out") else {
        eprintln!("export requires --out FILE");
        std::process::exit(2);
    };
    let world = build_world(seed, days, 10, 50);
    let store = world.store();
    let file = std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        std::process::exit(1);
    });
    write_store(&store, std::io::BufWriter::new(file)).expect("write trace");
    println!(
        "wrote {} points for {} users to {out}",
        store.total_points(),
        store.user_count()
    );
}

/// One chaos run: drive a seeded world through a server with a
/// randomized fault schedule and count fail-open violations.
struct ChaosReport {
    requests: u64,
    forwarded: u64,
    suppressed: u64,
    faults_fired: u64,
    violations: u64,
    final_mode: ServerMode,
}

fn chaos_run(
    seed: u64,
    days: i64,
    commuters: usize,
    roamers: usize,
    k: usize,
    backend: IndexBackend,
) -> ChaosReport {
    use hka::faults::sites;
    let world = build_world(seed, days, commuters, roamers);
    let mut ts = protected_server(&world, k, backend);
    let injector = FaultInjector::new(randomized_plan(seed));
    ts.attach_faults(injector.clone());
    // The journal shares the schedule: journal.io faults surface as real
    // sink errors (including torn writes) and drive the mode machine.
    ts.attach_journal(hka::obs::Journal::new(Box::new(FaultyWriter::new(
        std::io::sink(),
        injector.clone(),
    ))
        as Box<dyn std::io::Write + Send + Sync>));

    // Sites whose faults must fail the in-flight request closed.
    // journal.io is excluded: the sink is consulted when events are
    // *logged*, after the forwarding decision; its effect is the mode
    // machine, which the next request's gate sees.
    let request_sites = [sites::PHL_WRITE, sites::INDEX_QUERY, sites::MIXZONE];
    let fired_now =
        |inj: &FaultInjector| -> u64 { request_sites.iter().map(|s| inj.fired(s)).sum() };

    let mut report = ChaosReport {
        requests: 0,
        forwarded: 0,
        suppressed: 0,
        faults_fired: 0,
        violations: 0,
        final_mode: ServerMode::Normal,
    };
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                // Arrival perturbation: drop, duplicate, or deliver the
                // request with a stale (reordered) timestamp.
                let mut deliveries: Vec<StPoint> = Vec::with_capacity(2);
                match injector.check(sites::ARRIVAL) {
                    Some(FaultKind::Drop) => {}
                    Some(FaultKind::Duplicate) => {
                        deliveries.push(e.at);
                        deliveries.push(e.at);
                    }
                    Some(FaultKind::Reorder) => {
                        let mut late = e.at;
                        late.t = TimeSec(late.t.0.saturating_sub(300));
                        deliveries.push(late);
                    }
                    _ => deliveries.push(e.at),
                }
                for at in deliveries {
                    let mode_before = ts.mode();
                    let before = fired_now(&injector);
                    let out = match ts.try_handle_request(e.user, at, ServiceId(service)) {
                        Ok(out) => out,
                        Err(err) => {
                            // A refused request (read-only ladder) is
                            // fail-closed by definition; anything else
                            // would be a workload bug worth surfacing.
                            if !matches!(err, TsError::Degraded) {
                                eprintln!("request rejected: {err}");
                            }
                            report.requests += 1;
                            report.suppressed += 1;
                            continue;
                        }
                    };
                    let faulted = fired_now(&injector) > before;
                    report.requests += 1;
                    let fail_closed = match &out {
                        RequestOutcome::Suppressed(_) => {
                            report.suppressed += 1;
                            true
                        }
                        RequestOutcome::Forwarded(req) => {
                            report.forwarded += 1;
                            !faulted
                                && match mode_before {
                                    ServerMode::Normal => true,
                                    ServerMode::Degraded => req.context.area() > 0.0,
                                    ServerMode::ReadOnly => false,
                                }
                        }
                    };
                    if !fail_closed {
                        report.violations += 1;
                    }
                }
            }
        }
    }
    report.faults_fired = injector.total_fired();
    report.final_mode = ts.mode();
    report
}

/// [`chaos_run`] through the sharded frontend. A fault plan makes every
/// event a serialization point, so the run exercises the group-commit
/// journal and the coordinator's mode ladder under the same schedule.
/// Events go through one at a time (submit + flush) so `mode()` read
/// before each request is the mode its fail-closed gate will see.
fn chaos_run_sharded(
    seed: u64,
    days: i64,
    commuters: usize,
    roamers: usize,
    k: usize,
    shards: usize,
    backend: IndexBackend,
) -> ChaosReport {
    use hka::faults::sites;
    let world = build_world(seed, days, commuters, roamers);
    let mut ts = protected_sharded(&world, k, shards, backend);
    let injector = FaultInjector::new(randomized_plan(seed));
    ts.attach_faults(injector.clone());
    ts.attach_journal(hka::obs::Journal::new(
        Box::new(hka::obs::Unsynced(FaultyWriter::new(
            std::io::sink(),
            injector.clone(),
        ))) as Box<dyn hka::obs::DurableSink>,
    ));

    let request_sites = [sites::PHL_WRITE, sites::INDEX_QUERY, sites::MIXZONE];
    let fired_now =
        |inj: &FaultInjector| -> u64 { request_sites.iter().map(|s| inj.fired(s)).sum() };

    let mut report = ChaosReport {
        requests: 0,
        forwarded: 0,
        suppressed: 0,
        faults_fired: 0,
        violations: 0,
        final_mode: ServerMode::Normal,
    };
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let mut deliveries: Vec<StPoint> = Vec::with_capacity(2);
                match injector.check(sites::ARRIVAL) {
                    Some(FaultKind::Drop) => {}
                    Some(FaultKind::Duplicate) => {
                        deliveries.push(e.at);
                        deliveries.push(e.at);
                    }
                    Some(FaultKind::Reorder) => {
                        let mut late = e.at;
                        late.t = TimeSec(late.t.0.saturating_sub(300));
                        deliveries.push(late);
                    }
                    _ => deliveries.push(e.at),
                }
                for at in deliveries {
                    let mode_before = ts.mode();
                    let before = fired_now(&injector);
                    let out = match ts.request_now(e.user, at, ServiceId(service)) {
                        Ok(out) => out,
                        Err(err) => {
                            if !matches!(err, TsError::Degraded) {
                                eprintln!("request rejected: {err}");
                            }
                            report.requests += 1;
                            report.suppressed += 1;
                            continue;
                        }
                    };
                    let faulted = fired_now(&injector) > before;
                    report.requests += 1;
                    let fail_closed = match &out {
                        RequestOutcome::Suppressed(_) => {
                            report.suppressed += 1;
                            true
                        }
                        RequestOutcome::Forwarded(req) => {
                            report.forwarded += 1;
                            !faulted
                                && match mode_before {
                                    ServerMode::Normal => true,
                                    ServerMode::Degraded => req.context.area() > 0.0,
                                    ServerMode::ReadOnly => false,
                                }
                        }
                    };
                    if !fail_closed {
                        report.violations += 1;
                    }
                }
            }
        }
    }
    report.faults_fired = injector.total_fired();
    report.final_mode = ts.mode();
    report
}

fn cmd_chaos(flags: HashMap<String, String>) {
    let seeds = get(&flags, "seeds", 16u64);
    let base = get(&flags, "seed", 1u64);
    let days = get(&flags, "days", 2i64);
    let commuters = get(&flags, "commuters", 6usize);
    let roamers = get(&flags, "roamers", 30usize);
    let k = get(&flags, "k", 4usize);
    let shards = get(&flags, "shards", 1usize);
    let backend = get_backend(&flags);
    let mut total_faults = 0u64;
    let mut total_violations = 0u64;
    for i in 0..seeds {
        let seed = base.wrapping_add(i);
        let r = if shards > 1 {
            chaos_run_sharded(seed, days, commuters, roamers, k, shards, backend)
        } else {
            chaos_run(seed, days, commuters, roamers, k, backend)
        };
        total_faults += r.faults_fired;
        total_violations += r.violations;
        println!(
            "seed {seed:>5}: {:>5} requests, {:>5} forwarded, {:>5} suppressed, {:>4} faults, mode {:<9} violations {}",
            r.requests, r.forwarded, r.suppressed, r.faults_fired, r.final_mode, r.violations
        );
    }
    println!("{seeds} schedules, {total_faults} injected faults, {total_violations} fail-open violations");
    if total_violations > 0 {
        eprintln!("FAIL: a faulted or degraded request was forwarded");
        std::process::exit(1);
    }
}

fn cmd_audit(flags: HashMap<String, String>) {
    let Some(journal) = flags.get("journal").filter(|p| p.as_str() != "true") else {
        eprintln!("audit requires --journal FILE");
        std::process::exit(2);
    };
    let cfg = audit_config(&flags);
    // With --snapshot the replay resumes from the checkpoint anchor
    // (the snapshot's embedded audit config wins over the flags); the
    // outcome is byte-identical to the genesis replay, just cheaper.
    let outcome = match flags.get("snapshot").filter(|p| p.as_str() != "true") {
        Some(snap) => hka::audit::resume_from_snapshot(
            std::path::Path::new(journal),
            std::path::Path::new(snap),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot resume {journal} from {snap}: {e}");
            std::process::exit(2);
        }),
        None => hka::audit::replay_file(std::path::Path::new(journal), cfg).unwrap_or_else(|e| {
            eprintln!("cannot read {journal}: {e}");
            std::process::exit(2);
        }),
    };
    if let Some(path) = flags.get("json").filter(|p| p.as_str() != "true") {
        std::fs::write(path, outcome.to_json().to_string() + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
    }
    if !flags.contains_key("quiet") {
        print!("{}", outcome.render());
    }
    if !outcome.chain.verified() {
        std::process::exit(1);
    }
    if !outcome.ok() {
        std::process::exit(2);
    }
}

/// `trace JOURNAL --out FILE`: reconstructs a coarse Chrome trace from
/// a decision journal (one complete event per record, sequence ticks);
/// `trace --validate FILE` schema-checks an existing artifact. Both
/// surfaces share `hka::obs::validate_chrome_trace`, so CI's smoke job
/// and an operator's post-hoc reconstruction apply the same rules.
fn cmd_trace(args: &[String]) {
    let (positional, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (Some(a.clone()), &args[1..]),
        _ => (None, args),
    };
    let flags = parse_flags(rest);

    if let Some(path) = flags.get("validate").filter(|p| p.as_str() != "true") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let doc = hka::obs::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: not valid JSON: {e:?}");
            std::process::exit(1);
        });
        match hka::obs::validate_chrome_trace(&doc) {
            Ok(check) => {
                println!(
                    "{path}: OK ({} events, {} spans, {} roots, {} tracks)",
                    check.events, check.spans, check.roots, check.tracks
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let Some(journal) = positional.or_else(|| {
        flags
            .get("journal")
            .filter(|p| p.as_str() != "true")
            .cloned()
    }) else {
        eprintln!("trace requires a journal path or --validate FILE\n{TRACE_USAGE}");
        std::process::exit(2);
    };
    let Some(out) = flags.get("out").filter(|p| p.as_str() != "true") else {
        eprintln!("trace reconstruction requires --out FILE\n{TRACE_USAGE}");
        std::process::exit(2);
    };
    let file = std::fs::File::open(&journal).unwrap_or_else(|e| {
        eprintln!("cannot open {journal}: {e}");
        std::process::exit(2);
    });
    // Coarse reconstruction: every journaled decision becomes one
    // complete event at its (deterministic) sequence tick, so a run that
    // never had live tracing on still yields a Perfetto-loadable
    // timeline of what the server decided, in order.
    let mut events = Vec::new();
    events.push(hka::obs::Json::obj([
        ("ph", hka::obs::Json::from("M")),
        ("pid", hka::obs::Json::Int(1)),
        ("tid", hka::obs::Json::from(0u64)),
        ("name", hka::obs::Json::from("thread_name")),
        (
            "args",
            hka::obs::Json::obj([("name", hka::obs::Json::from("journal"))]),
        ),
    ]));
    let mut records = 0u64;
    for rec in hka::obs::JournalReader::new(std::io::BufReader::new(file)) {
        let rec = match rec {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{journal}: chain error at record {records}: {e}");
                std::process::exit(1);
            }
        };
        records += 1;
        let mut args = std::collections::BTreeMap::new();
        args.insert(
            "span".to_string(),
            hka::obs::Json::from(format!("j{:012x}", rec.seq)),
        );
        args.insert("parent".to_string(), hka::obs::Json::Null);
        args.insert("seq".to_string(), hka::obs::Json::from(rec.seq));
        if let Some(at) = rec.payload.get("at").and_then(hka::obs::Json::as_int) {
            args.insert("at".to_string(), hka::obs::Json::Int(at));
        }
        events.push(hka::obs::Json::obj([
            ("ph", hka::obs::Json::from("X")),
            ("pid", hka::obs::Json::Int(1)),
            ("tid", hka::obs::Json::from(0u64)),
            ("name", hka::obs::Json::from(rec.kind.as_str())),
            ("cat", hka::obs::Json::from("journal")),
            ("ts", hka::obs::Json::from(rec.seq)),
            ("dur", hka::obs::Json::Int(1)),
            ("args", hka::obs::Json::Obj(args)),
        ]));
    }
    let doc = hka::obs::Json::obj([
        ("displayTimeUnit", hka::obs::Json::from("ms")),
        ("traceEvents", hka::obs::Json::Arr(events)),
    ]);
    let check = hka::obs::validate_chrome_trace(&doc).unwrap_or_else(|e| {
        eprintln!("reconstructed trace failed validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(out, doc.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    });
    println!("{out}: {records} journal records → {} spans", check.spans);
}

const TRACE_USAGE: &str =
    "usage: hka-sim trace JOURNAL --out FILE\n       hka-sim trace --validate FILE";

/// Parses the audit tolerances shared by `audit` and `watch`.
fn audit_config(flags: &HashMap<String, String>) -> hka::audit::AuditConfig {
    let mut cfg = hka::audit::AuditConfig::default();
    if flags.contains_key("space-tol") {
        cfg.space_tol = Some(get(flags, "space-tol", 0.0f64));
    }
    if flags.contains_key("time-tol") {
        cfg.time_tol = Some(get(flags, "time-tol", 0i64));
    }
    if flags.contains_key("sample-cap") {
        cfg.sample_cap = Some(get(flags, "sample-cap", 0usize));
    }
    cfg
}

fn cmd_watch(args: &[String]) {
    // `watch JOURNAL [--flags]`: the journal path may be positional.
    let (positional, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (Some(a.clone()), &args[1..]),
        _ => (None, args),
    };
    let flags = parse_flags(rest);
    let journal = positional
        .or_else(|| {
            flags
                .get("journal")
                .filter(|p| p.as_str() != "true")
                .cloned()
        })
        .unwrap_or_else(|| {
            eprintln!("watch requires a journal path: hka-sim watch FILE [--flags]");
            std::process::exit(2);
        });
    let interval = get(&flags, "interval-ms", 200u64);
    let idle_exit = get(&flags, "idle-exit", 0u64);
    let json = flags.contains_key("json");
    let cfg = audit_config(&flags);
    let report_path = flags
        .get("report")
        .filter(|p| p.as_str() != "true")
        .cloned();

    let emit = |frame: &hka::audit::WatchFrame| {
        if json {
            println!("{}", frame.to_json());
        } else {
            println!("{}", frame.render());
        }
    };

    // --snapshot starts the tail at the checkpoint anchor instead of
    // genesis; once caught up, frames and the final report are
    // byte-identical to a genesis tail of the same journal.
    let mut tail = match flags.get("snapshot").filter(|p| p.as_str() != "true") {
        Some(snap) => hka::audit::TailAuditor::resume_from_snapshot(
            std::path::Path::new(&journal),
            std::path::Path::new(snap),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot resume {journal} from {snap}: {e}");
            std::process::exit(2);
        }),
        None => hka::audit::TailAuditor::open(std::path::Path::new(&journal), cfg),
    };
    let mut idle = 0u64;
    let code = loop {
        let poll = tail.poll();
        for (offset, v) in &poll.new_violations {
            eprintln!(
                "violation at offset {offset} (seq {}): {} — {}",
                v.seq,
                v.kind.as_str(),
                v.detail
            );
        }
        if poll.new_records > 0 {
            idle = 0;
            emit(&tail.frame());
        } else {
            idle += 1;
        }
        if !poll.new_violations.is_empty() {
            break 2;
        }
        if let Some(e) = poll.chain_error {
            emit(&tail.frame());
            eprintln!("chain failed: {e}");
            break 1;
        }
        if idle_exit > 0 && idle >= idle_exit {
            emit(&tail.frame());
            break 0;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval));
    };
    if let Some(path) = report_path {
        std::fs::write(&path, tail.snapshot().to_json().to_string() + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
    }
    std::process::exit(code);
}

fn cmd_serve_drill(flags: HashMap<String, String>) {
    use hka::faults::sites;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let seed = get(&flags, "seed", 1u64);
    let days = get(&flags, "days", 2i64);
    let commuters = get(&flags, "commuters", 6usize);
    let roamers = get(&flags, "roamers", 30usize);
    let k = get(&flags, "k", 4usize);
    let segments = get(&flags, "segments", 1usize).max(1);
    let interval = get(&flags, "interval-ms", 10u64);
    let pace_us = get(&flags, "pace-us", 0u64);
    let backend = get_backend(&flags);
    let audit_tail = flags.contains_key("audit-tail");
    let cfg = audit_config(&flags);
    let checkpoint_every = get(&flags, "checkpoint-every", 0u64);
    let truncate = flags.contains_key("truncate");
    if truncate && checkpoint_every == 0 {
        eprintln!("--truncate requires --checkpoint-every N");
        std::process::exit(2);
    }
    if truncate && audit_tail {
        eprintln!(
            "--truncate archives the journal prefix by swapping a new inode into place, \
             which a live byte-offset tail cannot follow; drop --audit-tail or --truncate"
        );
        std::process::exit(2);
    }
    if flags.contains_key("checkpoint-chaos") && checkpoint_every == 0 {
        eprintln!("--checkpoint-chaos requires --checkpoint-every N");
        std::process::exit(2);
    }
    let journal_path = flags
        .get("journal")
        .filter(|p| p.as_str() != "true")
        .cloned()
        .unwrap_or_else(|| {
            std::env::temp_dir()
                .join(format!("hka-serve-drill-{}.journal", std::process::id()))
                .to_string_lossy()
                .into_owned()
        });
    let path = std::path::PathBuf::from(&journal_path);
    let _ = std::fs::remove_file(&path);

    let world = build_world(seed, days, commuters, roamers);
    let mut ts = protected_server(&world, k, backend);
    // Chaos is restricted to request-path sites (`tail_chaos_plan`):
    // with the journal write path fault-free, a live tail must report
    // zero violations — anything else is a false positive.
    let injector = flags.contains_key("chaos").then(|| {
        let inj = FaultInjector::new(tail_chaos_plan(get(&flags, "chaos", seed)));
        ts.attach_faults(inj.clone());
        inj
    });

    let file = std::fs::File::create(&path).unwrap_or_else(|e| {
        eprintln!("cannot create {journal_path}: {e}");
        std::process::exit(1);
    });
    ts.attach_journal(hka::obs::Journal::new(
        Box::new(std::io::BufWriter::new(file)) as Box<dyn std::io::Write + Send + Sync>,
    ));

    // The checkpointer for the drill: snapshots live next to the
    // journal, and --checkpoint-chaos faults the checkpoint path itself
    // (a failed checkpoint leaves the previous one authoritative — the
    // exit-time equivalence check proves it).
    let mut cp = (checkpoint_every > 0).then(|| {
        let dir = format!("{journal_path}.ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cp = Checkpointer::new(&path, &dir).with_audit_config(cfg);
        if flags.contains_key("checkpoint-chaos") {
            cp.attach_faults(FaultInjector::new(checkpoint_chaos_plan(get(
                &flags,
                "checkpoint-chaos",
                seed,
            ))));
        }
        cp
    });
    let mut last_ckpt_seq: Option<u64> = None;
    let mut ckpt_ok = 0u64;
    let mut ckpt_failed = 0u64;
    let mut ckpt_archived = 0u64;

    // The tailing auditor runs in its own thread, polling the same file
    // the server appends to. It stops once the writer is done AND a
    // final poll finds nothing new (fully caught up, no torn tail).
    let stop = Arc::new(AtomicBool::new(false));
    let tailer = audit_tail.then(|| {
        let stop = Arc::clone(&stop);
        let path = path.clone();
        std::thread::spawn(move || {
            let mut tail = hka::audit::TailAuditor::open(&path, cfg);
            let mut polls = 0u64;
            loop {
                let done = stop.load(Ordering::SeqCst);
                let poll = tail.poll();
                polls += 1;
                for (offset, v) in &poll.new_violations {
                    eprintln!(
                        "violation at offset {offset} (seq {}): {} — {}",
                        v.seq,
                        v.kind.as_str(),
                        v.detail
                    );
                }
                if poll.chain_error.is_some() {
                    break;
                }
                if done && poll.new_records == 0 && poll.torn_bytes == 0 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(interval));
            }
            (tail, polls)
        })
    });

    // Drive the workload in `segments` slices with a simulated crash
    // between consecutive slices: the sink is dropped, a torn
    // half-record (no trailing newline — the only shape a single-write
    // append can tear into) is left at the tail, `recover` truncates
    // it, and the writer re-chains from the recovered head. The live
    // tailer must ride through every cycle without a false alarm.
    let chunk = world.events.len().div_ceil(segments).max(1);
    let mut recoveries = 0u64;
    let mut errors = 0u64;
    let mut req_id = 0u64;
    for (i, slice) in world.events.chunks(chunk).enumerate() {
        if i > 0 {
            drop(ts.take_journal()); // flushes buffered records on drop
            {
                use std::io::Write as _;
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .expect("journal exists");
                f.write_all(br#"{"hash":"torn-mid-append"#).expect("append");
            }
            let (journal, report) = hka::obs::recover(&path).unwrap_or_else(|e| {
                eprintln!("recovery failed: {e}");
                std::process::exit(1);
            });
            assert!(report.truncated_bytes > 0, "the torn bytes were truncated");
            recoveries += 1;
            let next_seq = journal.next_seq();
            let head = journal.head().to_string();
            ts.attach_journal(hka::obs::Journal::resume(
                Box::new(std::io::BufWriter::new(journal.into_inner()))
                    as Box<dyn std::io::Write + Send + Sync>,
                next_seq,
                head,
            ));
        }
        for e in slice {
            // Delivery goes through the transport-agnostic seam — the
            // same interface the TCP gateway serves — so the drill
            // rehearses exactly the path a served deployment exercises.
            match e.kind {
                EventKind::Location => {
                    RequestService::submit(
                        &mut ts,
                        &RequestEnvelope::location(req_id, e.user, e.at),
                    );
                    req_id += 1;
                }
                EventKind::Request { service } => {
                    // Arrival perturbation mirrors `chaos`: drop,
                    // duplicate, or re-deliver with a stale timestamp.
                    let mut deliveries: Vec<StPoint> = Vec::with_capacity(2);
                    match injector.as_ref().and_then(|inj| inj.check(sites::ARRIVAL)) {
                        Some(FaultKind::Drop) => {}
                        Some(FaultKind::Duplicate) => {
                            deliveries.push(e.at);
                            deliveries.push(e.at);
                        }
                        Some(FaultKind::Reorder) => {
                            let mut late = e.at;
                            late.t = TimeSec(late.t.0.saturating_sub(300));
                            deliveries.push(late);
                        }
                        _ => deliveries.push(e.at),
                    }
                    for at in deliveries {
                        RequestService::submit(
                            &mut ts,
                            &RequestEnvelope::request(req_id, e.user, at, ServiceId(service)),
                        );
                        req_id += 1;
                    }
                    errors += RequestService::drain(&mut ts)
                        .iter()
                        .filter(|r| r.outcome == WireOutcome::Rejected)
                        .count() as u64;
                }
            }
            if let Some(cp) = cp.as_mut() {
                // A checkpoint covers a chain position, so the cadence
                // is journal growth, not event count — most workload
                // events journal nothing, and re-snapshotting an
                // unchanged chain would buy two fsyncs for no new
                // state. `seq + 1` because the previous anchor record
                // itself sits at `last_ckpt_seq`.
                let due = match (ts.journal_position(), last_ckpt_seq) {
                    (Some((records, _)), Some(seq)) => {
                        records.saturating_sub(seq + 1) >= checkpoint_every
                    }
                    (Some((records, _)), None) => records >= checkpoint_every,
                    (None, _) => false,
                };
                if due {
                    match cp.checkpoint(&mut ts, truncate) {
                        Ok(receipt) => {
                            ckpt_ok += 1;
                            ckpt_archived += receipt.truncated_bytes;
                            last_ckpt_seq = Some(receipt.seq);
                            // Restore fidelity: a server rebuilt from the
                            // just-written snapshot must be identical to
                            // the live one at this instant.
                            let (restored, _, _) = cp
                                .restore_server(TsConfig {
                                    backend,
                                    ..TsConfig::default()
                                })
                                .unwrap_or_else(|e| {
                                    eprintln!("recovery scan failed: {e}");
                                    std::process::exit(1);
                                });
                            let same = restored.server_meta() == ts.server_meta()
                                && restored.log().stats() == ts.log().stats()
                                && hka::trajectory::state::store_to_json(restored.store())
                                    .to_string()
                                    == hka::trajectory::state::store_to_json(ts.store())
                                        .to_string();
                            if !same {
                                eprintln!(
                                    "restore fidelity: MISMATCH at checkpoint seq {}",
                                    receipt.seq
                                );
                                std::process::exit(1);
                            }
                        }
                        Err(_) => ckpt_failed += 1,
                    }
                }
            }
            if pace_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(pace_us));
            }
        }
    }
    drop(ts.take_journal()); // final flush: the journal is complete
    stop.store(true, Ordering::SeqCst);

    println!(
        "serve-drill: {} events over {segments} segment(s), {recoveries} recoveries, \
         {errors} rejected requests",
        world.events.len()
    );
    if checkpoint_every > 0 {
        println!(
            "checkpoints: {ckpt_ok} written, {ckpt_failed} failed, \
             {ckpt_archived} prefix bytes archived"
        );
    }
    let offline = hka::audit::replay_file(&path, cfg).unwrap_or_else(|e| {
        eprintln!("cannot read {journal_path}: {e}");
        std::process::exit(1);
    });

    let mut code = 0;
    if let Some(handle) = tailer {
        let (tail, polls) = handle.join().expect("tailer thread");
        let snapshot = tail.snapshot();
        println!(
            "tail: {} records in {polls} polls, {} violations, head {}",
            tail.records(),
            tail.auditor().violations().len(),
            &tail.head()[..12.min(tail.head().len())]
        );
        let tail_json = snapshot.to_json().to_string();
        let offline_json = offline.to_json().to_string();
        if tail_json == offline_json {
            println!(
                "equivalence: OK (tail report == offline audit, {} bytes)",
                tail_json.len()
            );
        } else {
            eprintln!("equivalence: MISMATCH between live tail and offline audit");
            code = 1;
        }
        if let Some(out) = flags.get("report").filter(|p| p.as_str() != "true") {
            std::fs::write(out, tail_json + "\n").unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(2);
            });
        }
        if tail.chain_error().is_some() {
            eprintln!("chain failed: {}", tail.chain_error().unwrap());
            code = 1;
        }
        if !tail.auditor().violations().is_empty() {
            code = 2;
        }
    } else {
        print!("{}", offline.render());
        if !offline.chain.verified() {
            code = 1;
        } else if !offline.ok() {
            code = 2;
        }
    }
    if let Some(last) = cp.as_ref().and_then(|c| c.last_snapshot()) {
        match hka::audit::resume_from_snapshot(&path, last) {
            Ok(resumed) => {
                if truncate {
                    // The genesis prefix was archived at the anchor; the
                    // resumed report is the authoritative full-history
                    // view, so there is no genesis replay to compare to.
                    println!("checkpoint resume: OK (snapshot+suffix report over archived prefix)");
                } else if resumed.to_json().to_string() == offline.to_json().to_string() {
                    println!("checkpoint equivalence: OK (snapshot+suffix == genesis replay)");
                } else {
                    eprintln!(
                        "checkpoint equivalence: MISMATCH (snapshot+suffix != genesis replay)"
                    );
                    code = 1;
                }
            }
            Err(e) => {
                eprintln!("checkpoint resume failed: {e}");
                code = 1;
            }
        }
    } else if checkpoint_every > 0 {
        println!("checkpoint equivalence: skipped (no checkpoint survived the run)");
    }
    println!("journal: {journal_path}");
    std::process::exit(code);
}

/// `hka-sim serve`: expose a protected world over TCP via the
/// `hka-gateway` frontend and serve until a client sends the wire
/// `shutdown` op.
///
/// Exit codes: `0` — clean drain after a wire shutdown; `1` — bind,
/// journal, or flush failure; `2` — usage error.
fn cmd_serve(flags: HashMap<String, String>) {
    let seed = get(&flags, "seed", 1u64);
    let days = get(&flags, "days", 2i64);
    let commuters = get(&flags, "commuters", 6usize);
    let roamers = get(&flags, "roamers", 30usize);
    let k = get(&flags, "k", 4usize);
    let shards = get(&flags, "shards", 1usize);
    let backend = get_backend(&flags);
    let inflight = get(&flags, "inflight", 256usize).max(1);
    let addr = flags
        .get("addr")
        .filter(|a| a.as_str() != "true")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let journal_path = flags.get("journal").filter(|p| p.as_str() != "true");

    let open_sink = |path: &String| -> std::fs::File {
        std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        })
    };

    let world = build_world(seed, days, commuters, roamers);
    let service: Box<dyn RequestService + Send> = if shards > 1 {
        let mut ts = protected_sharded(&world, k, shards, backend);
        if let Some(path) = journal_path {
            ts.attach_journal(hka::obs::Journal::new(
                Box::new(std::io::BufWriter::new(open_sink(path)))
                    as Box<dyn hka::obs::DurableSink>,
            ));
        }
        Box::new(ts)
    } else {
        let mut ts = protected_server(&world, k, backend);
        if let Some(path) = journal_path {
            ts.attach_journal(hka::obs::Journal::new(
                Box::new(std::io::BufWriter::new(open_sink(path)))
                    as Box<dyn std::io::Write + Send + Sync>,
            ));
        }
        Box::new(ts)
    };

    let config = hka::gateway::GatewayConfig {
        inflight,
        // `gw.stats` records and the gateway SLO watchdog both write
        // journal records, so both are opt-in: with neither flag the
        // journal is byte-identical to an in-process run.
        emit_stats: flags.contains_key("gw-stats"),
        slo: flags.contains_key("slo").then(|| hka::obs::SloConfig {
            latency_p999_ns: 250_000_000,
            max_queue_depth: inflight,
            ..hka::obs::SloConfig::default()
        }),
        ..hka::gateway::GatewayConfig::default()
    };
    let gw = Gateway::spawn(&addr, service, config).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "serving on {} ({} users, k = {k})",
        gw.addr(),
        world.agents.len()
    );

    // Serve until a peer sends the wire `shutdown` op.
    while !gw.stop_requested() {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let stats = gw.stats().snapshot();
    let mut service = gw.shutdown();
    service.flush_journal().unwrap_or_else(|e| {
        eprintln!("journal flush failed: {e}");
        std::process::exit(1);
    });
    println!(
        "served {} connection(s): {} responses ({} forwarded), \
         {} overload refusals, {} bad frames",
        stats.conns_total, stats.responses, stats.forwarded, stats.overloads, stats.bad_frames
    );
    if let Some(path) = journal_path {
        println!("journal: {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first() else {
        eprintln!(
            "usage: hka-sim <simulate|plan|derive|attack|export|chaos|audit|watch|trace|serve|serve-drill> [--flags]"
        );
        std::process::exit(2);
    };
    // A leading flag means the subcommand was omitted: default to `simulate`.
    let (cmd, rest) = if first.starts_with("--") {
        ("simulate", &args[..])
    } else {
        (first.as_str(), &args[1..])
    };
    // `watch` and `trace` accept a positional journal path; everything
    // else is flags-only.
    if cmd == "watch" {
        cmd_watch(rest);
        return;
    }
    if cmd == "trace" {
        cmd_trace(rest);
        return;
    }
    let flags = parse_flags(rest);
    match cmd {
        "simulate" => cmd_simulate(flags),
        "plan" => cmd_plan(flags),
        "derive" => cmd_derive(flags),
        "attack" => cmd_attack(flags),
        "export" => cmd_export(flags),
        "chaos" => cmd_chaos(flags),
        "audit" => cmd_audit(flags),
        "serve" => cmd_serve(flags),
        "serve-drill" => cmd_serve_drill(flags),
        other => {
            eprintln!(
                "unknown command '{other}' (use simulate|plan|derive|attack|export|chaos|audit|watch|trace|serve|serve-drill)"
            );
            std::process::exit(2);
        }
    }
}
