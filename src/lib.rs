//! # hka — Historical k-Anonymity for Location-Based Services
//!
//! A full reproduction of *Protecting Privacy Against Location-based
//! Personal Identification* (Bettini, Wang, Jajodia — VLDB SDM workshop,
//! 2005): the trusted-server architecture, location-based
//! quasi-identifiers with time-granularity recurrence formulas,
//! service-request linkability, historical k-anonymity, the
//! spatio-temporal generalization algorithm, mix-zone unlinking, the
//! provider-side adversary, the baselines the paper positions itself
//! against, and a synthetic-city workload generator to drive it all.
//!
//! ## Quick start
//!
//! ```
//! use hka::prelude::*;
//!
//! // A small world: commuters plus background crowd, one week.
//! let world = World::generate(&WorldConfig {
//!     seed: 1,
//!     days: 5,
//!     n_commuters: 5,
//!     n_roamers: 10,
//!     n_poi_regulars: 0,
//!     ..WorldConfig::default()
//! });
//!
//! // A trusted server; one commuter opts into Medium privacy with the
//! // paper's commute LBQID.
//! let mut ts = TrustedServer::new(TsConfig::default());
//! let alice = world.commuters().next().unwrap();
//! for agent in &world.agents {
//!     if agent.user == alice {
//!         ts.register_user(agent.user, PrivacyLevel::Medium);
//!     } else {
//!         ts.register_user(agent.user, PrivacyLevel::Off);
//!     }
//! }
//! ts.add_lbqid(
//!     alice,
//!     Lbqid::example_commute(
//!         world.home_of(alice).unwrap(),
//!         world.office_of(alice).unwrap(),
//!     ),
//! );
//!
//! // Drive the event stream through the server.
//! for e in &world.events {
//!     match e.kind {
//!         EventKind::Location => ts.location_update(e.user, e.at),
//!         EventKind::Request { service } => {
//!             let _ = ts.handle_request(e.user, e.at, ServiceId(service));
//!         }
//!     }
//! }
//!
//! // Audit: the generalized pattern requests satisfy historical
//! // k-anonymity unless the server flagged the user at risk.
//! for (name, _matched, hk) in ts.audit_patterns(alice, 5) {
//!     assert!(hk.satisfied || ts.is_at_risk(alice), "{name} violated");
//! }
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`geo`] | planar/space–time geometry (`Point`, `Rect`, `StBox`, …) |
//! | [`granules`] | time granularities, civil calendar, recurrence formulas |
//! | [`trajectory`] | PHLs, trajectory store, spatio-temporal grid index |
//! | [`mobility`] | the synthetic city and workload generator |
//! | [`lbqid`] | LBQID patterns, DSL, offline + online matchers |
//! | [`anonymity`] | linkability, LT-consistency, historical k-anonymity |
//! | [`core`] | the trusted server, Algorithm 1, mix-zones, adversary |
//! | [`baselines`] | Gruteser–Grunwald cloaking, actual-senders, uniform |
//! | [`obs`] | metrics, span timers, hash-chained JSONL event journal |
//! | [`faults`] | deterministic fault injection and chaos schedules |
//! | [`audit`] | offline journal replay, anonymity timelines, trade-off tables |
//! | [`gateway`] | TCP frontend serving any [`core::RequestService`] backend |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hka_anonymity as anonymity;
pub use hka_audit as audit;
pub use hka_baselines as baselines;
pub use hka_core as core;
pub use hka_faults as faults;
pub use hka_gateway as gateway;
pub use hka_geo as geo;
pub use hka_granules as granules;
pub use hka_lbqid as lbqid;
pub use hka_mobility as mobility;
pub use hka_obs as obs;
pub use hka_shard as shard;
pub use hka_trajectory as trajectory;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use hka_anonymity::{
        anonymity_set, historical_k_anonymity, is_link_connected, link_components, lt_consistent,
        CompositeLinker, HkOutcome, Linker, MsgId, Pseudonym, PseudonymLinker, ServiceId,
        SpRequest, TrackerLinker,
    };
    pub use hka_core::adversary::{
        pair_attack, Adversary, AttackReport, HomeRegistry, PairRegistry,
    };
    pub use hka_core::derivation::{derive_lbqids, DerivationConfig, DerivedPattern};
    pub use hka_core::planning::{evaluate_deployment, DeploymentReport, PlanningConfig};
    pub use hka_core::{
        algorithm1_first, algorithm1_first_brute, algorithm1_subsequent, parse_wire_msg,
        parse_wire_reply, CheckpointReceipt, Checkpointer, EnvelopeBody, Generalization,
        JournalHealth, MixZoneConfig, MixZoneManager, PrivacyIndicator, PrivacyLevel,
        PrivacyParams, RandomizeConfig, Randomizer, RecoveredCheckpoint, RequestEnvelope,
        RequestOutcome, RequestService, ResponseEnvelope, RetryPolicy, RiskAction, ServerMeta,
        ServerMode, SharedTrustedServer, Tolerance, TrustedServer, TsConfig, TsError, TsEvent,
        TsStats, UnlinkDecision, WireError, WireMsg, WireOutcome, WireReply,
    };
    pub use hka_faults::{
        checkpoint_chaos_plan, gateway_chaos_plan, randomized_plan, tail_chaos_plan, FaultInjector,
        FaultKind, FaultPlan, FaultRule, FaultyWriter, Trigger,
    };
    pub use hka_gateway::{Gateway, GatewayClient, GatewayConfig};
    pub use hka_geo::{
        DayWindow, Point, Rect, SpaceTimeScale, StBox, StPoint, TimeInterval, TimeSec, DAY, HOUR,
        MINUTE, WEEK,
    };
    pub use hka_granules::{calendar::Weekday, Granularity, Recurrence};
    pub use hka_lbqid::{offline, parse_lbqid, Element, Lbqid, Monitor};
    pub use hka_mobility::{
        Agent, City, CityConfig, Event, EventKind, Role, World, WorldConfig, ANCHOR_SERVICE,
        BACKGROUND_SERVICE,
    };
    pub use hka_shard::ShardedTs;
    pub use hka_trajectory::io::{read_store, write_store};
    pub use hka_trajectory::{
        brute, BruteIndex, CompactionPolicy, CompactionStats, GridIndex, GridIndexConfig,
        IndexBackend, IndexDelta, IndexSnapshot, Phl, RTreeIndex, SoaIndex, SpatialIndex,
        TrajectoryStore, UnionIndex, UserId,
    };
}
