//! Acceptance tests for the audit subsystem: a checked-in v1 journal
//! fixture that must keep parsing byte-for-byte (schema-drift guard), a
//! clean end-to-end replay (simulate → journal → audit) with verified
//! chain and zero Theorem-1 violations, and tampered / fail-open
//! journals on which the audit must detect what went wrong.

use hka::audit::{self, AuditConfig, ViolationKind};
use hka::core::SuppressReason;
use hka::obs;
use hka::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// An in-memory journal sink readable after the run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Builds the fixture journal through the server's own encoder
/// (`TsEvent::kind`/`payload`): one record of every v1 kind, with fixed
/// payloads. If the encoder's field names, ordering, or hashing change,
/// these bytes change — and the byte-for-byte comparison against the
/// checked-in fixture fails, which is exactly the point.
fn fixture_bytes() -> Vec<u8> {
    let context = StBox::new(
        Rect::new(Point { x: 100.0, y: 200.0 }, Point { x: 400.0, y: 600.0 }),
        TimeInterval::new(TimeSec(7_200), TimeSec(7_500)),
    );
    let events = vec![
        TsEvent::Forwarded {
            user: UserId(1),
            at: TimeSec(7_260),
            context: StBox::point(StPoint::xyt(150.0, 250.0, TimeSec(7_260))),
            generalized: false,
            hk_ok: true,
            service: ServiceId(0),
            k_req: 0,
            k_got: 0,
            lbqid: None,
        },
        TsEvent::Forwarded {
            user: UserId(1),
            at: TimeSec(7_300),
            context,
            generalized: true,
            hk_ok: true,
            service: ServiceId(1),
            k_req: 5,
            k_got: 6,
            lbqid: Some("commute".to_string()),
        },
        TsEvent::AtRisk {
            user: UserId(2),
            at: TimeSec(7_400),
            lbqid: "commute".to_string(),
        },
        TsEvent::Forwarded {
            user: UserId(2),
            at: TimeSec(7_420),
            context,
            generalized: true,
            hk_ok: false,
            service: ServiceId(1),
            k_req: 5,
            k_got: 2,
            lbqid: Some("commute".to_string()),
        },
        TsEvent::Suppressed {
            user: UserId(3),
            at: TimeSec(7_500),
            reason: SuppressReason::MixZone,
            service: ServiceId(0),
        },
        TsEvent::PseudonymChanged {
            user: UserId(2),
            old: Pseudonym(12),
            new: Pseudonym(13),
            at: TimeSec(7_600),
        },
        TsEvent::LbqidMatched {
            user: UserId(1),
            at: TimeSec(7_700),
            lbqid: "commute".to_string(),
        },
        TsEvent::ModeChanged {
            at: TimeSec(7_800),
            from: ServerMode::Normal,
            to: ServerMode::Degraded,
        },
        TsEvent::ModeChanged {
            at: TimeSec(7_900),
            from: ServerMode::Degraded,
            to: ServerMode::Normal,
        },
    ];
    let mut journal = obs::Journal::new(Vec::new());
    for e in &events {
        journal.append(e.kind(), e.payload()).unwrap();
    }
    // Non-TsEvent kinds that also live in v1 journals: the recovery
    // marker, and an unknown vendor kind the auditor must tolerate.
    journal
        .append(
            "journal.recovered",
            obs::Json::obj([
                ("truncated_bytes", obs::Json::Int(42)),
                ("valid_records", obs::Json::Int(9)),
            ]),
        )
        .unwrap();
    journal
        .append(
            "ts.vendor_extension",
            obs::Json::obj([("note", obs::Json::from("ignore me"))]),
        )
        .unwrap();
    journal.into_inner()
}

/// The v1 on-disk format is frozen: the journal the server's encoder
/// writes today must be byte-identical to the checked-in fixture.
/// Regenerate deliberately with `HKA_BLESS=1 cargo test -p hka
/// --test audit` after a *versioned* schema change.
#[test]
fn journal_v1_fixture_is_byte_stable() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/journal_v1.jsonl");
    let generated = fixture_bytes();
    if std::env::var_os("HKA_BLESS").is_some() {
        std::fs::write(&path, &generated).unwrap();
    }
    let on_disk = std::fs::read(&path).expect("fixture missing: run with HKA_BLESS=1 once");
    assert_eq!(
        on_disk, generated,
        "journal v1 encoding drifted from tests/fixtures/journal_v1.jsonl; \
         additive payload fields are fine but require blessing the fixture \
         (HKA_BLESS=1), anything else needs a journal version bump"
    );
}

/// The auditor (an independent implementation of the schema) fully
/// understands the fixture: chain verified, every known kind decoded,
/// the one unknown kind tolerated, zero violations.
#[test]
fn auditor_reads_the_fixture_without_drift() {
    let out = audit::replay(&fixture_bytes()[..], AuditConfig::default());
    assert!(out.ok(), "violations: {:?}", out.violations);
    assert!(out.chain.verified());
    assert_eq!(out.chain.records, 11);
    assert_eq!(
        out.totals.unknown_kinds, 1,
        "only the vendor kind is unknown"
    );
    assert!(out.schema_issues.is_empty(), "{:?}", out.schema_issues);
    assert_eq!(out.totals.forwarded_exact, 1);
    assert_eq!(out.totals.forwarded_ok, 1);
    assert_eq!(out.totals.forwarded_clamped, 1);
    assert_eq!(out.totals.suppressed_total(), 1);
    assert_eq!(out.totals.unlinks, 1);
    assert_eq!(out.totals.lbqid_matches, 1);
    assert_eq!(out.recoveries, vec![(42, 9)]);
    assert!(out.mode_consistent);
    assert_eq!(out.mode_transitions.len(), 2);
    // The clamped forward is explained by the preceding at-risk notice,
    // and the unlink closes that user's at-risk window.
    let u2 = out.users.iter().find(|u| u.user == 2).unwrap();
    assert_eq!(u2.at_risk_windows, vec![(7_400, Some(7_600))]);
    assert_eq!(u2.unlinks, vec![7_600]);
}

fn run_pipeline() -> (TrustedServer, SharedBuf) {
    let world = World::generate(&WorldConfig {
        seed: 5,
        days: 3,
        n_commuters: 4,
        n_roamers: 20,
        n_poi_regulars: 2,
        ..WorldConfig::default()
    });
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 600));
    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        let level = if commuters.contains(&agent.user) {
            PrivacyLevel::Medium
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(agent.user, level);
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    let sink = SharedBuf::default();
    ts.attach_journal(obs::Journal::new(
        Box::new(sink.clone()) as Box<dyn Write + Send + Sync>
    ));
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let _ = ts.handle_request(e.user, e.at, ServiceId(service));
            }
        }
    }
    ts.flush_journal().expect("in-memory sink cannot fail");
    (ts, sink)
}

/// End-to-end: a clean simulated pipeline replays with a verified chain,
/// zero Theorem-1 violations, per-user k-timelines, and trade-off tables
/// whose totals agree with the server's own statistics.
#[test]
fn clean_pipeline_replay_is_verified_and_violation_free() {
    let (ts, sink) = run_pipeline();
    let bytes = sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let out = audit::replay(&bytes[..], AuditConfig::default());

    assert!(out.chain.verified(), "{:?}", out.chain.error);
    assert!(out.ok(), "violations: {:?}", out.violations);
    assert!(out.violations.is_empty(), "clean run must audit clean");

    // The replayed totals agree with the server's live accounting.
    let st = ts.log().stats();
    assert_eq!(out.totals.forwarded(), st.forwarded() as u64);
    assert_eq!(out.totals.forwarded_exact, st.forwarded_exact as u64);
    assert_eq!(out.totals.unlinks, st.pseudonym_changes as u64);
    assert_eq!(out.totals.at_risk, st.at_risk as u64);
    assert_eq!(out.totals.lbqid_matches, st.lbqid_matches as u64);

    // Protected users produced k-timelines with real anonymity targets.
    let with_samples: Vec<_> = out
        .users
        .iter()
        .filter(|u| !u.k_samples.is_empty())
        .collect();
    assert!(!with_samples.is_empty(), "no generalized traffic audited");
    for u in &with_samples {
        assert!(u.k_samples.iter().all(|s| s.k_req >= 2));
        assert!(u.min_k.is_some());
    }

    // The canonical JSON report carries the trade-off tables.
    let json = out.to_json();
    let trade_off = json.get("trade_off").expect("trade_off table");
    assert!(trade_off.get("overall").is_some());
    assert!(trade_off.get("per_service").is_some());
    assert!(trade_off.get("per_lbqid").is_some());
    assert_eq!(
        json.get("chain").unwrap().get("verified"),
        Some(&obs::Json::Bool(true))
    );
    // Canonical: serialize → parse → serialize is a fixed point.
    let text = json.to_string();
    assert_eq!(obs::json::parse(&text).unwrap().to_string(), text);
}

/// Tampering with any journaled byte is detected, and the audit still
/// reports the trustworthy prefix before the tamper point.
#[test]
fn tampered_journal_is_detected_with_prefix_preserved() {
    let (_ts, sink) = run_pipeline();
    let text = String::from_utf8(sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone()).unwrap();
    let total = text.lines().count() as u64;
    // Flip one payload byte somewhere in the middle of the journal.
    let tampered = text.replacen("\"generalized\":false", "\"generalized\":true ", 1);
    assert_ne!(text, tampered, "tamper target not found");

    let out = audit::replay(tampered.as_bytes(), AuditConfig::default());
    assert!(!out.chain.verified());
    assert!(!out.ok());
    assert!(out.chain.error.as_deref().unwrap().contains("hash"));
    assert!(out.chain.records < total, "audit must stop at the tamper");
}

/// A fail-open journal — one a buggy or compromised server would write —
/// yields detected violations: sub-k forwards with no at-risk notice and
/// forwards while the mode ladder says requests must not flow.
#[test]
fn fail_open_journal_yields_violations() {
    let mk_fwd = |user: u64, at: i64, generalized: bool, hk_ok: bool, k_got: u64| {
        obs::Json::obj([
            ("user", obs::Json::from(user)),
            ("at", obs::Json::Int(at)),
            ("x_min", obs::Json::Num(0.0)),
            ("y_min", obs::Json::Num(0.0)),
            ("x_max", obs::Json::Num(500.0)),
            ("y_max", obs::Json::Num(500.0)),
            ("t_start", obs::Json::Int(at - 60)),
            ("t_end", obs::Json::Int(at + 60)),
            ("generalized", obs::Json::Bool(generalized)),
            ("hk_ok", obs::Json::Bool(hk_ok)),
            ("service", obs::Json::Int(1)),
            ("k_req", obs::Json::Int(5)),
            ("k_got", obs::Json::Int(k_got as i64)),
            ("lbqid", obs::Json::from("commute")),
        ])
    };
    let mut journal = obs::Journal::new(Vec::new());
    // Sub-k release with no at-risk notification anywhere: the paper's
    // Section 6.1 duty to notify was skipped.
    journal
        .append("ts.forwarded", mk_fwd(1, 100, true, false, 2))
        .unwrap();
    // The ladder says read-only, yet a request flows.
    journal
        .append(
            "ts.mode_changed",
            obs::Json::obj([
                ("at", obs::Json::Int(200)),
                ("from", obs::Json::from("normal")),
                ("to", obs::Json::from("read_only")),
            ]),
        )
        .unwrap();
    journal
        .append("ts.forwarded", mk_fwd(2, 300, true, true, 5))
        .unwrap();
    let bytes = journal.into_inner();

    let out = audit::replay(&bytes[..], AuditConfig::default());
    assert!(out.chain.verified(), "the journal itself is well-formed");
    assert!(!out.ok());
    let kinds: Vec<ViolationKind> = out.violations.iter().map(|v| v.kind).collect();
    assert_eq!(
        kinds,
        vec![
            ViolationKind::UnexplainedClamp,
            ViolationKind::ForwardWhileReadOnly,
        ]
    );
    // Each violation pins the journal record (seq) that proves it.
    let seqs: Vec<u64> = out.violations.iter().map(|v| v.seq).collect();
    assert_eq!(seqs, vec![0, 2]);
}

/// QoS inflation against configured tolerances: the audit relates mean
/// generalization size to the service's tolerance envelope.
#[test]
fn tolerance_config_yields_inflation_ratios() {
    let (_ts, sink) = run_pipeline();
    let bytes = sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let tol = Tolerance::navigation();
    let out = audit::replay(
        &bytes[..],
        AuditConfig {
            space_tol: Some(tol.max_area),
            time_tol: Some(tol.max_duration),
            ..AuditConfig::default()
        },
    );
    let overall = out.to_json();
    let overall = overall.get("trade_off").unwrap().get("overall").unwrap();
    let area_infl = overall.get("area_inflation").unwrap().as_f64().unwrap();
    let dur_infl = overall.get("duration_inflation").unwrap().as_f64().unwrap();
    assert!(area_infl > 0.0, "generalized traffic must inflate area");
    assert!(dur_infl >= 0.0);
}
