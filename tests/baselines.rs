//! Integration tests pitting the paper's mechanism against the baselines
//! it discusses in Section 2 — the qualitative claims the experiments
//! quantify must hold.

use hka::baselines::{actual_senders, interval_cloaking, UniformCloak};
use hka::prelude::*;

fn city_world(seed: u64) -> World {
    World::generate(&WorldConfig {
        seed,
        days: 3,
        n_commuters: 10,
        n_roamers: 50,
        n_poi_regulars: 5,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    })
}

/// The paper's central comparison (Section 2): its k-*potential*-senders
/// requirement is "a much weaker requirement" than Gedik–Liu's k-*actual*-
/// senders — so at equal k, far more requests can be served.
#[test]
fn potential_senders_beat_actual_senders() {
    let world = city_world(21);
    let store = world.store();
    let index = GridIndex::build(&store, GridIndexConfig::default());

    // The request workload, time-sorted.
    let requests: Vec<(UserId, StPoint)> = world
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Request { .. }))
        .map(|e| (e.user, e.at))
        .collect();
    assert!(requests.len() > 200);

    let k = 5;
    // Potential senders: Algorithm 1 first-branch per request.
    let tolerance = Tolerance::new(4e6, 600);
    let potential_ok = requests
        .iter()
        .filter(|(u, at)| algorithm1_first(&index, at, *u, k, &tolerance).hk_anonymity)
        .count() as f64
        / requests.len() as f64;

    // Actual senders: CliqueCloak-style grouping with a box of comparable
    // size (side 2000 m ≈ √4e6) and the same temporal budget.
    let outcomes = actual_senders::evaluate(
        &requests,
        &actual_senders::ActualSendersConfig {
            k,
            max_side: 2_000.0,
            max_wait: 600,
        },
    );
    let actual_ok = actual_senders::release_rate(&outcomes);

    assert!(
        potential_ok > actual_ok,
        "potential {potential_ok:.2} must beat actual {actual_ok:.2}"
    );
    assert!(potential_ok > 0.8, "dense city should serve most requests");
}

/// Gruteser–Grunwald spatial cloaks and Algorithm 1 boxes should be of
/// the same order in a dense crowd, and both contain the requester.
#[test]
fn interval_cloaking_is_comparable_in_dense_areas() {
    let world = city_world(22);
    let store = world.store();
    let index = GridIndex::build(&store, GridIndexConfig::default());
    let domain = world.city.bounds;

    let k = 5;
    let mut both = 0;
    let mut samples = 0;
    for (u, at) in world
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Request { .. }))
        .map(|e| (e.user, e.at))
        .take(200)
    {
        samples += 1;
        let gg = interval_cloaking::spatial_cloak(&index, domain, &at, k, 300, 10);
        let a1 = algorithm1_first(&index, &at, u, k, &Tolerance::new(1e9, 86_400));
        if let Some(gg_rect) = gg {
            assert!(gg_rect.contains(&at.pos));
            assert!(a1.context.contains(&at));
            both += 1;
        }
    }
    assert!(samples > 100);
    assert!(
        both > samples / 2,
        "cloaking should usually succeed: {both}/{samples}"
    );
}

/// Uniform coarsening guarantees nothing: there exist cells where the
/// sole occupant is the requester — the paper's argument against the
/// "obvious solution".
#[test]
fn uniform_cloaking_fails_lone_users() {
    let world = city_world(23);
    let store = world.store();
    let cloak = UniformCloak::new(250.0, 300);
    let mut lonely = 0usize;
    let mut total = 0usize;
    for e in world
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Request { .. }))
        .take(500)
    {
        total += 1;
        let b = cloak.cloak(&e.at);
        assert!(b.contains(&e.at));
        let others = store
            .users_crossing(&b)
            .into_iter()
            .filter(|u| *u != e.user)
            .count();
        if others == 0 {
            lonely += 1;
        }
    }
    assert!(
        lonely > 0,
        "expected at least one uniform cell with a lone user out of {total}"
    );
}

/// Temporal cloaking trades delay for anonymity: wider lookbacks reach
/// higher k at fixed area.
#[test]
fn temporal_cloaking_monotone_in_k() {
    let world = city_world(24);
    let store = world.store();
    let index = GridIndex::build(&store, GridIndexConfig::default());
    // A busy downtown block.
    let area = Rect::from_bounds(900.0, 900.0, 1_200.0, 1_200.0);
    let at = StPoint::new(Point::new(1_000.0, 1_000.0), TimeSec::at_hm(1, 12, 0));
    let mut last = 0i64;
    for k in [2usize, 5, 10] {
        if let Some(w) = interval_cloaking::temporal_cloak(&index, area, &at, k, 60, 12 * HOUR) {
            assert!(w.duration() >= last, "k={k} shrank the window");
            last = w.duration();
            assert!(interval_cloaking::anonymity_set(&index, area, w).len() >= k);
        }
    }
}

/// The trusted server's historical guarantee is strictly stronger than
/// per-request cloaking: a set of users all of whom were present at
/// request time may still fail LT-consistency over the *whole* history.
#[test]
fn historical_anonymity_is_stronger_than_per_request() {
    let mut store = TrajectoryStore::new();
    // Users 1, 2, 3 share the morning context; only 2 shares the evening.
    for (u, x) in [(1u64, 0.0), (2, 5.0), (3, 9.0)] {
        store.record(UserId(u), StPoint::xyt(x, 0.0, TimeSec(100)));
    }
    store.record(UserId(1), StPoint::xyt(0.0, 500.0, TimeSec(5_000)));
    store.record(UserId(2), StPoint::xyt(5.0, 500.0, TimeSec(5_000)));
    store.record(UserId(3), StPoint::xyt(900.0, 900.0, TimeSec(5_000)));

    let morning = StBox::new(
        Rect::from_bounds(-10.0, -10.0, 20.0, 10.0),
        TimeInterval::new(TimeSec(0), TimeSec(200)),
    );
    let evening = StBox::new(
        Rect::from_bounds(-10.0, 490.0, 20.0, 510.0),
        TimeInterval::new(TimeSec(4_900), TimeSec(5_100)),
    );
    // Per-request: both contexts hold 3 potential senders …
    assert_eq!(anonymity_set(&store, &morning).len(), 3);
    assert_eq!(anonymity_set(&store, &evening).len(), 2);
    // … but historically only user 2 stays consistent with user 1's pair.
    let hk = historical_k_anonymity(&store, UserId(1), &[morning, evening], 3);
    assert!(!hk.satisfied);
    assert_eq!(hk.witnesses, vec![UserId(2)]);
}
