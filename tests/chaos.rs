//! Chaos acceptance suite for the robustness layer: randomized fault
//! schedules must never make the trusted server fail open (forward a
//! request it should have suppressed), journal outages must walk the
//! documented Normal → Degraded → ReadOnly mode ladder and recover when
//! a healthy journal is attached, and a journal file crashed mid-append
//! must recover to a verifiable chain that new records extend.

use hka::audit::{self, AuditConfig};
use hka::faults::sites;
use hka::obs;
use hka::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// An in-memory journal sink readable after the run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn small_world(seed: u64) -> World {
    World::generate(&WorldConfig {
        seed,
        days: 1,
        n_commuters: 4,
        n_roamers: 16,
        n_poi_regulars: 2,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    })
}

fn protected_server(world: &World, k: usize) -> TrustedServer {
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        let level = if commuters.contains(&agent.user) {
            PrivacyLevel::Custom(PrivacyParams {
                k,
                theta: 0.5,
                k_init: 2 * k,
                k_decrement: 1,
                on_risk: RiskAction::Forward,
            })
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(agent.user, level);
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    ts
}

struct ChaosOutcome {
    requests: u64,
    faults_fired: u64,
    violations: u64,
}

/// Drives one seeded world under one randomized fault schedule and
/// checks the fail-closed invariant on every delivered request.
fn chaos_run(seed: u64) -> ChaosOutcome {
    let world = small_world(seed);
    let mut ts = protected_server(&world, 4);
    let injector = FaultInjector::new(randomized_plan(seed));
    ts.attach_faults(injector.clone());
    ts.attach_journal(obs::Journal::new(Box::new(FaultyWriter::new(
        std::io::sink(),
        injector.clone(),
    )) as Box<dyn Write + Send + Sync>));

    // journal.io is excluded: the sink is consulted when the decision is
    // *logged*, after forwarding; its effect (the mode ladder) gates the
    // next request, which the mode_before check below covers.
    let request_sites = [sites::PHL_WRITE, sites::INDEX_QUERY, sites::MIXZONE];
    let fired_now =
        |inj: &FaultInjector| -> u64 { request_sites.iter().map(|s| inj.fired(s)).sum() };

    let mut out = ChaosOutcome {
        requests: 0,
        faults_fired: 0,
        violations: 0,
    };
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let mut deliveries: Vec<StPoint> = Vec::with_capacity(2);
                match injector.check(sites::ARRIVAL) {
                    Some(FaultKind::Drop) => {}
                    Some(FaultKind::Duplicate) => {
                        deliveries.push(e.at);
                        deliveries.push(e.at);
                    }
                    Some(FaultKind::Reorder) => {
                        let mut late = e.at;
                        late.t = TimeSec(late.t.0.saturating_sub(300));
                        deliveries.push(late);
                    }
                    _ => deliveries.push(e.at),
                }
                for at in deliveries {
                    let mode_before = ts.mode();
                    let before = fired_now(&injector);
                    let outcome = ts.handle_request(e.user, at, ServiceId(service));
                    let faulted = fired_now(&injector) > before;
                    out.requests += 1;
                    let fail_closed = match &outcome {
                        RequestOutcome::Suppressed(_) => true,
                        RequestOutcome::Forwarded(req) => {
                            !faulted
                                && match mode_before {
                                    ServerMode::Normal => true,
                                    ServerMode::Degraded => req.context.area() > 0.0,
                                    ServerMode::ReadOnly => false,
                                }
                        }
                    };
                    if !fail_closed {
                        out.violations += 1;
                    }
                }
            }
        }
    }
    out.faults_fired = injector.total_fired();
    out
}

#[test]
fn thirty_two_seeded_schedules_never_fail_open() {
    let mut total_faults = 0u64;
    let mut total_requests = 0u64;
    for seed in 1..=32u64 {
        let r = chaos_run(seed);
        assert_eq!(
            r.violations, 0,
            "seed {seed}: a faulted or degraded request was forwarded"
        );
        total_faults += r.faults_fired;
        total_requests += r.requests;
    }
    assert!(
        total_faults > 100,
        "schedules injected too few faults ({total_faults}) to exercise anything"
    );
    assert!(total_requests > 1_000, "worlds produced too few requests");
}

#[test]
fn journal_outage_walks_the_mode_ladder_and_recovers() {
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(1), Tolerance::navigation());
    ts.register_user(UserId(1), PrivacyLevel::Off);

    // Every journal write fails: the first event degrades the server and
    // the escalation (each event is itself a write attempt) takes it down.
    let broken = FaultInjector::new(FaultPlan::new(5).with_rule(
        sites::JOURNAL_IO,
        Trigger::Always,
        FaultKind::Io,
    ));
    ts.attach_journal_with(
        obs::Journal::new(
            Box::new(FaultyWriter::new(std::io::sink(), broken)) as Box<dyn Write + Send + Sync>
        ),
        RetryPolicy {
            attempts: 1,
            max_failures: 2,
            backoff_base: 0,
        },
    );
    assert_eq!(ts.mode(), ServerMode::Normal);

    for t in 1..=6i64 {
        let at = StPoint::xyt(100.0, 100.0, TimeSec(600 * t));
        ts.location_update(UserId(1), at);
        let _ = ts.handle_request(UserId(1), at, ServiceId(1));
    }
    assert_eq!(ts.mode(), ServerMode::ReadOnly);
    assert_eq!(ts.journal_health(), JournalHealth::Down);

    // Read-only means mutations are refused and requests are suppressed.
    assert!(matches!(
        ts.try_register_user(UserId(9), PrivacyLevel::Off),
        Err(TsError::Degraded)
    ));
    let at = StPoint::xyt(100.0, 100.0, TimeSec(4_200));
    assert!(matches!(
        ts.handle_request(UserId(1), at, ServiceId(1)),
        RequestOutcome::Suppressed(_)
    ));

    // A fresh healthy journal restores normal operation immediately.
    ts.attach_journal(obs::Journal::new(
        Box::new(Vec::new()) as Box<dyn Write + Send + Sync>
    ));
    assert_eq!(ts.mode(), ServerMode::Normal);
    let at = StPoint::xyt(100.0, 100.0, TimeSec(4_800));
    assert!(matches!(
        ts.handle_request(UserId(1), at, ServiceId(1)),
        RequestOutcome::Forwarded(_)
    ));

    // The ladder was journaled in order: Normal → Degraded → ReadOnly →
    // Normal again.
    let ladder: Vec<(ServerMode, ServerMode)> = ts
        .log()
        .events()
        .filter_map(|e| match e {
            TsEvent::ModeChanged { from, to, .. } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert_eq!(
        ladder,
        vec![
            (ServerMode::Normal, ServerMode::Degraded),
            (ServerMode::Degraded, ServerMode::ReadOnly),
            (ServerMode::ReadOnly, ServerMode::Normal),
        ]
    );
    assert_eq!(ts.log().stats().mode_changes, 3);
}

#[test]
fn crashed_file_journal_recovers_and_extends_a_verified_chain() {
    let dir = std::env::temp_dir().join(format!("hka-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");

    // Run a real pipeline into a file journal whose sink tears one write
    // mid-append (models a crash), then keeps going: everything after
    // the tear is unrecoverable garbage from the chain's point of view.
    {
        let world = small_world(11);
        let mut ts = protected_server(&world, 3);
        let file = std::fs::File::create(&path).unwrap();
        let crashy = FaultInjector::new(FaultPlan::new(11).with_rule(
            sites::JOURNAL_IO,
            Trigger::Once(12),
            FaultKind::Torn,
        ));
        ts.attach_journal_with(
            obs::Journal::new(
                Box::new(FaultyWriter::new(file, crashy)) as Box<dyn Write + Send + Sync>
            ),
            RetryPolicy {
                attempts: 1,
                max_failures: 64,
                backoff_base: 1,
            },
        );
        for e in &world.events {
            match e.kind {
                EventKind::Location => ts.location_update(e.user, e.at),
                EventKind::Request { service } => {
                    let _ = ts.handle_request(e.user, e.at, ServiceId(service));
                }
            }
        }
        ts.flush_journal().unwrap();
    }

    // Recovery truncates the torn tail and resumes the hash chain.
    let (mut journal, report) = obs::recover(&path).unwrap();
    assert!(report.valid_records > 0, "no intact prefix survived");
    assert!(report.truncated_bytes > 0, "the tear left nothing to drop");
    journal
        .append(
            "chaos.recovered",
            obs::Json::obj([("ok", obs::Json::Bool(true))]),
        )
        .unwrap();
    journal.flush().unwrap();
    drop(journal);

    let file = std::fs::File::open(&path).unwrap();
    let chain = obs::verify_chain(std::io::BufReader::new(file)).expect("recovered chain verifies");
    // Recovery appended its own `journal.recovered` marker before ours.
    assert_eq!(chain.records.len() as u64, report.valid_records + 2);
    assert_eq!(
        chain.records[report.valid_records as usize].kind,
        "journal.recovered"
    );
    assert_eq!(chain.records.last().unwrap().kind, "chaos.recovered");
    std::fs::remove_file(&path).ok();
}

/// The chaos suite's live invariant checks, confirmed offline: a run
/// with request-path faults (dropped PHL writes, unavailable index and
/// mix-zones) but a healthy journal replays through `hka::audit` with a
/// verified chain, zero fail-open forwards, and an empty mode ladder.
/// What the inline assertions saw request-by-request, the auditor must
/// reconstruct from the durable record alone.
#[test]
fn audited_chaos_journal_replays_clean() {
    let world = small_world(21);
    let mut ts = protected_server(&world, 4);
    let plan = FaultPlan::new(21)
        .with_rule(sites::PHL_WRITE, Trigger::EveryNth(5), FaultKind::Drop)
        .with_rule(
            sites::INDEX_QUERY,
            Trigger::EveryNth(7),
            FaultKind::Unavailable,
        )
        .with_rule(sites::MIXZONE, Trigger::EveryNth(3), FaultKind::Unavailable);
    let injector = FaultInjector::new(plan);
    ts.attach_faults(injector.clone());
    let sink = SharedBuf::default();
    ts.attach_journal(obs::Journal::new(
        Box::new(sink.clone()) as Box<dyn Write + Send + Sync>
    ));
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let _ = ts.handle_request(e.user, e.at, ServiceId(service));
            }
        }
    }
    ts.flush_journal().unwrap();
    assert!(injector.total_fired() > 0, "the plan never fired");

    let bytes = sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let out = audit::replay(&bytes[..], AuditConfig::default());
    assert!(out.chain.verified(), "{:?}", out.chain.error);
    assert!(out.ok(), "violations: {:?}", out.violations);
    assert!(
        out.violations.is_empty(),
        "faulted requests must fail closed"
    );
    assert!(out.mode_consistent);
    assert!(
        out.mode_transitions.is_empty(),
        "a healthy journal must keep the server in Normal"
    );
    assert!(out.totals.forwarded() > 0, "the run produced no traffic");
    assert_eq!(out.totals.forwarded(), ts.log().stats().forwarded() as u64);
}

/// The mode-ladder timeline survives the outage-and-recovery cycle: the
/// replacement journal attached after a total outage opens with the
/// ReadOnly → Normal transition, and the auditor finds the post-recovery
/// record consistent and violation-free.
#[test]
fn audited_recovery_journal_opens_with_the_ladder_transition() {
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(1), Tolerance::navigation());
    ts.register_user(UserId(1), PrivacyLevel::Off);

    let broken = FaultInjector::new(FaultPlan::new(5).with_rule(
        sites::JOURNAL_IO,
        Trigger::Always,
        FaultKind::Io,
    ));
    ts.attach_journal_with(
        obs::Journal::new(
            Box::new(FaultyWriter::new(std::io::sink(), broken)) as Box<dyn Write + Send + Sync>
        ),
        RetryPolicy {
            attempts: 1,
            max_failures: 2,
            backoff_base: 0,
        },
    );
    for t in 1..=6i64 {
        let at = StPoint::xyt(100.0, 100.0, TimeSec(600 * t));
        ts.location_update(UserId(1), at);
        let _ = ts.handle_request(UserId(1), at, ServiceId(1));
    }
    assert_eq!(ts.mode(), ServerMode::ReadOnly);

    // Recovery: the fresh journal records the ladder exit and the
    // traffic that resumed under it.
    let sink = SharedBuf::default();
    ts.attach_journal(obs::Journal::new(
        Box::new(sink.clone()) as Box<dyn Write + Send + Sync>
    ));
    assert_eq!(ts.mode(), ServerMode::Normal);
    for t in 7..=9i64 {
        let at = StPoint::xyt(100.0, 100.0, TimeSec(600 * t));
        ts.location_update(UserId(1), at);
        let _ = ts.handle_request(UserId(1), at, ServiceId(1));
    }
    ts.flush_journal().unwrap();

    let bytes = sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let out = audit::replay(&bytes[..], AuditConfig::default());
    assert!(out.chain.verified(), "{:?}", out.chain.error);
    assert!(out.ok(), "violations: {:?}", out.violations);
    assert_eq!(out.mode_transitions.len(), 1);
    assert_eq!(out.mode_transitions[0].from, audit::Mode::ReadOnly);
    assert_eq!(out.mode_transitions[0].to, audit::Mode::Normal);
    assert!(out.mode_consistent);
    assert!(out.totals.forwarded() > 0, "recovered traffic missing");
}
