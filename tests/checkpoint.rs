//! Acceptance suite for crash-safe checkpoints: snapshot + suffix
//! recovery must agree **byte for byte** with a genesis replay of the
//! same chain — across crash/recover cycles, with the checkpoint
//! anchor sitting inside a torn tail region, under seeded chaos on the
//! checkpoint path, and after the journal prefix has been archived.
//! PHL compaction rides the same bar: a server that compacts its
//! history nightly must journal the exact bytes an uncompacted twin
//! does.

use hka::audit::{self, AuditConfig, TailAuditor};
use hka::obs;
use hka::prelude::*;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;

fn hka_sim(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hka-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("hka-ckpt-it-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sp(x: f64, y: f64, t: i64) -> StPoint {
    StPoint::xyt(x, y, TimeSec(t))
}

fn file_journal(path: &Path) -> obs::BoxedJournal {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    obs::Journal::new(Box::new(std::io::BufWriter::new(file)) as Box<dyn Write + Send + Sync>)
}

/// A server journaling to `dir/journal.jsonl`: one service, a static
/// mix-zone, six users (half protected), a little location traffic.
fn busy_server(dir: &Path) -> (TrustedServer, PathBuf) {
    let journal = dir.join("journal.jsonl");
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.attach_journal(file_journal(&journal));
    ts.register_service(ServiceId(1), Tolerance::new(1e8, 7_200));
    ts.add_static_mixzone(Rect::new(
        Point::new(500.0, 500.0),
        Point::new(600.0, 600.0),
    ));
    for u in 0..6u64 {
        let level = if u % 2 == 0 {
            PrivacyLevel::Medium
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(UserId(u), level);
        for t in 0..5 {
            ts.location_update(UserId(u), sp(10.0 * u as f64, 3.0 * t as f64, 60 * t));
        }
        ts.handle_request(UserId(u), sp(10.0 * u as f64, 20.0, 400), ServiceId(1));
    }
    (ts, journal)
}

/// Crash the sink, leave `torn` bytes at the tail, recover (truncating
/// them), and re-attach a resumed sink.
fn crash_and_recover(ts: &mut TrustedServer, journal: &Path, torn: &[u8]) -> obs::RecoveryReport {
    drop(ts.take_journal());
    if !torn.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(journal)
            .unwrap();
        f.write_all(torn).unwrap();
    }
    let (recovered, report) = obs::recover(journal).unwrap();
    let next_seq = recovered.next_seq();
    let head = recovered.head().to_string();
    ts.attach_journal(obs::Journal::resume(
        Box::new(std::io::BufWriter::new(recovered.into_inner())) as Box<dyn Write + Send + Sync>,
        next_seq,
        head,
    ));
    report
}

// --- recover → tail → recover with the anchor in the torn region -----

#[test]
fn tail_rides_through_a_torn_tail_that_contains_the_checkpoint_anchor() {
    let dir = TempDir::new("tail-anchor");
    let (mut ts, journal) = busy_server(&dir.0);
    ts.flush_journal().unwrap();

    // The tailer catches up on the pre-checkpoint traffic first, so the
    // checkpoint anchor genuinely arrives in a *later* poll.
    let mut tail = TailAuditor::open(&journal, AuditConfig::default());
    tail.poll();
    let before_anchor = tail.records();
    assert!(before_anchor > 0, "tailer saw the prefix");

    // Checkpoint, then crash with a torn half-record: the tail region
    // now holds [anchor record][torn bytes] — the poll must ingest the
    // anchor and hold the torn bytes back.
    let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
    let receipt = cp.checkpoint(&mut ts, false).unwrap();
    drop(ts.take_journal());
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        f.write_all(br#"{"hash":"torn-mid-append"#).unwrap();
    }
    let poll = tail.poll();
    assert!(poll.new_records > 0, "the anchor was ingested");
    assert!(poll.torn_bytes > 0, "the torn bytes were held back");
    assert_eq!(
        tail.records(),
        receipt.seq + 1,
        "caught up through the anchor"
    );

    // First recovery truncates the torn bytes; the writer re-chains and
    // appends suffix traffic.
    let (recovered, report) = obs::recover(&journal).unwrap();
    assert!(report.truncated_bytes > 0);
    let next_seq = recovered.next_seq();
    let head = recovered.head().to_string();
    ts.attach_journal(obs::Journal::resume(
        Box::new(std::io::BufWriter::new(recovered.into_inner())) as Box<dyn Write + Send + Sync>,
        next_seq,
        head,
    ));
    for u in 0..6u64 {
        ts.handle_request(UserId(u), sp(10.0 * u as f64, 25.0, 700), ServiceId(1));
    }
    ts.flush_journal().unwrap();
    tail.poll();

    // Second crash/recover cycle, then more traffic.
    let report = crash_and_recover(&mut ts, &journal, br#"{"hash":"torn-again"#);
    assert!(report.truncated_bytes > 0);
    for u in 0..6u64 {
        ts.handle_request(UserId(u), sp(10.0 * u as f64, 30.0, 900), ServiceId(1));
    }
    drop(ts.take_journal());
    tail.poll();

    // The tail, the genesis replay, and the snapshot+suffix resume all
    // describe the same history, byte for byte.
    let offline = audit::replay_file(&journal, AuditConfig::default()).unwrap();
    assert!(offline.chain.verified());
    assert_eq!(
        tail.snapshot().to_json().to_string(),
        offline.to_json().to_string(),
        "tail == offline after two recoveries around the anchor"
    );
    let resumed = audit::resume_from_snapshot(&journal, &receipt.path).unwrap();
    assert_eq!(
        resumed.to_json().to_string(),
        offline.to_json().to_string(),
        "snapshot+suffix == genesis"
    );
}

#[test]
fn a_torn_anchor_is_truncated_and_recovery_falls_back_to_the_previous_checkpoint() {
    let dir = TempDir::new("torn-anchor");
    let (mut ts, journal) = busy_server(&dir.0);
    let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
    let first = cp.checkpoint(&mut ts, false).unwrap();

    for u in 0..6u64 {
        ts.handle_request(UserId(u), sp(10.0 * u as f64, 25.0, 700), ServiceId(1));
    }

    // A second checkpoint whose anchor append tears mid-line: the
    // snapshot file exists, but the chain never admitted it.
    let torn_anchor = br#"{"hash":"dead","kind":"checkpoint","payload":{"fi"#;
    let report = crash_and_recover(&mut ts, &journal, torn_anchor);
    assert!(report.truncated_bytes > 0, "the half anchor was truncated");

    // The scan skips nothing (the torn anchor is not in the chain at
    // all) and lands on the first checkpoint.
    let (found, skipped) = cp.latest_valid().unwrap();
    assert!(skipped.is_empty());
    assert_eq!(
        found.expect("first checkpoint survives").anchor.records,
        first.seq
    );

    // Resuming from it still reproduces the genesis replay exactly.
    drop(ts.take_journal());
    let offline = audit::replay_file(&journal, AuditConfig::default()).unwrap();
    assert!(offline.chain.verified());
    let resumed = audit::resume_from_snapshot(&journal, &first.path).unwrap();
    assert_eq!(resumed.to_json().to_string(), offline.to_json().to_string());
}

// --- chaos on the checkpoint path ------------------------------------

#[test]
fn checkpoint_chaos_never_poisons_recovery_or_the_audit() {
    for seed in 1..=5u64 {
        let dir = TempDir::new(&format!("chaos-{seed}"));
        let (mut ts, journal) = busy_server(&dir.0);
        let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
        cp.attach_faults(FaultInjector::new(checkpoint_chaos_plan(seed)));

        let mut ok = 0u64;
        let mut failed = 0u64;
        for round in 0..4u64 {
            for u in 0..6u64 {
                let at = sp(10.0 * u as f64, 25.0, 700 + 200 * round as i64);
                ts.handle_request(UserId(u), at, ServiceId(1));
            }
            match cp.checkpoint(&mut ts, false) {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
        }
        assert_eq!(ok + failed, 4);
        drop(ts.take_journal());

        // Whatever chaos did, the chain verifies and recovery is never
        // half-trusted: a valid checkpoint resumes byte-identically, no
        // valid checkpoint means clean genesis replay.
        let offline = audit::replay_file(&journal, AuditConfig::default()).unwrap();
        assert!(offline.chain.verified(), "seed {seed}");
        let (found, _skipped) = cp.latest_valid().unwrap();
        match found {
            Some(rec) => {
                let resumed = audit::resume_from_snapshot(&journal, &rec.path).unwrap();
                assert_eq!(
                    resumed.to_json().to_string(),
                    offline.to_json().to_string(),
                    "seed {seed}: fallback checkpoint resumes byte-identically"
                );
            }
            None => assert_eq!(
                ok, 0,
                "seed {seed}: only an all-failed run may lack checkpoints"
            ),
        }

        // And a server restored from the wreckage replays into a
        // working state (fail-closed, never fails open with a
        // half-written snapshot).
        let (restored, rec, _) = cp.restore_server(TsConfig::default()).unwrap();
        if let Some(rec) = rec {
            assert_eq!(restored.store().user_count(), 6, "seed {seed}");
            assert!(rec.path.exists());
        }
    }
}

// --- archived prefix --------------------------------------------------

#[test]
fn a_truncated_journal_still_verifies_and_resumes_the_full_history() {
    let dir = TempDir::new("archive");
    let (mut ts, journal) = busy_server(&dir.0);
    let full_len = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
    let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
    let receipt = cp.checkpoint(&mut ts, true).unwrap();
    assert!(receipt.truncated_bytes > 0, "the prefix was archived");
    assert!(std::fs::metadata(&journal).unwrap().len() < full_len);

    for u in 0..6u64 {
        ts.handle_request(UserId(u), sp(10.0 * u as f64, 25.0, 700), ServiceId(1));
    }
    drop(ts.take_journal());

    // A genesis replay of the truncated file seeds its cursor from the
    // leading anchor: the chain verifies even though the prefix bytes
    // are gone.
    let offline = audit::replay_file(&journal, AuditConfig::default()).unwrap();
    assert!(offline.chain.verified(), "anchor-seeded verification");

    // Resuming from the snapshot restores the full-history audit state
    // the archived prefix produced: every pre-checkpoint forward is
    // still accounted for.
    let resumed = audit::resume_from_snapshot(&journal, &receipt.path).unwrap();
    assert!(resumed.chain.verified());
    let genesis_total = offline.totals.forwarded();
    let resumed_total = resumed.totals.forwarded();
    assert!(
        resumed_total > genesis_total,
        "resume covers the archived prefix ({resumed_total} > {genesis_total})"
    );
}

// --- compaction differential ------------------------------------------

#[test]
fn a_compacting_server_journals_the_same_bytes_as_an_uncompacted_twin() {
    let dir = TempDir::new("compact-diff");
    let plain_path = dir.0.join("plain.jsonl");
    let compact_path = dir.0.join("compact.jsonl");

    let mut plain = TrustedServer::new(TsConfig::default());
    let mut compacting = TrustedServer::new(TsConfig::default());
    plain.attach_journal(file_journal(&plain_path));
    compacting.attach_journal(file_journal(&compact_path));
    let policy = CompactionPolicy::new(DAY, Granularity::Days);

    for ts in [&mut plain, &mut compacting] {
        ts.register_service(ServiceId(1), Tolerance::new(1e8, 7_200));
        for u in 0..8u64 {
            let level = if u % 2 == 0 {
                PrivacyLevel::Medium
            } else {
                PrivacyLevel::Off
            };
            ts.register_user(UserId(u), level);
        }
    }

    // Five days of dense location traffic and a request per user per
    // day; the twin compacts at every midnight.
    let mut dropped = 0u64;
    for day in 0..5i64 {
        for u in 0..8u64 {
            for f in 0..30i64 {
                let t = day * DAY + f * 2_000;
                let p = sp(10.0 * u as f64 + (f % 7) as f64, (f % 5) as f64, t);
                plain.location_update(UserId(u), p);
                compacting.location_update(UserId(u), p);
            }
            let at = sp(10.0 * u as f64, 20.0, day * DAY + 70_000);
            let a = plain.handle_request(UserId(u), at, ServiceId(1));
            let b = compacting.handle_request(UserId(u), at, ServiceId(1));
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "day {day} user {u}: outcomes diverge under compaction"
            );
        }
        let stats = compacting.compact_history(TimeSec((day + 1) * DAY), &policy);
        dropped += stats.points_dropped();
    }
    assert!(dropped > 0, "compaction actually folded something");
    assert!(
        compacting.store().total_points() < plain.store().total_points(),
        "the compacted store is smaller"
    );

    drop(plain.take_journal());
    drop(compacting.take_journal());
    let a = std::fs::read(&plain_path).unwrap();
    let b = std::fs::read(&compact_path).unwrap();
    assert_eq!(a, b, "the journals are byte-identical under compaction");

    let ra = audit::replay_file(&plain_path, AuditConfig::default()).unwrap();
    let rb = audit::replay_file(&compact_path, AuditConfig::default()).unwrap();
    assert_eq!(ra.to_json().to_string(), rb.to_json().to_string());
}

/// After [`TrustedServer::compact_history`], the server's rebuilt index
/// must be indistinguishable from an index built from scratch over the
/// compacted store — same scale, same size, and the same answers to
/// every query class — for the grid and the R-tree backend alike. A
/// rebuild that leaked stale cells, forgot by-time bookkeeping, or
/// dropped tree reinsertions would diverge here.
#[test]
fn compact_history_rebuild_matches_a_from_scratch_build() {
    for backend in [IndexBackend::Grid, IndexBackend::RTree] {
        let config = TsConfig {
            backend,
            ..TsConfig::default()
        };
        let mut ts = TrustedServer::new(config);
        ts.register_service(ServiceId(1), Tolerance::new(1e8, 7_200));
        for u in 0..10u64 {
            ts.register_user(UserId(u), PrivacyLevel::Off);
        }
        for day in 0..4i64 {
            for u in 0..10u64 {
                for f in 0..25i64 {
                    let t = day * DAY + f * 2_500;
                    ts.location_update(
                        UserId(u),
                        sp(15.0 * u as f64 + (f % 9) as f64, 3.0 * (f % 6) as f64, t),
                    );
                }
            }
        }
        let now = TimeSec(4 * DAY);
        let stats = ts.compact_history(now, &CompactionPolicy::new(DAY, Granularity::Days));
        assert!(stats.points_dropped() > 0, "{backend:?}: compaction folded");

        let fresh = backend.build(ts.store(), config.index);
        let rebuilt = ts.index();
        assert_eq!(rebuilt.backend(), backend);
        assert_eq!(rebuilt.scale(), fresh.scale(), "{backend:?}: scale");
        assert_eq!(rebuilt.len(), fresh.len(), "{backend:?}: indexed points");
        assert_eq!(
            rebuilt.len(),
            ts.store().total_points(),
            "{backend:?}: store"
        );

        let probes = [
            sp(0.0, 0.0, 0),
            sp(75.0, 9.0, 2 * DAY),
            sp(150.0, 15.0, 4 * DAY - 1),
        ];
        for seed in &probes {
            for k in [1usize, 4, 10, 25] {
                for excl in [None, Some(UserId(3))] {
                    assert_eq!(
                        rebuilt.k_nearest_users(seed, k, excl),
                        fresh.k_nearest_users(seed, k, excl),
                        "{backend:?}: k_nearest k={k}"
                    );
                }
            }
        }
        let b = StBox::new(
            Rect::from_bounds(0.0, 0.0, 160.0, 20.0),
            TimeInterval::new(TimeSec(DAY), TimeSec(3 * DAY)),
        );
        assert_eq!(
            rebuilt.users_crossing(&b),
            fresh.users_crossing(&b),
            "{backend:?}: users_crossing"
        );
        for limit in [0usize, 1, 5, 10, 99] {
            assert_eq!(
                rebuilt.count_users_crossing(&b, limit),
                fresh.count_users_crossing(&b, limit),
                "{backend:?}: count limit={limit}"
            );
        }
    }
}

// --- CLI surface ------------------------------------------------------

#[test]
fn serve_drill_checkpoints_verify_restore_and_resume() {
    let dir = TempDir::new("cli-drill");
    let journal = dir.0.join("drill.jsonl");
    let journal_s = journal.to_str().unwrap();
    let (code, stdout, stderr) = hka_sim(&[
        "serve-drill",
        "--journal",
        journal_s,
        "--days",
        "1",
        "--commuters",
        "4",
        "--roamers",
        "16",
        "--segments",
        "2",
        "--checkpoint-every",
        "100",
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("checkpoint equivalence: OK"), "{stdout}");

    // The snapshots the drill left behind resume both offline surfaces.
    let ckpt_dir = PathBuf::from(format!("{journal_s}.ckpt"));
    let mut snaps: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    snaps.sort();
    let last = snaps.last().expect("the drill wrote a snapshot");
    let last_s = last.to_str().unwrap();

    let resume_json = dir.0.join("resume.json");
    let genesis_json = dir.0.join("genesis.json");
    let (code, _, stderr) = hka_sim(&[
        "audit",
        "--journal",
        journal_s,
        "--snapshot",
        last_s,
        "--json",
        resume_json.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(code, 0, "{stderr}");
    let (code, _, stderr) = hka_sim(&[
        "audit",
        "--journal",
        journal_s,
        "--json",
        genesis_json.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(
        std::fs::read(&resume_json).unwrap(),
        std::fs::read(&genesis_json).unwrap(),
        "audit --snapshot == genesis audit"
    );

    let (code, stdout, stderr) = hka_sim(&[
        "watch",
        journal_s,
        "--snapshot",
        last_s,
        "--idle-exit",
        "2",
        "--interval-ms",
        "20",
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("checkpoints="), "{stdout}");
}

#[test]
fn serve_drill_checkpoint_chaos_and_truncation_still_exit_clean() {
    let dir = TempDir::new("cli-chaos");
    let journal = dir.0.join("chaos.jsonl");
    let journal_s = journal.to_str().unwrap();
    let (code, stdout, stderr) = hka_sim(&[
        "serve-drill",
        "--journal",
        journal_s,
        "--days",
        "1",
        "--commuters",
        "4",
        "--roamers",
        "16",
        "--segments",
        "2",
        "--checkpoint-every",
        "100",
        "--checkpoint-chaos",
        "3",
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");

    let dir2 = TempDir::new("cli-trunc");
    let journal = dir2.0.join("trunc.jsonl");
    let journal_s = journal.to_str().unwrap();
    let (code, stdout, stderr) = hka_sim(&[
        "serve-drill",
        "--journal",
        journal_s,
        "--days",
        "1",
        "--commuters",
        "4",
        "--roamers",
        "16",
        "--segments",
        "2",
        "--checkpoint-every",
        "100",
        "--truncate",
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("checkpoint resume: OK"), "{stdout}");
    assert!(stdout.contains("prefix bytes archived"), "{stdout}");

    // Flag misuse is a usage error, not a silent degradation.
    let (code, _, stderr) = hka_sim(&["serve-drill", "--truncate"]);
    assert_eq!(code, 2, "{stderr}");
    let (code, _, stderr) = hka_sim(&[
        "serve-drill",
        "--checkpoint-every",
        "10",
        "--truncate",
        "--audit-tail",
    ]);
    assert_eq!(code, 2, "{stderr}");
}
