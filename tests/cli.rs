//! End-to-end tests of the `hka-sim` command-line front end: each
//! subcommand is executed as a real process against the built binary.

use std::process::Command;

fn hka_sim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hka-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn simulate_prints_summary_and_audits() {
    let (ok, stdout, _) = hka_sim(&[
        "simulate", "--days", "3", "--commuters", "3", "--roamers", "20", "--k", "3",
    ]);
    assert!(ok);
    assert!(stdout.contains("simulated 3 days"));
    assert!(stdout.contains("HK success rate"));
    assert!(stdout.contains("commute: matched="));
}

#[test]
fn plan_reports_verdicts() {
    let (ok, stdout, _) = hka_sim(&["plan", "--population", "60", "--samples", "50"]);
    assert!(ok);
    assert!(stdout.contains("hospital-finder"));
    assert!(stdout.contains("localized-news"));
    assert!(stdout.contains("deploy") || stdout.contains("DO NOT DEPLOY"));
}

#[test]
fn export_then_plan_round_trips() {
    let dir = std::env::temp_dir().join("hka-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.csv");
    let trace_s = trace.to_str().unwrap();
    let (ok, stdout, _) = hka_sim(&["export", "--days", "1", "--out", trace_s]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("wrote"));
    let header = std::fs::read_to_string(&trace).unwrap();
    assert!(header.starts_with("# hka-trace v1"));
    let (ok, stdout, _) = hka_sim(&["plan", "--trace", trace_s, "--samples", "50"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("hospital-finder"));
}

#[test]
fn attack_accepts_levels_and_rejects_garbage() {
    let (ok, stdout, _) = hka_sim(&["attack", "--level", "off", "--seed", "2"]);
    assert!(ok);
    assert!(stdout.contains("targets identified"));
    let (ok, _, stderr) = hka_sim(&["attack", "--level", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown level"));
}

#[test]
fn usage_errors_are_reported() {
    let (ok, _, stderr) = hka_sim(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, stderr) = hka_sim(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = hka_sim(&["simulate", "--days", "three"]);
    assert!(!ok);
    assert!(stderr.contains("invalid value"));
    let (ok, _, stderr) = hka_sim(&["export"]);
    assert!(!ok);
    assert!(stderr.contains("--out"));
}

#[test]
fn derive_runs_for_commuter_and_roamer() {
    let (ok, stdout, _) = hka_sim(&["derive", "--user", "0", "--days", "5"]);
    assert!(ok);
    // Either outcome is legitimate; the line shapes are fixed.
    assert!(stdout.contains("population") || stdout.contains("no identifying"));
}
