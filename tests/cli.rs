//! End-to-end tests of the `hka-sim` command-line front end: each
//! subcommand is executed as a real process against the built binary.

use std::process::Command;

fn hka_sim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hka-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn simulate_prints_summary_and_audits() {
    let (ok, stdout, _) = hka_sim(&[
        "simulate",
        "--days",
        "3",
        "--commuters",
        "3",
        "--roamers",
        "20",
        "--k",
        "3",
    ]);
    assert!(ok);
    assert!(stdout.contains("simulated 3 days"));
    assert!(stdout.contains("HK success rate"));
    assert!(stdout.contains("commute: matched="));
}

#[test]
fn plan_reports_verdicts() {
    let (ok, stdout, _) = hka_sim(&["plan", "--population", "60", "--samples", "50"]);
    assert!(ok);
    assert!(stdout.contains("hospital-finder"));
    assert!(stdout.contains("localized-news"));
    assert!(stdout.contains("deploy") || stdout.contains("DO NOT DEPLOY"));
}

#[test]
fn export_then_plan_round_trips() {
    let dir = std::env::temp_dir().join("hka-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.csv");
    let trace_s = trace.to_str().unwrap();
    let (ok, stdout, _) = hka_sim(&["export", "--days", "1", "--out", trace_s]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("wrote"));
    let header = std::fs::read_to_string(&trace).unwrap();
    assert!(header.starts_with("# hka-trace v1"));
    let (ok, stdout, _) = hka_sim(&["plan", "--trace", trace_s, "--samples", "50"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("hospital-finder"));
}

#[test]
fn attack_accepts_levels_and_rejects_garbage() {
    let (ok, stdout, _) = hka_sim(&["attack", "--level", "off", "--seed", "2"]);
    assert!(ok);
    assert!(stdout.contains("targets identified"));
    let (ok, _, stderr) = hka_sim(&["attack", "--level", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown level"));
}

#[test]
fn usage_errors_are_reported() {
    let (ok, _, stderr) = hka_sim(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, stderr) = hka_sim(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = hka_sim(&["simulate", "--days", "three"]);
    assert!(!ok);
    assert!(stderr.contains("invalid value"));
    let (ok, _, stderr) = hka_sim(&["export"]);
    assert!(!ok);
    assert!(stderr.contains("--out"));
}

#[test]
fn derive_runs_for_commuter_and_roamer() {
    let (ok, stdout, _) = hka_sim(&["derive", "--user", "0", "--days", "5"]);
    assert!(ok);
    // Either outcome is legitimate; the line shapes are fixed.
    assert!(stdout.contains("population") || stdout.contains("no identifying"));
}

#[test]
fn index_backend_is_observationally_invariant() {
    let dir = std::env::temp_dir().join("hka-cli-index-test");
    std::fs::create_dir_all(&dir).unwrap();
    let grid = dir.join("grid.journal");
    let rtree = dir.join("rtree.journal");
    let grid_s = grid.to_str().unwrap();
    let rtree_s = rtree.to_str().unwrap();

    let run = |index: &str, out: &str| {
        let (ok, stdout, stderr) = hka_sim(&[
            "simulate",
            "--days",
            "2",
            "--commuters",
            "3",
            "--roamers",
            "20",
            "--shards",
            "4",
            "--index",
            index,
            "--trace-out",
            out,
        ]);
        assert!(ok, "{stderr}");
        stdout
    };
    let grid_stdout = run("grid", grid_s);
    let rtree_stdout = run("rtree", rtree_s);

    // The index backend is a pure query accelerator: switching it must
    // not move a single request between Forwarded and Suppressed, so
    // the journals — which record every per-request decision — match
    // byte for byte, and the summary lines agree.
    assert_eq!(
        std::fs::read(&grid).unwrap(),
        std::fs::read(&rtree).unwrap(),
        "grid and rtree journals must be byte-identical"
    );
    // Summaries agree too, modulo the line naming the output path.
    let strip = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.contains(".journal"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&grid_stdout), strip(&rtree_stdout));

    // The rtree-backed run passes the full audit on its own merits.
    let (ok, stdout, stderr) = hka_sim(&["audit", "--journal", rtree_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("chain: VERIFIED"));
    assert!(stdout.contains("violations: none"));

    // Unknown backends are a usage error, not a silent fallback.
    let (ok, _, stderr) = hka_sim(&["simulate", "--days", "1", "--index", "quadtree"]);
    assert!(!ok);
    assert!(stderr.contains("unknown index backend"));
}

#[test]
fn incremental_index_is_observationally_invariant() {
    let dir = std::env::temp_dir().join("hka-cli-union-test");
    std::fs::create_dir_all(&dir).unwrap();
    let on = dir.join("union-on.journal");
    let off = dir.join("union-off.journal");
    let on_s = on.to_str().unwrap();
    let off_s = off.to_str().unwrap();

    let base = [
        "simulate",
        "--days",
        "2",
        "--commuters",
        "3",
        "--roamers",
        "20",
        "--shards",
        "4",
        "--trace-out",
    ];
    let (ok, on_stdout, stderr) = hka_sim(&[&base[..], &[on_s]].concat());
    assert!(ok, "{stderr}");
    let (ok, off_stdout, stderr) =
        hka_sim(&[&base[..], &[off_s, "--no-incremental-index"]].concat());
    assert!(ok, "{stderr}");

    // The incremental union is a pure query accelerator on the
    // protected-request path: turning it off (per-request re-union of
    // the shard indexes) must not move a single decision, so the two
    // journals match byte for byte.
    assert_eq!(
        std::fs::read(&on).unwrap(),
        std::fs::read(&off).unwrap(),
        "union-on and union-off journals must be byte-identical"
    );
    let strip = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.contains(".journal"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&on_stdout), strip(&off_stdout));

    // And the optimized journal audits clean end to end.
    let (ok, stdout, stderr) = hka_sim(&["audit", "--journal", on_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("chain: VERIFIED"));
    assert!(stdout.contains("violations: none"));
}

#[test]
fn simulate_then_audit_round_trips() {
    let dir = std::env::temp_dir().join("hka-cli-audit-test");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("ts.journal");
    let journal_s = journal.to_str().unwrap();
    let report = dir.join("audit.json");
    let report_s = report.to_str().unwrap();

    let (ok, _, stderr) = hka_sim(&[
        "simulate",
        "--days",
        "2",
        "--commuters",
        "3",
        "--roamers",
        "20",
        "--trace-out",
        journal_s,
    ]);
    assert!(ok, "{stderr}");

    // A clean run audits clean, writes the canonical JSON report, and
    // exits 0.
    let (ok, stdout, stderr) = hka_sim(&["audit", "--journal", journal_s, "--json", report_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("chain: VERIFIED"));
    assert!(stdout.contains("violations: none"));
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"trade_off\""));
    assert!(json.contains("\"k_timeline\""));

    // Tampering with the journal fails the audit.
    let text = std::fs::read_to_string(&journal).unwrap();
    let tampered_path = dir.join("tampered.journal");
    std::fs::write(&tampered_path, text.replacen("\"user\":", "\"USER\":", 1)).unwrap();
    let (ok, stdout, _) = hka_sim(&["audit", "--journal", tampered_path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stdout.contains("chain: FAILED"));

    // Missing flag is a usage error.
    let (ok, _, stderr) = hka_sim(&["audit"]);
    assert!(!ok);
    assert!(stderr.contains("--journal"));
}
