//! The gateway's two load-bearing promises, pinned end to end:
//!
//! 1. **Transparency** — serving over TCP changes nothing the journal
//!    can see. The same seeded workload through the gateway (wire
//!    framing, req-id rewriting, bounded queue, drain barriers) and
//!    through an in-process [`RequestService`] produces byte-identical
//!    hash-chained journals, identical response outcomes, and an
//!    `hka-sim audit` that exits 0 on either file.
//! 2. **Fail-closed under chaos** — with seeded faults on all four
//!    gateway sites (`gateway.accept`, `conn.read`, `conn.frame`,
//!    `conn.write`), the journal never records more forwards than the
//!    drill submitted, and the chain still verifies: torn frames and
//!    dropped replies lose service, never privacy.

use std::path::PathBuf;
use std::process::Command;

use hka::obs;
use hka::prelude::*;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("hka-gw-it-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_world(seed: u64, days: i64) -> World {
    World::generate(&WorldConfig {
        seed,
        days,
        n_commuters: 5,
        n_roamers: 30,
        n_poi_regulars: 3,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    })
}

fn params() -> PrivacyParams {
    PrivacyParams {
        k: 4,
        theta: 0.5,
        k_init: 8,
        k_decrement: 1,
        on_risk: RiskAction::Forward,
    }
}

/// Registers services, users, and LBQIDs identically on either server
/// type (both only expose the same setup surface).
macro_rules! setup {
    ($ts:expr, $world:expr) => {{
        let commuters: Vec<UserId> = $world.commuters().collect();
        $ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
        $ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
        for agent in &$world.agents {
            let level = if commuters.contains(&agent.user) {
                PrivacyLevel::Custom(params())
            } else {
                PrivacyLevel::Off
            };
            $ts.register_user(agent.user, level);
        }
        for &u in &commuters {
            $ts.add_lbqid(
                u,
                Lbqid::example_commute($world.home_of(u).unwrap(), $world.office_of(u).unwrap()),
            );
        }
    }};
}

fn envelopes(world: &World) -> Vec<RequestEnvelope> {
    world
        .events
        .iter()
        .enumerate()
        .map(|(i, e)| match e.kind {
            EventKind::Location => RequestEnvelope::location(i as u64, e.user, e.at),
            EventKind::Request { service } => {
                RequestEnvelope::request(i as u64, e.user, e.at, ServiceId(service))
            }
        })
        .collect()
}

fn hka_sim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hka-sim"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// The gateway adds zero journal records and perturbs zero decisions:
/// a TCP-served run is byte-identical to an in-process seam run. The
/// backend is the 4-shard `ShardedTs` in serialized mode (randomizer
/// attached), where the journal is required to replay the sequential
/// execution exactly — so drain-cycle timing, which depends on thread
/// scheduling inside the gateway, provably cannot leak into the bytes.
#[test]
fn gateway_journal_is_byte_identical_to_in_process() {
    let dir = TempDir::new("diff");
    let inproc_path = dir.0.join("inproc.jsonl");
    let gw_path = dir.0.join("gateway.jsonl");

    let config = TsConfig {
        randomize: Some(RandomizeConfig::default()),
        ..TsConfig::default()
    };
    let world = build_world(23, 3);
    let envs = envelopes(&world);
    let n_requests = envs.iter().filter(|e| e.is_request()).count();
    assert!(n_requests > 0, "workload generated no requests");

    // --- In-process: the seam, no network. ---------------------------
    let mut shd = ShardedTs::new(config, 4);
    setup!(shd, &world);
    shd.attach_journal(obs::Journal::new(
        Box::new(std::fs::File::create(&inproc_path).unwrap()) as Box<dyn obs::DurableSink>,
    ));
    let svc: &mut dyn RequestService = &mut shd;
    for env in &envs {
        svc.submit(env);
    }
    let inproc = svc.drain();
    svc.flush_journal().unwrap();
    drop(shd);
    assert_eq!(inproc.len(), n_requests);

    // --- The same backend behind TCP. --------------------------------
    let mut shd = ShardedTs::new(config, 4);
    setup!(shd, &world);
    shd.attach_journal(obs::Journal::new(
        Box::new(std::fs::File::create(&gw_path).unwrap()) as Box<dyn obs::DurableSink>,
    ));
    let gw = Gateway::spawn("127.0.0.1:0", Box::new(shd), GatewayConfig::default()).unwrap();
    let mut client = GatewayClient::connect(gw.addr()).unwrap();
    let alice = world.commuters().next().unwrap();
    assert!(
        client.bind(alice).unwrap().is_some(),
        "protected user binds with a pseudonym"
    );
    // Pace the session with a drain barrier every 128 envelopes —
    // fewer than the 256-deep inflight queue, so nothing is ever
    // refused as overload or shed (an overload refusal is answered at
    // the gateway and never reaches the backend, which would change
    // both the outcomes and the journal; that path is exercised by the
    // crate's own overload test, not this differential).
    let mut served = Vec::new();
    for chunk in envs.chunks(128) {
        let expected = chunk.iter().filter(|e| e.is_request()).count();
        for env in chunk {
            client.send_env(env).unwrap();
        }
        served.extend(client.drain_responses(expected).unwrap());
    }
    let snap = gw.stats().snapshot();
    assert_eq!(snap.overloads, 0, "paced differential must not overload");
    assert_eq!(snap.shed_locations, 0, "paced differential must not shed");
    drop(client);
    let backend = gw.shutdown(); // drains + flushes before returning
    assert_eq!(backend.mode(), ServerMode::Normal);
    drop(backend);

    // Same responses: the gateway restored client req ids, so the two
    // runs line up one-to-one in submission order.
    assert_eq!(served.len(), inproc.len());
    for (a, b) in served.iter().zip(&inproc) {
        assert_eq!(a.req_id, b.req_id);
        assert_eq!(a.outcome, b.outcome, "req {}", a.req_id);
        assert_eq!(a.detail, b.detail, "req {}", a.req_id);
        assert_eq!(a.k_got, b.k_got, "req {}", a.req_id);
    }

    // Same bytes: framing, rewriting, and drain cadence left no trace.
    let inproc_bytes = std::fs::read(&inproc_path).unwrap();
    let gw_bytes = std::fs::read(&gw_path).unwrap();
    assert!(!gw_bytes.is_empty());
    assert_eq!(
        inproc_bytes, gw_bytes,
        "TCP-served journal must be byte-identical to the in-process run"
    );

    // Both chains verify, and the full offline auditor exits 0.
    for path in [&inproc_path, &gw_path] {
        let file = std::fs::File::open(path).unwrap();
        let report = obs::verify_chain(std::io::BufReader::new(file)).expect("chain intact");
        assert!(!report.records.is_empty());
        let out = hka_sim(&["audit", "--journal", path.to_str().unwrap(), "--quiet"]);
        assert!(
            out.status.success(),
            "audit of {} failed: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // And the auditor still *fails* when the gateway journal is
    // tampered with — exit 1 is the chain-broken code.
    let mut tampered = gw_bytes.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    let bad_path = dir.0.join("tampered.jsonl");
    std::fs::write(&bad_path, &tampered).unwrap();
    let out = hka_sim(&["audit", "--journal", bad_path.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(1), "tampered journal must exit 1");
}

/// Seeded chaos on every gateway site. The drill floods the gateway
/// from several connections while frames tear, reads stall, writes
/// vanish, and accepts get refused; afterwards the journal must (a)
/// still verify, and (b) contain no more forwards than the drill
/// submitted requests — dropped traffic degrades service, never
/// anonymity.
#[test]
fn gateway_chaos_drill_never_fails_open() {
    let dir = TempDir::new("chaos");
    let world = build_world(5, 2);
    let envs = envelopes(&world);
    let mut faults_total = 0u64;

    for seed in [1u64, 7, 19, 42] {
        let path = dir.0.join(format!("chaos-{seed}.jsonl"));
        let mut ts = TrustedServer::new(TsConfig::default());
        setup!(ts, &world);
        ts.attach_journal(obs::Journal::new(
            Box::new(std::fs::File::create(&path).unwrap())
                as Box<dyn std::io::Write + Send + Sync>,
        ));
        let config = GatewayConfig {
            faults: FaultInjector::new(gateway_chaos_plan(seed)),
            ..GatewayConfig::default()
        };
        let gw = Gateway::spawn("127.0.0.1:0", Box::new(ts), config).unwrap();

        // Several short sessions; chaos may kill any of them mid-way.
        // Replies are never awaited — a dropped response must not be
        // able to stall the drill (or a real client) forever.
        let mut submitted_requests = 0u64;
        for conn in 0..6usize {
            let Ok(mut client) = GatewayClient::connect(gw.addr()) else {
                continue;
            };
            let chunk = envs.len() / 6;
            for env in envs.iter().skip(conn * chunk).take(chunk) {
                if client.send_env(env).is_err() {
                    break; // connection torn down by chaos
                }
                if env.is_request() {
                    // Counted even if the gateway never applied it:
                    // the bound is conservative in the safe direction.
                    submitted_requests += 1;
                }
            }
        }
        // Let in-flight frames settle before the drain-and-stop.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let stats = gw.stats().snapshot();
        faults_total += stats.faults_fired;
        let mut backend = gw.shutdown();
        backend.flush_journal().unwrap();
        drop(backend);

        // The chain survived every torn frame and dropped write.
        let file = std::fs::File::open(&path).unwrap();
        let report =
            obs::verify_chain(std::io::BufReader::new(file)).expect("chaos journal chain intact");

        // Fail-closed: every forward in the journal is one the drill
        // actually submitted. Chaos can only shrink the count.
        let forwarded = report
            .records
            .iter()
            .filter(|r| r.kind == "ts.forwarded")
            .count() as u64;
        assert!(
            forwarded <= submitted_requests,
            "seed {seed}: {forwarded} forwards > {submitted_requests} submitted requests"
        );
    }
    assert!(
        faults_total > 0,
        "four seeds of gateway chaos must fire at least one fault"
    );
}

/// `hka-sim serve` end to end: the subprocess binds an ephemeral port,
/// serves a real client session, drains on the wire `shutdown` op, and
/// exits 0 with a verifiable journal on disk.
#[test]
fn serve_cli_round_trips_and_exits_clean() {
    use std::io::BufRead;

    let dir = TempDir::new("serve");
    let journal = dir.0.join("serve.jsonl");
    let mut child = Command::new(env!("CARGO_BIN_EXE_hka-sim"))
        .args([
            "serve",
            "--seed",
            "3",
            "--days",
            "1",
            "--commuters",
            "3",
            "--roamers",
            "12",
            "--addr",
            "127.0.0.1:0",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("hka-sim serve starts");

    let mut stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    assert!(banner.starts_with("serving on "), "{banner}");
    let addr: std::net::SocketAddr = banner
        .strip_prefix("serving on ")
        .and_then(|s| s.split_whitespace().next())
        .expect("banner carries the address")
        .parse()
        .expect("parseable address");

    let mut client = GatewayClient::connect(addr).unwrap();
    // Users 0..N exist; user 0 may or may not be protected — bind only
    // proves the session handshake.
    client.bind(UserId(0)).unwrap();
    let mut envs = Vec::new();
    for t in 0..30i64 {
        for u in 0..3u64 {
            envs.push(RequestEnvelope::location(
                envs.len() as u64,
                UserId(u),
                StPoint::xyt(50.0 * u as f64 + t as f64, 20.0 * u as f64, TimeSec(t * 10)),
            ));
        }
    }
    envs.push(RequestEnvelope::request(
        envs.len() as u64,
        UserId(1),
        StPoint::xyt(51.0, 20.0, TimeSec(300)),
        ServiceId(BACKGROUND_SERVICE),
    ));
    let responses = hka::gateway::serve_events(&mut client, &envs).unwrap();
    assert_eq!(responses.len(), 1);
    client.shutdown_gateway().unwrap();

    let status = child.wait().expect("serve exits");
    assert_eq!(status.code(), Some(0), "clean wire shutdown exits 0");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).unwrap();
    assert!(rest.contains("served 1 connection(s)"), "{rest}");

    let file = std::fs::File::open(&journal).unwrap();
    let report = obs::verify_chain(std::io::BufReader::new(file)).expect("serve journal verifies");
    assert!(!report.records.is_empty());
}
