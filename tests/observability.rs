//! Acceptance tests for the observability layer: a simulated pipeline
//! must produce (a) a hash-chain-verifiable JSONL journal and (b) a
//! metrics snapshot with nonzero counters and latency histograms for the
//! handle-request, generalization, linker, and index-query stages —
//! both through the library API and through the `hka-sim` binary.

use hka::obs;
use hka::prelude::*;
use std::io::Write;
use std::process::Command;
use std::sync::{Arc, Mutex};

/// An in-memory journal sink the test can read back after the run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_pipeline() -> (TrustedServer, SharedBuf) {
    let world = World::generate(&WorldConfig {
        seed: 7,
        days: 3,
        n_commuters: 4,
        n_roamers: 20,
        n_poi_regulars: 2,
        ..WorldConfig::default()
    });
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 600));
    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        let level = if commuters.contains(&agent.user) {
            PrivacyLevel::Medium
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(agent.user, level);
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    let sink = SharedBuf::default();
    ts.attach_journal(obs::Journal::new(
        Box::new(sink.clone()) as Box<dyn Write + Send + Sync>
    ));
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let _ = ts.handle_request(e.user, e.at, ServiceId(service));
            }
        }
    }
    ts.flush_journal().expect("in-memory sink cannot fail");
    // Drive the linker stage the way a provider-side analysis would.
    let requests: Vec<SpRequest> = ts.provider_view().into_iter().take(40).collect();
    let _ = link_components(&requests, &PseudonymLinker, 0.5);
    let _ = ts.unlink_audit(&TrackerLinker::default());
    (ts, sink)
}

#[test]
fn pipeline_journal_verifies_and_covers_every_event() {
    let (ts, sink) = run_pipeline();
    let bytes = sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let report = obs::verify_chain(&bytes[..]).expect("chain intact");
    let journaled = ts.log().events().len() as u64 + ts.log().dropped();
    assert_eq!(
        report.records.len() as u64,
        journaled,
        "journal covers every event"
    );
    assert!(!report.records.is_empty(), "simulation produced events");
    // Tampering with any byte of a payload must break verification.
    let mut tampered = bytes.clone();
    let pos = tampered
        .iter()
        .position(|&b| b == b':')
        .expect("json bytes present");
    tampered[pos + 1] ^= 1;
    assert!(obs::verify_chain(&tampered[..]).is_err());
}

#[test]
fn pipeline_metrics_cover_all_hot_paths() {
    let (ts, _) = run_pipeline();
    let snap = ts.metrics_snapshot();
    for counter in [
        "ts.requests",
        "ts.forwarded",
        "algo1.iterations",
        "index.probes",
    ] {
        assert!(snap.counter(counter) > 0, "counter {counter} is zero");
    }
    for stage in [
        "ts.handle_request",
        "algo1.generalize",
        "linker.link",
        "index.query",
    ] {
        let h = snap
            .histogram(stage)
            .unwrap_or_else(|| panic!("histogram {stage} missing"));
        assert!(h.count > 0, "histogram {stage} recorded nothing");
        assert!(h.p50 > 0, "histogram {stage} has empty quantiles");
    }
    // The machine-readable snapshot parses back as JSON.
    let parsed = obs::json::parse(&snap.to_json().to_string()).expect("snapshot JSON");
    assert!(parsed.get("counters").is_some());
    assert!(parsed.get("histograms").is_some());
}

#[test]
fn thousand_event_chain_verifies_and_detects_reorder() {
    let mut journal = obs::Journal::new(Vec::new());
    for i in 0u64..1_000 {
        journal
            .append(
                "test.tick",
                obs::Json::obj([("i", obs::Json::from(i)), ("sq", obs::Json::from(i * i))]),
            )
            .unwrap();
    }
    let bytes = journal.into_inner();
    let report = obs::verify_chain(&bytes[..]).expect("1k-event chain intact");
    assert_eq!(report.records.len(), 1_000);
    // Swapping two adjacent records breaks the chain.
    let mut lines: Vec<&[u8]> = bytes
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .collect();
    lines.swap(500, 501);
    let reordered = lines.join(&b'\n');
    assert!(obs::verify_chain(&reordered[..]).is_err());
}

fn hka_sim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hka-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_trace_out_and_metrics_default_to_simulate() {
    let dir = std::env::temp_dir().join("hka-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");
    let trace_s = trace.to_str().unwrap();
    let (ok, stdout, stderr) = hka_sim(&[
        "--trace-out",
        trace_s,
        "--metrics",
        "--days",
        "2",
        "--commuters",
        "3",
        "--roamers",
        "15",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    // The subcommand defaulted to `simulate`.
    assert!(stdout.contains("simulated 2 days"), "{stdout}");
    // Metrics snapshot with the instrumented stages.
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(stdout.contains("ts.requests"), "{stdout}");
    assert!(stdout.contains("histograms"), "{stdout}");
    assert!(stdout.contains("ts.handle_request"), "{stdout}");
    assert!(stdout.contains("algo1.generalize"), "{stdout}");
    // The journal on disk verifies end to end.
    let file = std::fs::File::open(&trace).unwrap();
    let report = obs::verify_chain(std::io::BufReader::new(file)).expect("chain intact");
    assert!(!report.records.is_empty());
    assert!(stdout.contains("journal:"), "{stdout}");
}
