//! Cross-crate integration tests: the full workload → trusted server →
//! provider pipeline, including the Theorem-1 guarantee.

use hka::prelude::*;

/// Runs a standard protected-city scenario: every commuter protected with
/// a commute LBQID at the given parameters.
fn run_city(seed: u64, days: i64, params: PrivacyParams) -> (World, TrustedServer) {
    let world = World::generate(&WorldConfig {
        seed,
        days,
        n_commuters: 8,
        n_roamers: 50,
        n_poi_regulars: 5,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    });
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        if commuters.contains(&agent.user) {
            ts.register_user(agent.user, PrivacyLevel::Custom(params));
        } else {
            ts.register_user(agent.user, PrivacyLevel::Off);
        }
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let _ = ts.handle_request(e.user, e.at, ServiceId(service));
            }
        }
    }
    (world, ts)
}

fn medium() -> PrivacyParams {
    PrivacyParams {
        k: 4,
        theta: 0.5,
        k_init: 8,
        k_decrement: 1,
        on_risk: RiskAction::Forward,
    }
}

#[test]
fn pipeline_is_deterministic() {
    let (_, a) = run_city(5, 7, medium());
    let (_, b) = run_city(5, 7, medium());
    assert_eq!(a.outbox(), b.outbox());
    assert_eq!(a.log().stats(), b.log().stats());
}

#[test]
fn different_seeds_give_different_traffic() {
    let (_, a) = run_city(5, 3, medium());
    let (_, b) = run_city(6, 3, medium());
    assert_ne!(a.outbox(), b.outbox());
}

/// Theorem 1, empirically: for every protected user, either the audited
/// request set of each pattern satisfies historical k-anonymity, or the
/// server notified the user of the risk (the theorem's "we can always
/// perform Unlinking" hypothesis failed).
#[test]
fn theorem1_violations_only_after_at_risk() {
    for seed in [1u64, 2, 3, 4, 5] {
        let (world, ts) = run_city(seed, 14, medium());
        for u in world.commuters() {
            for (name, _matched, hk) in ts.audit_patterns(u, 4) {
                if !hk.satisfied {
                    assert!(
                        ts.is_at_risk(u),
                        "seed {seed}: user {u} pattern {name} violated HK without at-risk"
                    );
                }
            }
        }
    }
}

/// Every forwarded context must contain the true request point — the
/// cloaking correctness invariant, checked across the whole stream.
#[test]
fn forwarded_contexts_cover_true_points() {
    let (world, ts) = run_city(9, 7, medium());
    // Reconstruct the request events in order; the outbox preserves
    // forwarding order but suppressed requests are missing, so check by
    // matching (user, time) against the PHL instead: every context must
    // cover some exact PHL point of its issuer.
    let store = world.store();
    for (user, req) in ts.outbox() {
        let phl = store.phl(*user).expect("issuer has a PHL");
        assert!(
            phl.crosses(&req.context),
            "request {req} does not cover any point of {user}"
        );
    }
}

/// Generalized pattern requests keep the anonymity promise at the level
/// of each individual request: at least k other users cross the context.
#[test]
fn hk_ok_contexts_hold_k_witnesses() {
    let (_, ts) = run_city(10, 7, medium());
    let store = ts.store();
    let mut checked = 0;
    for e in ts.log().events() {
        if let TsEvent::Forwarded {
            user,
            context,
            generalized: true,
            hk_ok: true,
            ..
        } = e
        {
            let others = store
                .users_crossing(context)
                .into_iter()
                .filter(|u| u != user)
                .count();
            assert!(others >= 4, "only {others} witnesses for {user}");
            checked += 1;
        }
    }
    assert!(
        checked > 10,
        "expected a meaningful number of HK-ok requests"
    );
}

/// Tolerance constraints are honored by every generalized context.
#[test]
fn tolerances_are_hard_caps() {
    let (_, ts) = run_city(11, 7, medium());
    let anchor_tol = Tolerance::new(9e6, 10 * MINUTE);
    for (_, req) in ts.outbox() {
        if req.service == ServiceId(ANCHOR_SERVICE) {
            assert!(
                anchor_tol.accepts(&req.context),
                "context {} exceeds tolerance",
                req.context
            );
        }
    }
}

/// Pseudonym changes really unlink: no pseudonym is ever reused after
/// retirement, and each pseudonym maps to exactly one true user.
#[test]
fn pseudonyms_are_unique_and_single_user() {
    let (_, ts) = run_city(12, 14, medium());
    let mut owner: std::collections::HashMap<Pseudonym, UserId> = Default::default();
    for (user, req) in ts.outbox() {
        let prev = owner.insert(req.pseudonym, *user);
        if let Some(prev) = prev {
            assert_eq!(prev, *user, "pseudonym {} shared", req.pseudonym);
        }
    }
    // With unlinking happening, protected users accumulate > 1 pseudonym.
    let changes = ts.log().stats().pseudonym_changes;
    if changes > 0 {
        let distinct: std::collections::BTreeSet<Pseudonym> = owner.keys().copied().collect();
        assert!(distinct.len() > ts.store().user_count() - changes);
    }
}

/// The online monitors agree with the exhaustive Definition-3 checker on
/// the *exact* (pre-generalization) request streams of protected users.
#[test]
fn full_matches_are_sound_wrt_definition3() {
    let (world, ts) = run_city(13, 14, medium());
    for u in world.commuters() {
        let lbqid = Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap());
        // Exact anchor request points of this user, from the workload.
        let points: Vec<StPoint> = world
            .events
            .iter()
            .filter(|e| {
                e.user == u
                    && matches!(e.kind, EventKind::Request { service } if service == ANCHOR_SERVICE)
            })
            .map(|e| e.at)
            .collect();
        let audits = ts.audit_patterns(u, 4);
        let (_, matched_online, _) = &audits[0];
        if *matched_online && ts.log().stats().pseudonym_changes == 0 {
            // Only when no reset interfered is the full stream comparable.
            assert!(
                offline::matches(&lbqid, &points),
                "user {u}: online matched but offline says no"
            );
        }
    }
}

/// With cloak randomization enabled, the pipeline keeps all its
/// guarantees: contexts still cover the true points, tolerances still
/// hold, and (because randomized boxes only grow before the clamp) the
/// Theorem-1 property is unaffected.
#[test]
fn randomization_preserves_guarantees() {
    let world = World::generate(&WorldConfig {
        seed: 77,
        days: 7,
        n_commuters: 6,
        n_roamers: 40,
        n_poi_regulars: 4,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    });
    let mut ts = TrustedServer::new(TsConfig {
        randomize: Some(RandomizeConfig::default()),
        ..TsConfig::default()
    });
    let anchor_tol = Tolerance::new(9e6, 10 * MINUTE);
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), anchor_tol);
    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        if commuters.contains(&agent.user) {
            ts.register_user(agent.user, PrivacyLevel::Custom(medium()));
        } else {
            ts.register_user(agent.user, PrivacyLevel::Off);
        }
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let _ = ts.handle_request(e.user, e.at, ServiceId(service));
            }
        }
    }
    let store = world.store();
    let mut randomized = 0;
    for (user, req) in ts.outbox() {
        assert!(store.phl(*user).unwrap().crosses(&req.context));
        if req.service == ServiceId(ANCHOR_SERVICE) && req.context.area() > 0.0 {
            assert!(anchor_tol.accepts(&req.context));
            randomized += 1;
        }
    }
    assert!(randomized > 20, "expected randomized pattern requests");
    for u in world.commuters() {
        for (name, _m, hk) in ts.audit_patterns(u, 4) {
            assert!(
                hk.satisfied || ts.is_at_risk(u),
                "{name} violated under randomization"
            );
        }
    }
}

/// Unprotected users leak exact contexts; protected users' pattern
/// requests never do (their contexts have positive area) unless clamping
/// collapsed them (at-risk case).
#[test]
fn protection_changes_what_the_provider_sees() {
    let (world, ts) = run_city(14, 7, medium());
    let commuters: Vec<UserId> = world.commuters().collect();
    let mut exact_by_unprotected = 0usize;
    let mut generalized_by_protected = 0usize;
    for e in ts.log().events() {
        if let TsEvent::Forwarded {
            user, generalized, ..
        } = e
        {
            if commuters.contains(user) {
                if *generalized {
                    generalized_by_protected += 1;
                }
            } else {
                assert!(!generalized, "unprotected users are never generalized");
                exact_by_unprotected += 1;
            }
        }
    }
    assert!(exact_by_unprotected > 100);
    assert!(generalized_by_protected > 20);
}
