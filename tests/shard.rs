//! Differential equivalence: the sharded frontend ([`ShardedTs`]) vs
//! the sequential [`TrustedServer`], on identical seeded workloads.
//!
//! The contract under test (see `crates/shard`): for every shard count,
//! per-request outcomes match the sequential server — outcome kind,
//! forwarded context box, service, and suppression reason — and the
//! exact decision statistics agree. Message-id and pseudonym *values*
//! come from disjoint per-shard id spaces on the parallel path, so they
//! are excluded there; once every event serializes (fault plan or
//! randomizer attached) the match is required to be exact, down to the
//! bytes of the journal.

use hka::obs;
use hka::prelude::*;

fn build_world(seed: u64, days: i64) -> World {
    World::generate(&WorldConfig {
        seed,
        days,
        n_commuters: 6,
        n_roamers: 40,
        n_poi_regulars: 4,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    })
}

fn medium() -> PrivacyParams {
    PrivacyParams {
        k: 4,
        theta: 0.5,
        k_init: 8,
        k_decrement: 1,
        on_risk: RiskAction::Forward,
    }
}

/// The identical setup script, applied to either server type.
struct Script {
    services: Vec<(ServiceId, Tolerance)>,
    users: Vec<(UserId, PrivacyLevel)>,
    lbqids: Vec<(UserId, Lbqid)>,
    overrides: Vec<(UserId, ServiceId, PrivacyLevel)>,
}

fn script(world: &World) -> Script {
    let commuters: Vec<UserId> = world.commuters().collect();
    Script {
        services: vec![
            (ServiceId(BACKGROUND_SERVICE), Tolerance::navigation()),
            (ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE)),
        ],
        users: world
            .agents
            .iter()
            .map(|a| {
                let level = if commuters.contains(&a.user) {
                    PrivacyLevel::Custom(medium())
                } else {
                    PrivacyLevel::Off
                };
                (a.user, level)
            })
            .collect(),
        lbqids: commuters
            .iter()
            .map(|&u| {
                (
                    u,
                    Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
                )
            })
            .collect(),
        // Protected users still use the background service with privacy
        // off — the exact-forward path the sharded scheduler classifies
        // as parallel-safe.
        overrides: commuters
            .iter()
            .map(|&u| (u, ServiceId(BACKGROUND_SERVICE), PrivacyLevel::Off))
            .collect(),
    }
}

fn setup_seq(world: &World, config: TsConfig) -> TrustedServer {
    let s = script(world);
    let mut ts = TrustedServer::new(config);
    for (svc, tol) in s.services {
        ts.register_service(svc, tol);
    }
    for (u, level) in s.users {
        ts.register_user(u, level);
    }
    for (u, q) in s.lbqids {
        ts.add_lbqid(u, q);
    }
    for (u, svc, level) in s.overrides {
        ts.set_service_privacy(u, svc, level).unwrap();
    }
    ts
}

fn setup_sharded(world: &World, config: TsConfig, shards: usize) -> ShardedTs {
    let s = script(world);
    let mut ts = ShardedTs::new(config, shards);
    for (svc, tol) in s.services {
        ts.register_service(svc, tol);
    }
    for (u, level) in s.users {
        ts.register_user(u, level);
    }
    for (u, q) in s.lbqids {
        ts.add_lbqid(u, q);
    }
    for (u, svc, level) in s.overrides {
        ts.set_service_privacy(u, svc, level).unwrap();
    }
    ts
}

type Outcomes = Vec<(UserId, Result<RequestOutcome, TsError>)>;

fn drive_seq(ts: &mut TrustedServer, world: &World) -> Outcomes {
    let mut out = Vec::new();
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                out.push((
                    e.user,
                    ts.try_handle_request(e.user, e.at, ServiceId(service)),
                ));
            }
        }
    }
    out
}

fn drive_sharded(ts: &mut ShardedTs, world: &World) -> Outcomes {
    for e in &world.events {
        match e.kind {
            EventKind::Location => {
                ts.submit_location(e.user, e.at);
            }
            EventKind::Request { service } => {
                ts.submit_request(e.user, e.at, ServiceId(service));
            }
        }
    }
    ts.take_outcomes()
        .into_iter()
        .map(|(_, user, outcome)| (user, outcome))
        .collect()
}

/// The id-space-independent fingerprint of an outcome: everything except
/// the msg-id and pseudonym values.
fn fingerprint(o: &Result<RequestOutcome, TsError>) -> String {
    match o {
        Ok(RequestOutcome::Forwarded(r)) => {
            format!("fwd service={:?} ctx={:?}", r.service, r.context)
        }
        Ok(RequestOutcome::Suppressed(reason)) => format!("sup {reason:?}"),
        Err(e) => format!("err {e}"),
    }
}

fn assert_equivalent(shards: usize, seq: &Outcomes, shd: &Outcomes) {
    assert_eq!(seq.len(), shd.len(), "{shards} shards: request count");
    for (i, ((su, so), (hu, ho))) in seq.iter().zip(shd).enumerate() {
        assert_eq!(su, hu, "{shards} shards: issuer of request {i}");
        assert_eq!(
            fingerprint(so),
            fingerprint(ho),
            "{shards} shards: outcome of request {i} (user {su})"
        );
    }
}

#[test]
fn sharded_outcomes_match_sequential_for_every_shard_count() {
    let world = build_world(42, 5);
    let mut seq = setup_seq(&world, TsConfig::default());
    let seq_out = drive_seq(&mut seq, &world);
    for shards in [1usize, 2, 4, 8] {
        let mut shd = setup_sharded(&world, TsConfig::default(), shards);
        // Force the threaded barrier path even on single-core CI.
        shd.set_parallel_threshold(0);
        let shd_out = drive_sharded(&mut shd, &world);
        assert_equivalent(shards, &seq_out, &shd_out);
        // Exact decision statistics agree (counts, not id values).
        assert_eq!(
            seq.log().stats(),
            shd.stats(),
            "{shards} shards: decision statistics"
        );
        // The merged canonical event stream has the same kind sequence.
        let seq_kinds: Vec<&str> = seq.log().events().map(|e| e.kind()).collect();
        let shd_kinds: Vec<&str> = shd.log().events().map(|e| e.kind()).collect();
        assert_eq!(seq_kinds, shd_kinds, "{shards} shards: event kinds");
        // Per-user introspection agrees where it is id-independent.
        for agent in &world.agents {
            assert_eq!(
                seq.is_at_risk(agent.user),
                shd.is_at_risk(agent.user),
                "{shards} shards: at-risk flag for {}",
                agent.user
            );
            assert_eq!(
                seq.privacy_indicator(agent.user),
                shd.privacy_indicator(agent.user),
                "{shards} shards: indicator for {}",
                agent.user
            );
        }
    }
}

#[test]
fn sharded_audits_match_sequential() {
    let world = build_world(7, 7);
    let mut seq = setup_seq(&world, TsConfig::default());
    drive_seq(&mut seq, &world);
    let mut shd = setup_sharded(&world, TsConfig::default(), 4);
    drive_sharded(&mut shd, &world);
    for u in world.commuters() {
        let a = seq.audit_patterns(u, 4);
        let b = shd.audit_patterns(u, 4);
        assert_eq!(a.len(), b.len());
        for ((an, am, ah), (bn, bm, bh)) in a.iter().zip(&b) {
            assert_eq!(an, bn);
            assert_eq!(am, bm);
            assert_eq!(ah.satisfied, bh.satisfied, "user {u} pattern {an}");
        }
        assert_eq!(seq.pattern_contexts(u), shd.pattern_contexts(u), "user {u}");
    }
    // The merged store is the sequential store.
    let merged = shd.merged_store();
    for (user, phl) in seq.store().iter() {
        assert_eq!(Some(phl), merged.phl(user), "PHL of {user}");
    }
}

#[test]
fn unknown_user_requests_report_errors_without_aborting() {
    let world = build_world(3, 2);
    let mut shd = setup_sharded(&world, TsConfig::default(), 2);
    let ghost = UserId(9_999_999);
    let at = world.events[0].at;
    assert_eq!(
        shd.request_now(ghost, at, ServiceId(BACKGROUND_SERVICE)),
        Err(TsError::UnknownUser(ghost))
    );
    // And the same submitted mid-stream: it surfaces in the outcomes.
    shd.submit_location(ghost, at); // unregistered ingest is fine
    let pos = shd.submit_request(ghost, at, ServiceId(ANCHOR_SERVICE));
    let outcomes = shd.take_outcomes();
    let (_, user, res) = outcomes.iter().find(|(p, _, _)| *p == pos).unwrap();
    assert_eq!(*user, ghost);
    assert_eq!(*res, Err(TsError::UnknownUser(ghost)));
}

/// With a randomizer configured every event serializes, and the sharded
/// server is required to replay the sequential execution *exactly*:
/// message ids, pseudonyms, randomized boxes — and the journal bytes.
#[test]
fn serialized_mode_is_byte_identical_including_journals() {
    let dir = std::env::temp_dir().join(format!("hka-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let seq_path = dir.join("seq.jsonl");
    let shd_path = dir.join("shd.jsonl");

    let config = TsConfig {
        randomize: Some(RandomizeConfig::default()),
        ..TsConfig::default()
    };
    let world = build_world(11, 4);

    let mut seq = setup_seq(&world, config);
    seq.attach_journal(obs::Journal::new(
        Box::new(std::fs::File::create(&seq_path).unwrap())
            as Box<dyn std::io::Write + Send + Sync>,
    ));
    let seq_out = drive_seq(&mut seq, &world);
    seq.flush_journal().unwrap();
    drop(seq);

    let mut shd = setup_sharded(&world, config, 4);
    shd.attach_journal(obs::Journal::new(
        Box::new(std::fs::File::create(&shd_path).unwrap()) as Box<dyn obs::DurableSink>,
    ));
    let shd_out = drive_sharded(&mut shd, &world);
    shd.flush_journal().unwrap();
    drop(shd);

    // Full equality: same Forwarded payloads (msg ids, pseudonyms,
    // randomized contexts), same suppressions.
    assert_eq!(seq_out, shd_out);

    // The two journals are byte-identical: group commit batches the
    // appends but chains the same bytes.
    let a = std::fs::read(&seq_path).unwrap();
    let b = std::fs::read(&shd_path).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "journal bytes diverge");
}

/// The same fault plan drives identical outcomes through both servers —
/// chaos testing can run through the sharded frontend.
#[test]
fn fault_plans_replay_identically() {
    for seed in [1u64, 5, 9] {
        let world = build_world(seed, 3);

        let mut seq = setup_seq(&world, TsConfig::default());
        seq.attach_faults(FaultInjector::new(randomized_plan(seed)));
        let seq_out = drive_seq(&mut seq, &world);

        let mut shd = setup_sharded(&world, TsConfig::default(), 4);
        shd.attach_faults(FaultInjector::new(randomized_plan(seed)));
        let shd_out = drive_sharded(&mut shd, &world);

        // Faults serialize everything: exact equality, ids included.
        assert_eq!(seq_out, shd_out, "seed {seed}");
        assert_eq!(seq.log().stats(), shd.stats(), "seed {seed}");
    }
}

/// The tentpole's safety gate: with the incrementally maintained union
/// index on (the default) and off (per-request `IndexSnapshot`
/// re-union), the same workload produces identical outcomes and
/// **byte-identical journals** — the delta-maintained union is pinned
/// to the re-union baseline end to end, not just at the query seam.
#[test]
fn incremental_union_matches_the_reunion_baseline_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("hka-shard-union-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let world = build_world(17, 5);

    let mut journals = Vec::new();
    for incremental in [true, false] {
        let path = dir.join(format!("union-{incremental}.jsonl"));
        let mut shd = setup_sharded(&world, TsConfig::default(), 4);
        shd.set_parallel_threshold(0);
        shd.set_incremental_index(incremental);
        assert_eq!(shd.incremental_index(), incremental);
        shd.attach_journal(obs::Journal::new(
            Box::new(std::fs::File::create(&path).unwrap()) as Box<dyn obs::DurableSink>,
        ));
        let out = drive_sharded(&mut shd, &world);
        shd.flush_journal().unwrap();
        if incremental {
            assert!(
                shd.union_generation() > 0,
                "the union actually ran (generation stamped)"
            );
        }
        journals.push((std::fs::read(&path).unwrap(), out));
    }
    let (a_bytes, a_out) = &journals[0];
    let (b_bytes, b_out) = &journals[1];
    assert_eq!(a_out, b_out, "outcomes diverge across the union toggle");
    assert!(!a_bytes.is_empty());
    assert_eq!(
        a_bytes, b_bytes,
        "journal bytes diverge across the union toggle"
    );
}

/// Sharded compaction: folds every shard's partition, rebuilds the
/// per-shard indices, **invalidates the union** (a removal is what the
/// insert-only delta stream cannot express), journals one deterministic
/// `ts.compaction` chain record — and afterwards the server still
/// answers identically to a sequential server compacted the same way.
#[test]
fn sharded_compaction_matches_sequential_and_discards_spanning_snapshots() {
    let dir = std::env::temp_dir().join(format!("hka-shard-compact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let world = build_world(29, 6);
    let split = world.events.len() / 2;
    let policy = CompactionPolicy::new(12 * HOUR, Granularity::Hours);

    let drive_slice = |seq: &mut TrustedServer, events: &[Event]| {
        let mut out = Vec::new();
        for e in events {
            match e.kind {
                EventKind::Location => seq.location_update(e.user, e.at),
                EventKind::Request { service } => {
                    out.push((
                        e.user,
                        seq.try_handle_request(e.user, e.at, ServiceId(service)),
                    ));
                }
            }
        }
        out
    };
    let drive_slice_shd = |shd: &mut ShardedTs, events: &[Event]| {
        for e in events {
            match e.kind {
                EventKind::Location => {
                    shd.submit_location(e.user, e.at);
                }
                EventKind::Request { service } => {
                    shd.submit_request(e.user, e.at, ServiceId(service));
                }
            }
        }
        shd.take_outcomes()
            .into_iter()
            .map(|(_, user, outcome)| (user, outcome))
            .collect::<Outcomes>()
    };

    let mut seq = setup_seq(&world, TsConfig::default());
    let mut seq_out = drive_slice(&mut seq, &world.events[..split]);
    let now = world.events[split].at.t;
    let seq_stats = seq.compact_history(now, &policy);
    seq_out.extend(drive_slice(&mut seq, &world.events[split..]));

    let mut chain_bytes = Vec::new();
    for shards in [2usize, 4] {
        let path = dir.join(format!("compact-{shards}.jsonl"));
        let mut shd = setup_sharded(&world, TsConfig::default(), shards);
        // Serialize everything so the two shard counts journal
        // byte-identically — including the compaction record.
        shd.attach_faults(FaultInjector::none());
        shd.attach_journal(obs::Journal::new(
            Box::new(std::fs::File::create(&path).unwrap()) as Box<dyn obs::DurableSink>,
        ));
        let mut shd_out = drive_slice_shd(&mut shd, &world.events[..split]);

        let gen_before = shd.union_generation();
        let shd_stats = shd.compact_history(now, &policy);
        assert_eq!(
            shd_stats.points_dropped(),
            seq_stats.points_dropped(),
            "{shards} shards: same points folded as the sequential server"
        );
        assert!(
            shd.union_generation() > gen_before,
            "{shards} shards: a snapshot generation spanning the compaction is discarded"
        );

        shd_out.extend(drive_slice_shd(&mut shd, &world.events[split..]));
        assert_equivalent(shards, &seq_out, &shd_out);

        // The folded global store is the sequential folded store.
        let merged = shd.merged_store();
        for (user, phl) in seq.store().iter() {
            assert_eq!(
                Some(phl),
                merged.phl(user),
                "{shards} shards: PHL of {user}"
            );
        }

        shd.flush_journal().unwrap();
        drop(shd);
        let bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        assert!(
            text.contains("ts.compaction"),
            "{shards} shards: compaction anchored in the chain"
        );
        chain_bytes.push(bytes);
    }
    assert_eq!(
        chain_bytes[0], chain_bytes[1],
        "compaction journals diverge across shard counts"
    );
}

/// Co-arriving protected requests cross one barrier and run as a batch;
/// the batch counters move, and outcomes equal driving the same
/// requests one flush at a time. The sequential bulk API rides the same
/// seam: [`TrustedServer::handle_requests`] must equal one-by-one
/// [`TrustedServer::try_handle_request`] calls.
#[test]
fn co_arriving_protected_requests_batch_without_changing_results() {
    let world = build_world(33, 4);

    // One flush for the whole world (maximal batching) ...
    let mut batched = setup_sharded(&world, TsConfig::default(), 4);
    batched.set_parallel_threshold(0);
    let snap_before = hka::obs::global().snapshot();
    let batched_out = drive_sharded(&mut batched, &world);
    let snap_after = hka::obs::global().snapshot();
    let batches =
        |s: &hka::obs::MetricsSnapshot| s.counters.get("ts.request_batches").copied().unwrap_or(0);
    assert!(
        batches(&snap_after) > batches(&snap_before),
        "protected runs went through the batched path"
    );

    // ... versus one flush per event (no co-arrival, no batching).
    let mut single = setup_sharded(&world, TsConfig::default(), 4);
    single.set_parallel_threshold(0);
    let mut single_out: Outcomes = Vec::new();
    for e in &world.events {
        match e.kind {
            EventKind::Location => single.location_update(e.user, e.at),
            EventKind::Request { service } => {
                single_out.push((e.user, single.request_now(e.user, e.at, ServiceId(service))));
            }
        }
    }
    assert_equivalent(4, &single_out, &batched_out);

    // Sequential bulk API: same contract at the strategy seam.
    let mut seq_bulk = setup_seq(&world, TsConfig::default());
    let mut seq_one = setup_seq(&world, TsConfig::default());
    let mut requests = Vec::new();
    for e in &world.events {
        match e.kind {
            EventKind::Location => {
                // Keep both PHLs identical between request batches.
                seq_bulk.location_update(e.user, e.at);
                seq_one.location_update(e.user, e.at);
            }
            EventKind::Request { service } => requests.push((e.user, e.at, ServiceId(service))),
        }
    }
    let bulk_out = seq_bulk.handle_requests(&requests);
    let one_out: Vec<_> = requests
        .iter()
        .map(|(u, at, svc)| seq_one.try_handle_request(*u, *at, *svc))
        .collect();
    assert_eq!(bulk_out.len(), one_out.len());
    for (i, (a, b)) in bulk_out.iter().zip(&one_out).enumerate() {
        assert_eq!(
            a.as_ref().map(fingerprint_ok).map_err(|e| e.to_string()),
            b.as_ref().map(fingerprint_ok).map_err(|e| e.to_string()),
            "bulk vs one-by-one diverge at request {i}"
        );
    }
}

fn fingerprint_ok(o: &RequestOutcome) -> String {
    fingerprint(&Ok(o.clone()))
}

/// The sharded journal is a well-formed hash chain and a clean audit:
/// `verify_chain` accepts it and `hka-audit` replays it with zero
/// violations, exactly as for the sequential server.
#[test]
fn sharded_journal_verifies_and_audits_clean() {
    let dir = std::env::temp_dir().join(format!("hka-shard-audit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");

    let world = build_world(21, 6);
    let mut shd = setup_sharded(&world, TsConfig::default(), 4);
    shd.set_parallel_threshold(0);
    shd.attach_journal(obs::Journal::new(
        Box::new(std::fs::File::create(&path).unwrap()) as Box<dyn obs::DurableSink>,
    ));
    drive_sharded(&mut shd, &world);
    shd.flush_journal().unwrap();
    let journal = shd.take_journal().expect("journal attached");
    assert!(journal.next_seq() > 0, "journal recorded events");
    drop(journal);

    let file = std::fs::File::open(&path).unwrap();
    let report = obs::verify_chain(std::io::BufReader::new(file)).expect("chain intact");
    assert!(!report.records.is_empty());

    let outcome = hka::audit::replay_file(&path, hka::audit::AuditConfig::default()).unwrap();
    assert!(outcome.chain.error.is_none(), "{:?}", outcome.chain.error);
    assert!(outcome.mode_consistent);
    assert!(
        outcome.violations.is_empty(),
        "audit violations: {:?}",
        outcome.violations
    );
    assert!(
        outcome.schema_issues.is_empty(),
        "{:?}",
        outcome.schema_issues
    );
}
