//! Acceptance suite for live audit tailing: the streaming follow-mode
//! auditor must agree with the offline `hka-audit` replay **byte for
//! byte** on every journal it watches — while the journal is still
//! being written, across crash/recover cycles, and under seeded fault
//! schedules — and the `hka-sim watch` / `serve-drill --audit-tail`
//! surfaces must expose exactly that machinery.
//!
//! The equivalence bar is deliberately strict: the tailer and the
//! offline reader share one `ChainCursor`, so any divergence in what
//! they verify, count, or report is a regression in the follow mode's
//! torn-tail handling, not an acceptable approximation.

use hka::audit::{self, AuditConfig, TailAuditor};
use hka::faults::sites;
use hka::obs;
use hka::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn hka_sim(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hka-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hka-tail-{}-{name}", std::process::id()))
}

/// A schema-valid `ts.forwarded` payload.
fn forwarded(user: i64, at: i64, generalized: bool, hk_ok: bool) -> obs::Json {
    use obs::Json;
    let side = if generalized { 100.0 } else { 0.0 };
    Json::obj([
        ("user", Json::Int(user)),
        ("at", Json::Int(at)),
        ("x_min", Json::Num(10.0)),
        ("y_min", Json::Num(10.0)),
        ("x_max", Json::Num(10.0 + side)),
        ("y_max", Json::Num(10.0 + side)),
        ("t_start", Json::Int(at - 5)),
        ("t_end", Json::Int(at + 5)),
        ("generalized", Json::Bool(generalized)),
        ("hk_ok", Json::Bool(hk_ok)),
    ])
}

// --- CLI surface ------------------------------------------------------

#[test]
fn serve_drill_with_live_tail_is_clean_and_watchable() {
    let path = tmp("drill.journal");
    let path_s = path.to_str().unwrap();
    let (code, stdout, stderr) = hka_sim(&[
        "serve-drill",
        "--audit-tail",
        "--journal",
        path_s,
        "--days",
        "1",
        "--commuters",
        "4",
        "--roamers",
        "16",
        "--segments",
        "2",
        "--interval-ms",
        "5",
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("equivalence: OK"), "{stdout}");
    assert!(stdout.contains("0 violations"), "{stdout}");

    // The journal the drill leaves behind is watchable after the fact,
    // and the watch report is byte-identical to the offline audit.
    let watch = tmp("drill-watch.json");
    let offline = tmp("drill-offline.json");
    let (code, stdout, _) = hka_sim(&[
        "watch",
        path_s,
        "--idle-exit",
        "2",
        "--interval-ms",
        "20",
        "--report",
        watch.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}");
    let (code, _, _) = hka_sim(&[
        "audit",
        "--journal",
        path_s,
        "--json",
        offline.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(code, 0);
    assert_eq!(
        std::fs::read(&watch).unwrap(),
        std::fs::read(&offline).unwrap(),
        "watch report and offline audit report must be byte-identical"
    );
    for p in [path, watch, offline] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn chaos_under_tail_never_reports_a_false_violation() {
    // Request-path chaos (tail_chaos_plan: journal I/O excluded) plus
    // crash/recover cycles at every segment boundary: the tailing
    // auditor must ride through all of it with zero violations and a
    // final report byte-identical to the offline replay.
    for seed in [3u64, 7, 42] {
        let path = tmp(&format!("chaos-{seed}.journal"));
        let path_s = path.to_str().unwrap();
        let (code, stdout, stderr) = hka_sim(&[
            "serve-drill",
            "--audit-tail",
            "--journal",
            path_s,
            "--days",
            "1",
            "--commuters",
            "4",
            "--roamers",
            "16",
            "--segments",
            "3",
            "--interval-ms",
            "5",
            "--chaos",
            &seed.to_string(),
        ]);
        assert_eq!(code, 0, "seed {seed}: stdout:\n{stdout}\nstderr:\n{stderr}");
        assert!(stdout.contains("equivalence: OK"), "seed {seed}: {stdout}");
        assert!(stdout.contains("0 violations"), "seed {seed}: {stdout}");
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn watch_flags_a_violation_with_its_journal_offset() {
    let path = tmp("violation.journal");
    let mut journal = obs::Journal::new(std::fs::File::create(&path).unwrap());
    journal
        .append("ts.forwarded", forwarded(1, 100, false, true))
        .unwrap();
    journal.flush().unwrap();
    let offset = std::fs::metadata(&path).unwrap().len();
    // A sub-k (clamped) generalized forward with no preceding at-risk
    // notification: an UnexplainedClamp the watcher must flag.
    journal
        .append("ts.forwarded", forwarded(1, 200, true, false))
        .unwrap();
    journal.flush().unwrap();
    drop(journal);

    let (code, stdout, stderr) = hka_sim(&[
        "watch",
        path.to_str().unwrap(),
        "--idle-exit",
        "2",
        "--interval-ms",
        "20",
    ]);
    assert_eq!(
        code, 2,
        "watch exits 2 on violations\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stderr.contains("unexplained_clamp"), "{stderr}");
    assert!(
        stderr.contains(&format!("offset {offset}")),
        "violation must carry the journal offset {offset}: {stderr}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn watch_and_audit_agree_on_an_empty_journal() {
    // Regression: a zero-length journal is a clean (empty) audit, not
    // an error — for the offline reader and the watcher alike.
    let path = tmp("empty.journal");
    std::fs::write(&path, b"").unwrap();
    let watch = tmp("empty-watch.json");
    let offline = tmp("empty-offline.json");
    let (code, stdout, stderr) = hka_sim(&[
        "watch",
        path.to_str().unwrap(),
        "--idle-exit",
        "1",
        "--report",
        watch.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    let (code, stdout, _) = hka_sim(&[
        "audit",
        "--journal",
        path.to_str().unwrap(),
        "--json",
        offline.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert_eq!(
        std::fs::read(&watch).unwrap(),
        std::fs::read(&offline).unwrap()
    );
    for p in [path, watch, offline] {
        let _ = std::fs::remove_file(p);
    }
}

// --- Library surface --------------------------------------------------

#[test]
fn tail_survives_recovery_truncation_and_rechain() {
    // A tailer positioned exactly past a torn tail must be oblivious to
    // `Journal::recover` truncating it, and must pick up the recovery
    // marker and every re-chained record that follows.
    let path = tmp("recover.journal");
    let mut journal = obs::Journal::new(std::fs::File::create(&path).unwrap());
    for at in [10i64, 20, 30] {
        journal
            .append(
                "ts.pseudonym_changed",
                obs::Json::obj([("user", obs::Json::Int(1)), ("at", obs::Json::Int(at))]),
            )
            .unwrap();
    }
    journal.flush().unwrap();
    drop(journal);
    // Crash mid-append: a newline-less torn tail.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(br#"{"hash":"torn-mid-append"#).unwrap();
    drop(f);

    let mut tail = TailAuditor::open(&path, AuditConfig::default());
    let poll = tail.poll();
    assert_eq!(poll.new_records, 3);
    assert!(
        poll.torn_bytes > 0,
        "the torn tail is visible but not consumed"
    );
    assert!(poll.chain_error.is_none());

    // Recovery truncates exactly the bytes the tailer never consumed,
    // appends its marker, and the writer re-chains from the new head.
    let (mut journal, report) = obs::recover(&path).unwrap();
    assert_eq!(report.valid_records, 3);
    assert!(report.truncated_bytes > 0);
    journal
        .append(
            "ts.pseudonym_changed",
            obs::Json::obj([("user", obs::Json::Int(1)), ("at", obs::Json::Int(40))]),
        )
        .unwrap();
    journal.flush().unwrap();
    drop(journal);

    let poll = tail.poll();
    assert!(
        poll.chain_error.is_none(),
        "recovery must be invisible: {:?}",
        poll.chain_error
    );
    assert_eq!(
        poll.new_records, 2,
        "the journal.recovered marker plus the new record"
    );
    assert_eq!(poll.torn_bytes, 0);

    let tailed = tail.snapshot().to_json().to_string();
    let offline = audit::replay_file(&path, AuditConfig::default())
        .unwrap()
        .to_json()
        .to_string();
    assert_eq!(
        tailed, offline,
        "tail and offline reports must be byte-identical"
    );
    let _ = std::fs::remove_file(path);
}

fn small_world(seed: u64) -> World {
    World::generate(&WorldConfig {
        seed,
        days: 1,
        n_commuters: 4,
        n_roamers: 16,
        n_poi_regulars: 2,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    })
}

fn protected_server(world: &World, k: usize) -> TrustedServer {
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        let level = if commuters.contains(&agent.user) {
            PrivacyLevel::Custom(PrivacyParams {
                k,
                theta: 0.5,
                k_init: 2 * k,
                k_decrement: 1,
                on_risk: RiskAction::Forward,
            })
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(agent.user, level);
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    ts
}

#[test]
fn journal_fault_chaos_tail_matches_offline_audit_byte_for_byte() {
    // The strongest equivalence claim: full randomized fault schedules
    // — journal I/O faults *included*, so torn writes, clean I/O errors
    // and the whole mode ladder fire — with a live tailer following the
    // file while the server writes it. Whatever ends up on disk (clean
    // chain, mid-file corruption, dropped mode records), the tailer's
    // final report must be byte-identical to the offline replay of the
    // same file. No zero-violation assertion here: journal faults can
    // produce *genuine* ModeLadderGap violations, and both readers must
    // agree on those too.
    for seed in 0..6u64 {
        let path = tmp(&format!("jfault-{seed}.journal"));
        let _ = std::fs::remove_file(&path);
        let world = small_world(seed);
        let mut ts = protected_server(&world, 3);
        let injector = FaultInjector::new(randomized_plan(seed));
        ts.attach_faults(injector.clone());
        let file = std::fs::File::create(&path).unwrap();
        ts.attach_journal(obs::Journal::new(
            Box::new(FaultyWriter::new(file, injector.clone())) as Box<dyn Write + Send + Sync>,
        ));

        let done = Arc::new(AtomicBool::new(false));
        let tailer = {
            let done = Arc::clone(&done);
            let path = path.clone();
            std::thread::spawn(move || {
                let mut tail = TailAuditor::open(&path, AuditConfig::default());
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    let poll = tail.poll();
                    if poll.chain_error.is_some() || (finished && poll.new_records == 0) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                tail
            })
        };

        for e in &world.events {
            match e.kind {
                EventKind::Location => ts.location_update(e.user, e.at),
                EventKind::Request { service } => {
                    let mut deliveries: Vec<StPoint> = Vec::with_capacity(2);
                    match injector.check(sites::ARRIVAL) {
                        Some(FaultKind::Drop) => {}
                        Some(FaultKind::Duplicate) => {
                            deliveries.push(e.at);
                            deliveries.push(e.at);
                        }
                        Some(FaultKind::Reorder) => {
                            let mut late = e.at;
                            late.t = TimeSec(late.t.0.saturating_sub(300));
                            deliveries.push(late);
                        }
                        _ => deliveries.push(e.at),
                    }
                    for at in deliveries {
                        let _ = ts.handle_request(e.user, at, ServiceId(service));
                    }
                }
            }
        }
        drop(ts.take_journal());
        done.store(true, Ordering::SeqCst);
        let mut tail = tailer.join().expect("tailer thread");

        // A torn fault on the final append leaves a newline-less tail
        // that no later write completes: with the writer gone for good,
        // that is a crash, and the on-call path is recovery. Run it —
        // the truncation lands entirely past the tailer's verified
        // offset, and the recovery marker re-chains the file — unless
        // the tailer already latched a mid-file corruption, in which
        // case the file is left as-is so both readers see the same
        // break.
        let trailing_torn = std::fs::read(&path)
            .map(|b| !b.is_empty() && b[b.len() - 1] != b'\n')
            .unwrap_or(false);
        if trailing_torn && tail.chain_error().is_none() {
            let (mut journal, _) = obs::recover(&path).unwrap();
            journal.flush().unwrap();
            drop(journal);
            let _ = tail.poll();
        }

        let tailed = tail.snapshot().to_json().to_string();
        let offline = audit::replay_file(&path, AuditConfig::default())
            .unwrap()
            .to_json()
            .to_string();
        assert_eq!(
            tailed,
            offline,
            "seed {seed}: tail and offline reports diverged on {}",
            path.display()
        );
        let _ = std::fs::remove_file(path);
    }
}
