//! Acceptance tests for end-to-end request tracing and the SLO
//! watchdog: Perfetto-loadable export with correct parent/child nesting
//! across shard thread boundaries, byte-stable artifacts for a fixed
//! seed, journals unchanged by collection state, and SLO breaches that
//! land in the journal without disturbing the audit.

use hka::obs;
use hka::prelude::*;
use std::process::Command;
use std::sync::Mutex;

/// The trace collector is process-global; library-driven tests that
/// enable/disable it serialize here (CLI-driven tests run their own
/// processes and need no lock).
static COLLECTOR: Mutex<()> = Mutex::new(());

fn hka_sim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hka-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hka-trace-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build_world(days: i64) -> World {
    World::generate(&WorldConfig {
        seed: 11,
        days,
        n_commuters: 4,
        n_roamers: 16,
        n_poi_regulars: 2,
        ..WorldConfig::default()
    })
}

fn setup_sharded(world: &World, shards: usize) -> ShardedTs {
    let mut ts = ShardedTs::new(TsConfig::default(), shards);
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 600));
    let commuters: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        let level = if commuters.contains(&agent.user) {
            PrivacyLevel::Medium
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(agent.user, level);
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    // Explicit privacy-off overrides let the scheduler classify the
    // background traffic parallel-safe, so requests actually cross onto
    // worker threads.
    for &u in &commuters {
        ts.set_service_privacy(u, ServiceId(BACKGROUND_SERVICE), PrivacyLevel::Off)
            .expect("registered");
    }
    ts
}

fn drive(ts: &mut ShardedTs, world: &World) {
    for e in &world.events {
        match e.kind {
            EventKind::Location => {
                ts.submit_location(e.user, e.at);
            }
            EventKind::Request { service } => {
                ts.submit_request(e.user, e.at, ServiceId(service));
            }
        }
    }
    ts.flush_journal().expect("flush");
}

/// The tentpole acceptance check: spans recorded on worker threads
/// (track ≥ 1) parent under the request roots minted on the coordinator
/// (track 0), within the same trace — and the whole document passes the
/// Chrome-trace validator.
#[test]
fn export_nests_spans_across_shard_thread_boundaries() {
    let _g = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    obs::trace::enable(1 << 16);
    let world = build_world(2);
    let mut ts = setup_sharded(&world, 4);
    // Force every batch through the threaded barrier path.
    ts.set_parallel_threshold(0);
    drive(&mut ts, &world);
    obs::trace::disable();
    let records = obs::trace::drain();
    obs::trace::set_thread_track(0);

    let doc = obs::chrome_trace(&records, obs::TraceClock::Logical);
    let check = obs::validate_chrome_trace(&doc).expect("exported trace is schema-valid");
    assert_eq!(check.spans, records.len());
    assert!(check.tracks > 1, "worker tracks appear in the export");

    let roots: std::collections::BTreeMap<_, _> = records
        .iter()
        .filter(|r| r.name == "ts.request")
        .map(|r| (r.id, r))
        .collect();
    assert!(!roots.is_empty(), "request roots recorded");
    let cross: Vec<_> = records
        .iter()
        .filter(|r| r.name == "ts.handle_request" && r.track != 0)
        .collect();
    assert!(
        !cross.is_empty(),
        "some requests were handled on worker threads"
    );
    for span in cross {
        let parent = span.parent.expect("worker span has a parent");
        let root = roots
            .get(&parent)
            .expect("worker span parents under a request root");
        assert_eq!(root.track, 0, "roots are minted on the coordinator");
        assert_eq!(root.trace, span.trace, "parent and child share the trace");
    }
}

/// Same seed, two fresh processes: the exported artifact (logical
/// clock, the default) is byte-identical.
#[test]
fn trace_export_is_byte_stable_for_a_fixed_seed() {
    let dir = tmp_dir("stable");
    let run = |tag: &str| {
        let out = dir.join(format!("{tag}.json"));
        let (ok, stdout, stderr) = hka_sim(&[
            "simulate",
            "--days",
            "1",
            "--commuters",
            "3",
            "--roamers",
            "12",
            "--seed",
            "5",
            "--shards",
            "2",
            "--trace-export",
            out.to_str().unwrap(),
        ]);
        assert!(ok, "{stdout}{stderr}");
        std::fs::read(&out).unwrap()
    };
    let a = run("a");
    let b = run("b");
    assert_eq!(a, b, "trace export must be byte-stable for a fixed seed");

    let path = dir.join("a.json");
    let (ok, stdout, stderr) = hka_sim(&["trace", "--validate", path.to_str().unwrap()]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("OK"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Collection state must never leak into the decision record: the
/// journal written with `--trace-export` is byte-identical to the one
/// written without.
#[test]
fn journals_are_byte_identical_with_tracing_on_and_off() {
    let dir = tmp_dir("onoff");
    let run = |tag: &str, traced: bool| {
        let journal = dir.join(format!("{tag}.jsonl"));
        let mut args = vec![
            "simulate".to_string(),
            "--days".into(),
            "1".into(),
            "--commuters".into(),
            "3".into(),
            "--roamers".into(),
            "12".into(),
            "--seed".into(),
            "5".into(),
            "--shards".into(),
            "2".into(),
            "--trace-out".into(),
            journal.to_str().unwrap().to_string(),
        ];
        if traced {
            args.push("--trace-export".into());
            args.push(
                dir.join(format!("{tag}.json"))
                    .to_str()
                    .unwrap()
                    .to_string(),
            );
        }
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let (ok, stdout, stderr) = hka_sim(&argv);
        assert!(ok, "{stdout}{stderr}");
        std::fs::read(&journal).unwrap()
    };
    let with = run("traced", true);
    let without = run("plain", false);
    assert!(!with.is_empty());
    assert_eq!(
        with, without,
        "journal bytes must not depend on trace collection"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `hka-sim trace JOURNAL --out` reconstructs a validator-clean coarse
/// timeline from a journal written without any live tracing.
#[test]
fn trace_subcommand_reconstructs_a_valid_timeline_from_a_journal() {
    let dir = tmp_dir("reconstruct");
    let journal = dir.join("run.jsonl");
    let (ok, stdout, stderr) = hka_sim(&[
        "simulate",
        "--days",
        "1",
        "--commuters",
        "3",
        "--roamers",
        "12",
        "--trace-out",
        journal.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}{stderr}");
    let out = dir.join("reconstructed.json");
    let (ok, stdout, stderr) = hka_sim(&[
        "trace",
        journal.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("journal records"), "{stdout}");
    let (ok, stdout, stderr) = hka_sim(&["trace", "--validate", out.to_str().unwrap()]);
    assert!(ok, "{stdout}{stderr}");
    let doc = obs::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    let check = obs::validate_chrome_trace(&doc).unwrap();
    assert!(check.spans > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An impossible latency objective forces `ts.slo_breach` into the
/// journal; the chain still verifies, the auditor stays clean (unknown
/// kinds are tolerated, not violations), and the breach payload carries
/// the worst request's trace id.
#[test]
fn slo_breach_lands_in_the_journal_and_audit_stays_clean() {
    let dir = tmp_dir("slo");
    let path = dir.join("slo.jsonl");
    let world = build_world(1);
    let mut ts = setup_sharded(&world, 2);
    ts.attach_journal(obs::Journal::new(
        Box::new(std::fs::File::create(&path).unwrap()) as Box<dyn obs::DurableSink>,
    ));
    ts.enable_slo(obs::SloConfig {
        window: 16,
        min_samples: 1,
        latency_p99_ns: 1, // any real request breaches immediately
        ..obs::SloConfig::default()
    });
    drive(&mut ts, &world);
    assert!(
        ts.slo_worst().is_some(),
        "the window saw requests, so a worst trace exists"
    );

    let text = std::fs::read_to_string(&path).unwrap();
    let breach = text
        .lines()
        .find(|l| l.contains("\"ts.slo_breach\""))
        .expect("a breach event reached the journal");
    let rec = obs::json::parse(breach).unwrap();
    let payload = rec.get("payload").unwrap();
    assert_eq!(
        payload.get("slo").and_then(|j| j.as_str()),
        Some("latency_p99")
    );
    assert!(payload
        .get("worst_trace")
        .and_then(|j| j.as_int())
        .is_some());

    let outcome = hka::audit::replay_file(&path, hka::audit::AuditConfig::default()).unwrap();
    assert!(outcome.chain.verified(), "chain verifies with SLO events");
    assert!(outcome.ok(), "SLO events are not audit violations");
    assert!(
        outcome.totals.unknown_kinds > 0,
        "breach counted as unknown"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
